//! A minimal, dependency-free stand-in for the `tracing` crate.
//!
//! The build environment has no network access, so this vendored stub
//! provides the slice of the `tracing` façade the workspace instruments
//! itself with: named **spans** (wall-clock timed while a subscriber is
//! attached) and monotonic **counters**, dispatched to either a process-wide
//! global subscriber ([`subscriber::set_global_default`]) or a thread-scoped
//! one ([`subscriber::with_default`], which is what the scenario runner uses
//! so concurrently profiled cells never observe each other).
//!
//! ## The zero-cost-when-detached contract
//!
//! Every emission site compiles down to **one relaxed atomic load and one
//! branch** when no subscriber is attached anywhere in the process:
//! [`enabled`] reads a single attach counter, and both [`span`] and
//! [`counter`] return immediately when it is zero — no `Instant::now()`, no
//! allocation, no thread-local access. The hot paths of the simulation
//! engines (model stepping, flooding sweeps, the event loop) stay
//! bit-identical and allocation-free with nobody listening; the
//! counting-allocator and golden-trajectory suites in the workspace pin
//! this.
//!
//! Subscribers observe — they can never steer. Nothing in this crate feeds
//! back into the instrumented code, so attaching a subscriber cannot change
//! any deterministic output (RNG streams, trajectories, recorded files).
//!
//! Swapping this stub for the real crates.io `tracing` requires mapping the
//! workspace's `span`/`counter` calls onto `span!`/`event!` macros; the
//! subscriber trait here is deliberately tiny to keep that port mechanical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Severity levels, mirroring `tracing::Level` (the stub's dispatch ignores
/// them; they exist so call sites stay source-compatible with the real
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Finest-grained information.
    Trace,
    /// Debug-level information.
    Debug,
    /// General information.
    Info,
    /// Warnings.
    Warn,
    /// Errors.
    Error,
}

/// The observer side of the façade: receives closed spans (with their
/// wall-clock duration) and counter increments.
///
/// Implementations must tolerate concurrent calls (`Send + Sync`) — the
/// scenario runner profiles cells on rayon worker threads.
pub trait Subscriber: Send + Sync {
    /// A span named `name` closed after running for `nanos` wall-clock
    /// nanoseconds.
    fn span_close(&self, name: &'static str, nanos: u64);

    /// The counter `name` was incremented by `value`.
    fn counter(&self, name: &'static str, value: u64);
}

/// Number of attached subscribers anywhere in the process (the global
/// default contributes 1, every live `with_default` scope contributes 1).
/// This is the single word the detached fast path reads.
static ATTACHED: AtomicUsize = AtomicUsize::new(0);

static GLOBAL: OnceLock<Arc<dyn Subscriber>> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
}

/// `true` when any subscriber is attached (globally or in some thread's
/// scope). One relaxed atomic load — this is the entire detached cost of an
/// emission site.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ATTACHED.load(Ordering::Relaxed) != 0
}

/// The subscriber the current thread dispatches to: the innermost
/// `with_default` scope, else the global default.
fn dispatch() -> Option<Arc<dyn Subscriber>> {
    SCOPED
        .with(|stack| stack.borrow().last().cloned())
        .or_else(|| GLOBAL.get().cloned())
}

/// Subscriber installation, mirroring `tracing::subscriber`.
pub mod subscriber {
    use super::{Arc, AtomicUsize, Ordering, Subscriber, ATTACHED, GLOBAL, SCOPED};

    /// Error returned when a global default is already set.
    #[derive(Debug)]
    pub struct SetGlobalDefaultError;

    impl std::fmt::Display for SetGlobalDefaultError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("a global default subscriber has already been set")
        }
    }

    impl std::error::Error for SetGlobalDefaultError {}

    /// Installs the process-wide default subscriber. Can succeed only once.
    ///
    /// # Errors
    ///
    /// Returns [`SetGlobalDefaultError`] when a global default already
    /// exists.
    pub fn set_global_default(
        subscriber: Arc<dyn Subscriber>,
    ) -> Result<(), SetGlobalDefaultError> {
        GLOBAL.set(subscriber).map_err(|_| SetGlobalDefaultError)?;
        ATTACHED.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Runs `f` with `subscriber` as the current thread's subscriber,
    /// shadowing any global default for the duration. Scopes nest; the
    /// innermost wins. Detaches on return (also on unwind).
    pub fn with_default<R>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
        struct Scope;
        impl Drop for Scope {
            fn drop(&mut self) {
                SCOPED.with(|stack| stack.borrow_mut().pop());
                ATTACHED.fetch_sub(1, Ordering::Relaxed);
            }
        }
        SCOPED.with(|stack| stack.borrow_mut().push(subscriber));
        ATTACHED.fetch_add(1, Ordering::Relaxed);
        let _scope = Scope;
        f()
    }

    // Referenced so the import list stays honest under `--no-default-features`
    // style cfg churn.
    #[allow(dead_code)]
    const _: fn() -> usize = || AtomicUsize::new(0).load(Ordering::Relaxed);
}

/// An open span: created by [`span`], closed (and reported) on drop.
///
/// When no subscriber was attached at creation, the guard is inert — it
/// holds no timestamp and its drop is a branch on `None`.
#[must_use = "a span reports its duration when dropped"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// The span's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            if let Some(sub) = dispatch() {
                let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                sub.span_close(self.name, nanos);
            }
        }
    }
}

/// Opens a wall-clock span. Detached cost: one relaxed load, one branch, no
/// clock read.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Increments the counter `name` by `value` on the attached subscriber.
/// Detached cost: one relaxed load, one branch.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if enabled() {
        if let Some(sub) = dispatch() {
            sub.counter(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        spans: Mutex<Vec<(&'static str, u64)>>,
        counters: Mutex<Vec<(&'static str, u64)>>,
    }

    impl Subscriber for Recorder {
        fn span_close(&self, name: &'static str, nanos: u64) {
            self.spans.lock().unwrap().push((name, nanos));
        }

        fn counter(&self, name: &'static str, value: u64) {
            self.counters.lock().unwrap().push((name, value));
        }
    }

    #[test]
    fn detached_emission_is_inert() {
        // No subscriber: spans carry no timestamp, counters go nowhere.
        let s = span("idle");
        assert!(s.start.is_none());
        drop(s);
        counter("idle", 7);
    }

    #[test]
    fn scoped_subscriber_sees_spans_and_counters_then_detaches() {
        let rec = Arc::new(Recorder::default());
        let out = subscriber::with_default(rec.clone(), || {
            assert!(enabled());
            {
                let _s = span("work");
            }
            counter("items", 3);
            counter("items", 2);
            42
        });
        assert_eq!(out, 42);
        let spans = rec.spans.lock().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "work");
        assert_eq!(
            *rec.counters.lock().unwrap(),
            vec![("items", 3), ("items", 2)]
        );
        // Back outside the scope the fast path is cold again (no global
        // default is installed in this test binary).
        let s = span("after");
        assert!(s.start.is_none());
    }

    #[test]
    fn scopes_nest_with_the_innermost_winning() {
        let outer = Arc::new(Recorder::default());
        let inner = Arc::new(Recorder::default());
        subscriber::with_default(outer.clone(), || {
            subscriber::with_default(inner.clone(), || {
                counter("depth", 2);
            });
            counter("depth", 1);
        });
        assert_eq!(*inner.counters.lock().unwrap(), vec![("depth", 2)]);
        assert_eq!(*outer.counters.lock().unwrap(), vec![("depth", 1)]);
    }

    #[test]
    fn scoped_subscribers_are_per_thread() {
        let rec = Arc::new(Recorder::default());
        subscriber::with_default(rec.clone(), || {
            // Another thread has no scope: its emissions are dropped even
            // though the attach counter is non-zero.
            std::thread::spawn(|| {
                let s = span("other-thread");
                // `enabled()` may be true (process-wide counter), but there
                // is nothing to dispatch to, so the drop is a no-op.
                drop(s);
                counter("other", 1);
            })
            .join()
            .unwrap();
            counter("own", 1);
        });
        let counters = rec.counters.lock().unwrap();
        assert_eq!(*counters, vec![("own", 1)]);
    }
}
