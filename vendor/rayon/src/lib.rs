//! Offline stand-in for `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses — `par_iter` /
//! `into_par_iter` followed by `map(..).collect()` or `for_each(..)`, plus
//! fork-join [`scope`] — on top of `std::thread::scope` with an atomic work
//! queue. Parallelism is real (one worker per available core, dynamic work
//! stealing via a shared index), results are returned in input order, and
//! panics in worker closures are propagated to the caller like rayon does.
//!
//! Like real rayon, the pool width honours the `RAYON_NUM_THREADS`
//! environment variable (read once, at the first parallel call); CI uses this
//! to exercise narrow-pool configurations on wide machines.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads a parallel call will use for `len` items.
///
/// `RAYON_NUM_THREADS` (a positive integer) overrides the detected core
/// count, exactly like real rayon's global pool.
#[must_use]
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

fn worker_count(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

/// Runs `f(i)` for every `i in 0..len` across the pool, collecting results in
/// index order. The queue hands out single indices, so uneven per-item cost
/// (e.g. different network sizes in one sweep) balances automatically.
fn parallel_map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }

    let mut results: Vec<Option<T>> = Vec::with_capacity(len);
    results.resize_with(len, || None);
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut [Option<T>]>> =
        results.chunks_mut(1).map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    let value = f(index);
                    *slots[index]
                        .lock()
                        .expect("slot mutex is never poisoned: each index is written once")
                        .first_mut()
                        .expect("chunk of size 1") = Some(value);
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    drop(slots);
    results
        .into_iter()
        .map(|slot| slot.expect("every index below len was processed"))
        .collect()
}

/// A queued scope task: boxed so tasks of different closure types share the
/// queue; re-receives the scope so it can spawn follow-up tasks.
type ScopeJob<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A fork-join scope handed to the closure of [`scope`]; collects spawned
/// tasks that may borrow from the enclosing stack frame.
pub struct Scope<'scope> {
    jobs: Mutex<Vec<ScopeJob<'scope>>>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pending = self.jobs.lock().map(|q| q.len()).unwrap_or(0);
        f.debug_struct("Scope").field("pending", &pending).finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Queues `body` to run on the pool before [`scope`] returns. The closure
    /// receives the scope again, so tasks can spawn follow-up tasks.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.jobs
            .lock()
            .expect("a panicking job aborts the scope before new spawns")
            .push(Box::new(body));
    }

    fn next_job(&self) -> Option<ScopeJob<'scope>> {
        self.jobs
            .lock()
            .expect("a panicking job propagates before the queue is reused")
            .pop()
    }
}

/// Fork-join: runs `op`, then executes every task it [`Scope::spawn`]ed (and
/// any tasks those spawn) across the pool, returning only when all of them
/// finished. Tasks may borrow from the caller's stack, like rayon's `scope`.
/// Panics in tasks propagate to the caller.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let sc = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let result = op(&sc);
    let queued = sc.jobs.lock().expect("no jobs ran yet").len();
    if queued == 0 {
        return result;
    }
    let workers = current_num_threads().min(queued).max(1);
    if workers <= 1 {
        // Run inline; a task may spawn more, so drain until empty.
        while let Some(job) = sc.next_job() {
            job(&sc);
        }
        return result;
    }
    std::thread::scope(|ts| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                ts.spawn(|| {
                    // A worker that finds the queue empty may exit: whichever
                    // worker is still running the task that spawns more will
                    // loop around and pick them up itself.
                    while let Some(job) = sc.next_job() {
                        job(&sc);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    result
}

/// Parallel iterator support types.
pub mod iter {
    use super::parallel_map_indexed;

    /// A parallel iterator: a plan over an underlying indexed collection.
    pub trait ParallelIterator: Sized {
        /// Item type produced by the iterator.
        type Item: Send;

        /// Number of items.
        fn pl_len(&self) -> usize;

        /// Computes the item at `index`.
        fn pl_get(&self, index: usize) -> Self::Item;

        /// Lazily applies `f` to every item.
        fn map<O: Send, F: Fn(Self::Item) -> O + Sync>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        /// Runs `f` on every item across the pool.
        fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
        where
            Self: Sync,
        {
            parallel_map_indexed(self.pl_len(), |i| f(self.pl_get(i)));
        }

        /// Evaluates the plan across the pool, preserving input order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
        where
            Self: Sync,
        {
            C::from_par_iter_vec(parallel_map_indexed(self.pl_len(), |i| self.pl_get(i)))
        }
    }

    /// Collection types a parallel iterator can collect into.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from the already-evaluated items.
        fn from_par_iter_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// Parallel iterator over `&[T]`.
    #[derive(Debug)]
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn pl_len(&self) -> usize {
            self.slice.len()
        }

        fn pl_get(&self, index: usize) -> &'a T {
            &self.slice[index]
        }
    }

    /// Parallel iterator over an owned `Vec<T>` (items are cloned out of the
    /// backing store on demand; rayon's move semantics without unsafe code).
    #[derive(Debug)]
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Clone + Send + Sync> ParallelIterator for VecIter<T> {
        type Item = T;

        fn pl_len(&self) -> usize {
            self.items.len()
        }

        fn pl_get(&self, index: usize) -> T {
            self.items[index].clone()
        }
    }

    /// Parallel iterator over an integer range.
    #[derive(Debug)]
    pub struct RangeIter {
        start: usize,
        end: usize,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;

        fn pl_len(&self) -> usize {
            self.end - self.start
        }

        fn pl_get(&self, index: usize) -> usize {
            self.start + index
        }
    }

    /// Lazy `map` adapter.
    #[derive(Debug)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        O: Send,
        F: Fn(B::Item) -> O + Sync,
    {
        type Item = O;

        fn pl_len(&self) -> usize {
            self.base.pl_len()
        }

        fn pl_get(&self, index: usize) -> O {
            (self.f)(self.base.pl_get(index))
        }
    }

    /// Types convertible into a parallel iterator by reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed parallel iterator type.
        type Iter: ParallelIterator;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// Types convertible into an owning parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// The owning parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = RangeIter;
        fn into_par_iter(self) -> RangeIter {
            RangeIter {
                start: self.start,
                end: self.end.max(self.start),
            }
        }
    }
}

/// The rayon prelude: the traits needed for `par_iter` / `into_par_iter`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_values() {
        let input: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[0], 2);
    }

    #[test]
    fn range_par_iter() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let v: Vec<usize> = (0..8).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|&x| if x == 5 { panic!("boom") } else { x })
            .collect();
    }

    #[test]
    fn scope_runs_every_spawned_task_with_stack_borrows() {
        let mut outputs = vec![0u64; 16];
        crate::scope(|s| {
            for (i, slot) in outputs.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (i as u64 + 1) * 3);
            }
        });
        assert_eq!(
            outputs,
            (1..=16u64).map(|i| i * 3).collect::<Vec<_>>(),
            "all tasks must have completed before scope returned"
        );
    }

    #[test]
    fn scope_supports_nested_spawns_and_returns_op_result() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let answer = crate::scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(10, Ordering::Relaxed);
                });
            });
            42
        });
        assert_eq!(answer, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    #[should_panic(expected = "scoped boom")]
    fn scope_propagates_task_panics() {
        crate::scope(|s| s.spawn(|_| panic!("scoped boom")));
    }
}
