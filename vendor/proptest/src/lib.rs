//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest interface this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range / tuple / mapped / union
//! strategies, `any::<T>()`, [`strategy::Just`], `collection::vec` and
//! `collection::hash_set`, and the `prop_assert*` macros. Failing inputs are
//! reported but not shrunk. Case generation is deterministic: the RNG stream
//! of a test is derived from the test function's name, so failures reproduce
//! across runs and platforms.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// Type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice among several strategies of a common value type
    /// (what [`crate::prop_oneof!`] builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// Creates a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The strategy behind `any::<T>()` for primitive types.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(core::marker::PhantomData)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector whose length lies in `len` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A hash set whose size lies in `size` (best effort: if the element
    /// strategy cannot produce enough distinct values, the set is smaller).
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64) + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Test-case driving machinery used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic generator feeding strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The deterministic RNG stream of the named test function.
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name.
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }
}

/// Everything the `proptest!` tests need in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests (see crate docs for the supported surface).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut proptest_rng = $crate::test_runner::rng_for(stringify!($name));
            for proptest_case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut proptest_rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(error) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        proptest_case + 1,
                        config.cases,
                        error
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    (config = $config:expr;) => {};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property body, failing the case (not the whole
/// process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {} (both: {:?})",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i32..=5, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn hash_sets_hit_target_sizes(s in crate::collection::hash_set(0i32..1000, 2..30)) {
            prop_assert!((2..30).contains(&s.len()));
        }

        #[test]
        fn oneof_covers_options(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn early_return_ok_is_allowed(x in 0usize..4) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_ne!(x, 9);
        }
    }

    #[test]
    fn rng_stream_is_deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("alpha");
        let mut b = crate::test_runner::rng_for("alpha");
        let mut c = crate::test_runner::rng_for("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
