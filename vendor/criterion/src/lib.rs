//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `black_box`, `BenchmarkId`) with a straightforward
//! wall-clock harness: per sample the closure runs a calibrated number of
//! iterations, and the mean / min / max ns-per-iteration over all samples is
//! reported.
//!
//! # Machine-readable output
//!
//! Pass `--json <path>` after `--` (`cargo bench -- --json out.jsonl`) or set
//! the `CHURN_BENCH_JSON` environment variable to append one JSON object per
//! benchmark to `<path>`:
//!
//! ```json
//! {"id":"model_step/SDGR/100000","mean_ns":123.4,"median_ns":...,"min_ns":...,"max_ns":...,"samples":20,"iters":4096}
//! ```
//!
//! `median_ns` is the robust per-iteration estimate (immune to scheduler
//! steal spikes on shared machines); `mean_ns` is kept for continuity with
//! older recordings.
//!
//! Substring filters work like criterion: `cargo bench -- model_step` only
//! runs benchmark ids containing `model_step`. `CHURN_BENCH_FAST=1` shrinks
//! the measurement to one short sample per benchmark (used by CI smoke runs).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered through `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"SDGR/4096"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// The benchmark driver. Construct with [`Criterion::from_args`] (what
/// `criterion_main!` does) or [`Criterion::default`].
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
    json_path: Option<String>,
    fast: bool,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Builds a driver from the process arguments and environment.
    #[must_use]
    pub fn from_args() -> Self {
        let mut filters = Vec::new();
        let mut json_path = std::env::var("CHURN_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty());
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => json_path = args.next(),
                // Flags cargo or users may pass that the harness ignores.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" => {}
                other if other.starts_with("--") => {
                    // Unknown flag (e.g. real-criterion options like
                    // --save-baseline): also consume its value, if any, so it
                    // is not misread as a benchmark filter.
                    if args.peek().is_some_and(|next| !next.starts_with('-')) {
                        args.next();
                    }
                }
                other => filters.push(other.to_owned()),
            }
        }
        let fast = matches!(
            std::env::var("CHURN_BENCH_FAST").as_deref(),
            Ok("1") | Ok("true")
        );
        Criterion {
            filters,
            json_path,
            fast,
            results: Vec::new(),
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Writes the collected results; called by `criterion_main!` after all
    /// groups have run.
    pub fn final_summary(&mut self) {
        let Some(path) = self.json_path.clone() else {
            return;
        };
        let mut out = String::new();
        for r in &self.results {
            let _ = writeln!(
                out,
                "{{\"id\":\"{}\",\"mean_ns\":{:.3},\"median_ns\":{:.3},\"min_ns\":{:.3},\"max_ns\":{:.3},\"samples\":{},\"iters\":{}}}",
                r.id, r.mean_ns, r.median_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample
            );
        }
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(out.as_bytes()));
        if let Err(e) = write {
            eprintln!("criterion stub: could not write {path}: {e}");
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the wall-clock budget for one benchmark's measurement phase.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |bencher| f(bencher));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |bencher| f(bencher, input));
        self
    }

    /// Ends the group (kept for interface compatibility; results are recorded
    /// as each benchmark finishes).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, bench_id: &str, mut f: F) {
        let full_id = format!("{}/{}", self.name, bench_id);
        if !self.criterion.matches(&full_id) {
            return;
        }

        // Calibration: find an iteration count whose batch takes roughly
        // measurement_time / sample_size.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let (samples, budget) = if self.criterion.fast {
            (1, Duration::from_millis(50))
        } else {
            (self.sample_size, self.measurement_time)
        };
        let per_sample = budget / samples as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut totals_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters;
            f(&mut bencher);
            totals_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = totals_ns.iter().sum::<f64>() / totals_ns.len() as f64;
        let min = totals_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = totals_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // The median is robust against scheduler-steal spikes (shared or
        // virtualised machines routinely inflate a few samples severalfold),
        // so report it alongside the mean; `bench_report` prefers it.
        let median = {
            let mut sorted = totals_ns.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
            let mid = sorted.len() / 2;
            if sorted.len().is_multiple_of(2) {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            } else {
                sorted[mid]
            }
        };

        println!(
            "{full_id:<48} time: [{} {} {}]  (median {}, {samples} samples x {iters} iters)",
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            format_ns(median),
        );
        self.criterion.results.push(BenchResult {
            id: full_id,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            max_ns: max,
            samples,
            iters_per_sample: iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Bundles benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Emits the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("SDGR", 4096).id, "SDGR/4096");
    }

    #[test]
    fn harness_measures_something() {
        let mut criterion = Criterion::default();
        {
            let mut group = criterion.benchmark_group("g");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(30));
            group.bench_function("busy", |bencher| bencher.iter(|| (0..100u64).sum::<u64>()));
            group.finish();
        }
        assert_eq!(criterion.results.len(), 1);
        assert!(criterion.results[0].mean_ns > 0.0);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut criterion = Criterion {
            filters: vec!["only_this".into()],
            ..Criterion::default()
        };
        {
            let mut group = criterion.benchmark_group("g");
            group
                .sample_size(1)
                .measurement_time(Duration::from_millis(5));
            group.bench_function("other", |bencher| bencher.iter(|| 1));
            group.finish();
        }
        assert!(criterion.results.is_empty());
    }
}
