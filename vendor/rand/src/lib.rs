//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so this
//! vendored crate re-implements the (small) slice of the `rand 0.8` API the
//! workspace uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256** seeded through SplitMix64 — not the ChaCha12 generator of the
//! real crate, but deterministic, portable and statistically strong, which is
//! all the simulations need. Streams produced by a given seed are stable
//! across platforms and releases of this workspace.

/// Core trait of random generators: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distributions usable with [`Rng::gen`].
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type: full range for integers,
    /// `[0, 1)` for floats, a fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Ranges that [`super::Rng::gen_range`] can sample from.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// # Panics
        ///
        /// Panics when the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    // Unbiased-enough bounded integer draw via 128-bit multiply-shift. The
    // bias is at most span / 2^64, which is irrelevant for simulation use and
    // keeps the draw deterministic and branch-free.
    #[inline]
    fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(bounded_u64(rng, span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample from empty range");
            let u: f64 = Standard.sample(rng);
            self.start + u * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample from empty range");
            let u: f64 = Standard.sample(rng);
            start + u * (end - start)
        }
    }
}

/// Convenience methods every generator gets for free.
pub trait Rng: RngCore {
    /// Draws a value from the type's [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Rge: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let u: f64 = self.gen();
        u < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256** with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "heads: {heads}");
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 800, "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle is not the identity");
    }
}
