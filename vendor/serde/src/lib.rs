//! Offline stand-in for `serde`.
//!
//! This workspace derives `Serialize` / `Deserialize` on its public types so
//! that a real serde can be dropped in once the build environment has network
//! access. Until then this stub keeps those derives compiling: the traits are
//! pure markers blanket-implemented for every type, and the derive macros
//! (re-exported from the `serde_derive` stub) expand to nothing. Actual JSON
//! persistence in the workspace is hand-rolled (see `churn-sim::store`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
