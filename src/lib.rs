//! # dynamic-churn-networks
//!
//! Umbrella crate of the workspace reproducing *"Expansion and Flooding in
//! Dynamic Random Networks with Node Churn"* (Becchetti, Clementi, Pasquale,
//! Trevisan, Ziccardi — ICDCS 2021). It re-exports the member crates so that the
//! examples and integration tests (and downstream users who prefer a single
//! dependency) can reach the whole API through one name:
//!
//! * [`core`] (`churn-core`) — the four dynamic network models (SDG, SDGR, PDG,
//!   PDGR), flooding, onion-skin, isolation and expansion analyses, and the
//!   paper's closed-form predictions;
//! * [`graph`] (`churn-graph`) — the dynamic graph substrate, snapshots,
//!   traversal and vertex-expansion estimation;
//! * [`stochastic`] (`churn-stochastic`) — distributions, the birth–death jump
//!   chain, event queues and statistics;
//! * [`sim`] (`churn-sim`) — the experiment harness (sweeps, parallel trials,
//!   tables);
//! * [`observe`] (`churn-observe`) — incremental snapshots and live metric
//!   trackers over the graph's change feed, for O(churn) per-round
//!   observation;
//! * [`p2p`] (`churn-p2p`) — the Bitcoin-Core-like overlay example application;
//! * [`protocol`] (`churn-protocol`) — the RAES-style bounded-in-degree
//!   expander maintenance protocol over the same churn processes;
//! * [`analysis`] (`churn-analysis`) — theory-vs-measured comparisons and
//!   scaling classification;
//! * [`telemetry`] (`churn-telemetry`) — zero-cost-when-detached spans,
//!   counters, phase profiling and per-round time-series buffers.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduction results.
//!
//! ## Quick start
//!
//! ```
//! use dynamic_churn_networks::core::{
//!     DynamicNetwork, EdgePolicy, StreamingConfig, StreamingModel,
//! };
//! use dynamic_churn_networks::core::flooding::{run_flooding, FloodingConfig, FloodingSource};
//!
//! # fn main() -> Result<(), dynamic_churn_networks::core::ModelError> {
//! let mut network = StreamingModel::new(
//!     StreamingConfig::new(256, 8)
//!         .edge_policy(EdgePolicy::Regenerate)
//!         .seed(1),
//! )?;
//! network.warm_up();
//! let record = run_flooding(
//!     &mut network,
//!     FloodingSource::NextToJoin,
//!     &FloodingConfig::default(),
//! );
//! assert!(record.outcome.is_complete());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use churn_analysis as analysis;
pub use churn_core as core;
pub use churn_graph as graph;
pub use churn_observe as observe;
pub use churn_p2p as p2p;
pub use churn_protocol as protocol;
pub use churn_sim as sim;
pub use churn_stochastic as stochastic;
pub use churn_telemetry as telemetry;
