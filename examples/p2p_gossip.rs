//! Bitcoin-like overlay example: run the `churn-p2p` overlay (target out-degree
//! 8, max in-degree 125, DNS-seed bootstrap, address gossip) under Poisson
//! churn, check its health, and propagate a few blocks.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example p2p_gossip
//! ```

use dynamic_churn_networks::core::DynamicNetwork;
use dynamic_churn_networks::p2p::gossip::propagate_block_series;
use dynamic_churn_networks::p2p::health::overlay_health;
use dynamic_churn_networks::p2p::{P2pConfig, P2pNetwork};
use dynamic_churn_networks::sim::Table;

fn main() {
    let peers = 1_500;
    println!("Bootstrapping a Bitcoin-like overlay with ~{peers} peers…");

    let mut overlay = P2pNetwork::new(
        P2pConfig::new(peers)
            .target_outbound(8)
            .max_inbound(125)
            .dns_seed_addresses(64)
            .gossip_addresses(16)
            .seed(7),
    )
    .expect("valid overlay configuration");
    overlay.warm_up();

    let health = overlay_health(&overlay);
    let mut health_table = Table::new("Overlay health after warm-up", ["metric", "value"]);
    health_table.push_row(["online peers", &health.peers.to_string()]);
    health_table.push_row([
        "mean outbound connections",
        &format!("{:.2}", health.mean_outbound),
    ]);
    health_table.push_row([
        "mean inbound connections",
        &format!("{:.2}", health.mean_inbound),
    ]);
    health_table.push_row(["max inbound connections", &health.max_inbound.to_string()]);
    health_table.push_row(["isolated peers", &health.isolated_peers.to_string()]);
    health_table.push_row([
        "largest component fraction",
        &format!("{:.4}", health.largest_component_fraction),
    ]);
    health_table.push_row([
        "mean address-table size",
        &format!("{:.1}", health.mean_addrman_size),
    ]);
    health_table.push_row([
        "stale address fraction",
        &format!("{:.3}", health.stale_address_fraction),
    ]);
    health_table.print();

    println!("Propagating 5 blocks (each announced by a freshly joined peer)…\n");
    let reports = propagate_block_series(&mut overlay, 5, 20, 200);

    let mut table = Table::new(
        "Block propagation under churn",
        [
            "block",
            "origin",
            "delays to 50%",
            "delays to 99%",
            "final coverage",
        ],
    );
    for (i, report) in reports.iter().enumerate() {
        table.push_row([
            (i + 1).to_string(),
            report.origin.to_string(),
            report
                .delays_to_half
                .map_or("-".to_string(), |r| r.to_string()),
            report
                .delays_to_99
                .map_or("-".to_string(), |r| r.to_string()),
            format!("{:.3}", report.final_coverage),
        ]);
    }
    table.print();

    println!(
        "Block propagation time stays logarithmic in the overlay size, as predicted by the\n\
         paper's PDGR model (Theorem 4.20) — the overlay's connection-maintenance rule is\n\
         exactly the edge-regeneration dynamics. Current overlay time: {:.0} units.",
        overlay.time()
    );
}
