//! Quickstart: build each of the paper's four dynamic network models, run the
//! flooding process over them, and print Table-1-style side-by-side results.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynamic_churn_networks::core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use dynamic_churn_networks::core::{DynamicNetwork, ModelKind};
use dynamic_churn_networks::sim::Table;

fn main() {
    let n = 1_024;
    let d = 8;
    let seed = 2_026;

    println!("Dynamic random networks with node churn — quickstart");
    println!("n = {n}, d = {d}\n");

    let mut table = Table::new(
        "Flooding over the four models (Table 1 of the paper, qualitatively)",
        [
            "model",
            "edge regeneration",
            "informed fraction",
            "rounds simulated",
            "outcome",
        ],
    );

    for kind in ModelKind::ALL {
        let mut model = kind
            .build(n, d, seed)
            .expect("the quickstart parameters are valid");
        model.warm_up();

        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(10 * (n as f64).log2().ceil() as u64),
        );

        table.push_row([
            kind.label().to_string(),
            if kind.edge_policy().regenerates() {
                "yes".to_string()
            } else {
                "no".to_string()
            },
            format!("{:.3}", record.final_fraction()),
            record.rounds_elapsed().to_string(),
            match &record.outcome {
                o if o.is_complete() => format!("completed in {} rounds", o.rounds().unwrap()),
                o if o.is_died_out() => "died out".to_string(),
                _ => "partial".to_string(),
            },
        ]);
    }

    table.print();
    println!(
        "Expected picture: the regeneration models (SDGR, PDGR) complete in O(log n) rounds,\n\
         the models without regeneration (SDG, PDG) inform most — but not all — nodes."
    );
}
