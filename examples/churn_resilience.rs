//! Churn-resilience study: how does the fraction of nodes a broadcast reaches
//! degrade (or not) as the out-degree `d` shrinks, with and without edge
//! regeneration?
//!
//! This is the workload the paper's introduction motivates: a peer-to-peer
//! system designer choosing between "connect once at join time" (SDG/PDG) and
//! "repair connections when neighbours leave" (SDGR/PDGR), and asking how many
//! connections per node are needed for broadcasts to keep reaching everyone.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use dynamic_churn_networks::core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use dynamic_churn_networks::core::isolated::isolated_now;
use dynamic_churn_networks::core::{DynamicNetwork, ModelKind};
use dynamic_churn_networks::sim::{run_sweep, Aggregate, Sweep, Table};

fn main() {
    let n = 512;
    let trials = 8;
    println!("Churn resilience: broadcast coverage vs out-degree (n = {n}, {trials} trials)\n");

    let sweep = Sweep::new("churn-resilience")
        .models([ModelKind::Sdg, ModelKind::Sdgr])
        .sizes([n])
        .degrees([1, 2, 3, 4, 6, 8, 12])
        .trials(trials)
        .base_seed(99);

    #[derive(Clone)]
    struct Trial {
        coverage: f64,
        completed: bool,
        isolated_fraction: f64,
    }

    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
        model.warm_up();
        let isolated_fraction = isolated_now(&model).len() as f64 / model.alive_count() as f64;
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(6 * (n as f64).log2().ceil() as u64),
        );
        Trial {
            coverage: record.final_fraction(),
            completed: record.outcome.is_complete(),
            isolated_fraction,
        }
    });

    let mut table = Table::new(
        "Broadcast coverage and isolation vs degree",
        [
            "model",
            "d",
            "mean coverage",
            "completed runs",
            "mean isolated fraction",
        ],
    );
    for point in sweep.points() {
        let trials_for_point: Vec<&Trial> = results
            .iter()
            .filter(|r| r.point == point)
            .map(|r| &r.value)
            .collect();
        let coverage = Aggregate::from_values(
            &trials_for_point
                .iter()
                .map(|t| t.coverage)
                .collect::<Vec<_>>(),
        );
        let isolated = Aggregate::from_values(
            &trials_for_point
                .iter()
                .map(|t| t.isolated_fraction)
                .collect::<Vec<_>>(),
        );
        let completed = trials_for_point.iter().filter(|t| t.completed).count();
        table.push_row([
            point.model.label().to_string(),
            point.d.to_string(),
            coverage.display_with_ci(3),
            format!("{completed}/{}", trials_for_point.len()),
            format!("{:.4}", isolated.mean),
        ]);
    }
    table.print();

    println!(
        "Reading guide: without regeneration (SDG) coverage saturates below 1 because a\n\
         constant fraction of nodes is isolated (Lemma 3.5), and the gap closes exponentially\n\
         in d (the 1 - e^{{-Omega(d)}} of Theorem 3.8). With regeneration (SDGR) even d = 3-4\n\
         already gives complete broadcasts round after round (Theorem 3.16)."
    );
}
