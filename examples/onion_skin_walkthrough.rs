//! Onion-skin walkthrough: replay the paper's key proof device (Section 3.1.2)
//! on a realized SDG graph and watch the informed young/old layers grow phase
//! by phase.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example onion_skin_walkthrough
//! ```

use dynamic_churn_networks::core::onion_skin::run_onion_skin;
use dynamic_churn_networks::core::theory;
use dynamic_churn_networks::core::{DynamicNetwork, StreamingConfig, StreamingModel};
use dynamic_churn_networks::sim::Table;

fn main() {
    let n = 4_096;
    let d = 64;
    println!("Onion-skin process on an SDG graph with n = {n}, d = {d}\n");

    let mut model =
        StreamingModel::new(StreamingConfig::new(n, d).seed(17)).expect("valid parameters");
    model.warm_up();

    let trace = run_onion_skin(&model);

    println!(
        "population: {} young, {} old, {} very old; source = {}\n",
        trace.young_population, trace.old_population, trace.very_old_population, trace.source
    );

    let mut table = Table::new(
        "Layer growth per phase (Claim 3.10 predicts a factor of about d/20 per step)",
        ["phase", "new young", "new old", "young total", "old total"],
    );
    for phase in &trace.phases {
        table.push_row([
            phase.phase.to_string(),
            phase.new_young.to_string(),
            phase.new_old.to_string(),
            phase.young_total.to_string(),
            phase.old_total.to_string(),
        ]);
    }
    table.print();

    let predicted = theory::onion_skin_growth_factor(d);
    let factors = trace.old_growth_factors();
    println!(
        "reached {} nodes in {} phases; old-layer growth factors: {:?} (paper's d/20 = {:.1})",
        trace.reached(),
        trace.phase_count(),
        factors
            .iter()
            .map(|f| format!("{f:.1}"))
            .collect::<Vec<_>>(),
        predicted
    );
    println!(
        "\nThe early phases multiply the frontier by roughly d/20 until the construction has\n\
         reached ~n/d nodes — exactly the engine behind the O(log n / log d) bound of Lemma 3.9."
    );
}
