//! Expansion monitor: watch the vertex expansion of a dynamic network's
//! snapshots as churn keeps replacing nodes, with and without edge
//! regeneration.
//!
//! This exercises the paper's structural results directly: SDGR/PDGR snapshots
//! stay Θ(1)-expanders at all times (Theorems 3.15 / 4.16), while SDG/PDG
//! snapshots always contain isolated nodes (expansion 0 over the full size
//! range) yet still expand once only large subsets are considered (Lemma 3.6).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example expansion_monitor
//! ```

use dynamic_churn_networks::core::expansion::{measure_expansion, SizeRange};
use dynamic_churn_networks::core::{DynamicNetwork, ModelKind};
use dynamic_churn_networks::graph::expansion::ExpansionConfig;
use dynamic_churn_networks::sim::Table;
use dynamic_churn_networks::stochastic::rng::seeded_rng;

fn main() {
    let n = 1_024;
    let d = 24;
    let observations = 6;
    let interval = 64;
    println!(
        "Expansion monitor: n = {n}, d = {d}, {observations} observations every {interval} time units\n"
    );

    let mut rng = seeded_rng(5);
    let config = ExpansionConfig::default();

    let mut table = Table::new(
        "Estimated minimum expansion ratio of evolving snapshots",
        [
            "model",
            "observation",
            "time",
            "full range h_out",
            "large sets only",
        ],
    );

    for kind in [ModelKind::Sdg, ModelKind::Sdgr] {
        let mut model = kind.build(n, d, 31).expect("valid parameters");
        model.warm_up();
        for observation in 0..observations {
            if observation > 0 {
                model.advance_time_units(interval);
            }
            let full = measure_expansion(&model, SizeRange::Full, &config, &mut rng);
            let large = measure_expansion(&model, SizeRange::LargeSets, &config, &mut rng);
            table.push_row([
                kind.label().to_string(),
                observation.to_string(),
                format!("{:.0}", model.time()),
                format!("{:.3}", full.value().unwrap_or(f64::NAN)),
                format!("{:.3}", large.value().unwrap_or(f64::NAN)),
            ]);
        }
    }

    table.print();
    println!(
        "Reading guide: the SDGR column stays at or above the paper's 0.1 threshold for the\n\
         full size range; SDG drops to 0.0 on the full range (isolated nodes) but recovers\n\
         above the threshold when only subsets of size >= n*e^(-d/10) are considered."
    );
}
