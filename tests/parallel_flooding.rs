//! Parallel-vs-sequential flooding determinism over every model kind.
//!
//! The contract of the sharded [`ParallelFrontier`] engine is that it is a
//! pure wall-clock optimisation: for every dynamic network and every thread
//! budget, it produces exactly the informed set (and per-round statistics)
//! of the sequential engine. This suite pins that contract over all five
//! `ModelKind`s — the four paper baselines plus the RAES protocol model —
//! at thread counts 1, 2, 4 and 8, with the sequential-fallback cutoff
//! disabled so the sharded code path genuinely runs.

use dynamic_churn_networks::core::flooding::{
    run_flooding, run_flooding_parallel, FloodingConfig, FloodingProcess, FloodingSource,
    FrontierDirection, ParallelFrontier,
};
use dynamic_churn_networks::core::{DynamicNetwork, ModelKind};
use dynamic_churn_networks::protocol::{RaesConfig, RaesModel};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// All five kinds: the paper's four baselines plus the protocol model.
const ALL_FIVE: [ModelKind; 5] = [
    ModelKind::Sdg,
    ModelKind::Sdgr,
    ModelKind::Pdg,
    ModelKind::Pdgr,
    ModelKind::Raes,
];

fn build(kind: ModelKind, n: usize, d: usize, seed: u64) -> Box<dyn DynamicNetwork> {
    match kind {
        ModelKind::Raes => Box::new(
            RaesModel::new(RaesConfig::new(n, d).seed(seed)).expect("valid RAES parameters"),
        ),
        baseline => Box::new(baseline.build(n, d, seed).expect("valid parameters")),
    }
}

/// Lock-step comparison: two identically seeded models, one driven by the
/// sequential engine, one by the sharded engine with the given thread budget.
/// Every round must agree on the stats *and* on the informed identifier set.
fn assert_engines_agree(kind: ModelKind, threads: usize, n: usize, d: usize, seed: u64) {
    let mut seq_model = build(kind, n, d, seed);
    let mut par_model = build(kind, n, d, seed);
    seq_model.warm_up();
    par_model.warm_up();

    let mut seq = FloodingProcess::start(seq_model.as_mut(), FloodingSource::NextToJoin);
    let mut par = ParallelFrontier::start(par_model.as_mut(), FloodingSource::NextToJoin, threads)
        .with_sequential_cutoff(0);
    assert_eq!(seq.source(), par.source(), "{kind}/{threads}t: same source");

    let mut saw_parallel_direction = false;
    for round in 0..80 {
        let seq_stats = seq.step(seq_model.as_mut());
        let par_stats = par.step(par_model.as_mut());
        saw_parallel_direction |= par.last_direction() != FrontierDirection::Sequential;
        assert_eq!(
            seq_stats, par_stats,
            "{kind}/{threads}t: round {round} stats diverged"
        );
        assert_eq!(
            seq.informed(),
            par.informed(),
            "{kind}/{threads}t: round {round} informed sets diverged"
        );
        if seq_stats.complete {
            break;
        }
    }
    if threads > 1 {
        assert!(
            saw_parallel_direction,
            "{kind}/{threads}t: cutoff 0 must exercise the sharded path"
        );
    }
}

#[test]
fn parallel_engine_matches_sequential_on_all_five_model_kinds() {
    for kind in ALL_FIVE {
        for threads in THREAD_COUNTS {
            // Regenerating kinds complete; static kinds exercise die-out and
            // partial coverage. Both trajectories must agree either way.
            assert_engines_agree(kind, threads, 256, 6, 0xF100D + threads as u64);
        }
    }
}

#[test]
fn run_flooding_records_are_identical_across_engines_and_thread_counts() {
    for kind in ALL_FIVE {
        let config = FloodingConfig::with_max_rounds(120);
        let mut model = build(kind, 200, 5, 7);
        model.warm_up();
        let reference = run_flooding(model.as_mut(), FloodingSource::NextToJoin, &config);
        for threads in THREAD_COUNTS {
            let mut model = build(kind, 200, 5, 7);
            model.warm_up();
            let parallel =
                run_flooding_parallel(model.as_mut(), FloodingSource::NextToJoin, &config, threads);
            assert_eq!(
                reference, parallel,
                "{kind}/{threads}t: full flooding record diverged"
            );
        }
    }
}
