//! Cross-crate integration tests: models built through the public facade,
//! driven by the experiment harness, measured by the analysis crate.

use dynamic_churn_networks::analysis::{classify_scaling, Comparison, ComparisonSet, ScalingClass};
use dynamic_churn_networks::core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use dynamic_churn_networks::core::{DynamicNetwork, ModelKind};
use dynamic_churn_networks::sim::{aggregate_by_point, run_sweep, Sweep};

#[test]
fn sweep_over_all_models_flooding_coverage() {
    // One small sweep across all four models; the regeneration models must beat
    // the static ones in coverage at equal (n, d).
    let sweep = Sweep::new("integration-coverage")
        .models(ModelKind::ALL)
        .sizes([192])
        .degrees([6])
        .trials(3)
        .base_seed(1);

    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid point");
        model.warm_up();
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(80),
        );
        record.final_fraction()
    });
    assert_eq!(results.len(), 4 * 3);

    let grouped = aggregate_by_point(&results, |r| r.value);
    let coverage = |kind: ModelKind| {
        grouped
            .iter()
            .find(|(k, _)| k.model == kind.label())
            .map(|(_, agg)| agg.mean)
            .expect("every model appears in the sweep")
    };

    assert!(
        coverage(ModelKind::Sdgr) >= coverage(ModelKind::Sdg),
        "SDGR coverage {} should be at least SDG coverage {}",
        coverage(ModelKind::Sdgr),
        coverage(ModelKind::Sdg)
    );
    assert!(
        coverage(ModelKind::Pdgr) >= coverage(ModelKind::Pdg) - 0.02,
        "PDGR coverage {} should be at least PDG coverage {}",
        coverage(ModelKind::Pdgr),
        coverage(ModelKind::Pdg)
    );
    assert!(coverage(ModelKind::Sdgr) > 0.99);
    assert!(coverage(ModelKind::Pdgr) > 0.99);
}

#[test]
fn flooding_time_of_sdgr_scales_logarithmically_not_linearly() {
    // The shape distinction at the heart of Table 1, measured end to end through
    // the harness and classified by the analysis crate.
    let sizes = [64usize, 128, 256, 512, 1024];
    let mut points = Vec::new();
    for &n in &sizes {
        let sweep = Sweep::new("scaling")
            .models([ModelKind::Sdgr])
            .sizes([n])
            .degrees([8])
            .trials(3)
            .base_seed(7);
        let results = run_sweep(&sweep, |ctx| {
            let mut model = ctx.point.build(ctx.seed).expect("valid point");
            model.warm_up();
            let record = run_flooding(
                &mut model,
                FloodingSource::NextToJoin,
                &FloodingConfig::default(),
            );
            record.outcome.rounds().expect("SDGR flooding completes") as f64
        });
        let mean = results.iter().map(|r| r.value).sum::<f64>() / results.len() as f64;
        points.push((n as f64, mean));
    }

    // Flooding time grows with n but far slower than linearly.
    let first = points.first().unwrap().1;
    let last = points.last().unwrap().1;
    assert!(last >= first, "flooding time should not shrink with n");
    assert!(
        last <= 4.0 * first + 8.0,
        "a 16x larger network should cost only a few extra rounds (got {first} -> {last})"
    );
    assert_ne!(
        classify_scaling(&points),
        ScalingClass::Linear,
        "SDGR flooding time must not look linear in n: {points:?}"
    );
}

#[test]
fn comparison_set_renders_measured_sweep() {
    // The reporting pipeline used by the experiment binaries, end to end.
    let sweep = Sweep::new("report")
        .models([ModelKind::Sdg, ModelKind::Sdgr])
        .sizes([128])
        .degrees([4])
        .trials(2)
        .base_seed(3);
    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid point");
        model.warm_up();
        dynamic_churn_networks::core::isolated::isolated_now(&model).len() as f64
            / model.alive_count() as f64
    });
    let grouped = aggregate_by_point(&results, |r| r.value);

    let mut set = ComparisonSet::new("integration — isolated nodes");
    for (key, agg) in &grouped {
        let regenerates = key.model.ends_with('R');
        set.push(Comparison::new(
            format!("isolated fraction, {key}"),
            if regenerates {
                "Theorem 3.15"
            } else {
                "Lemma 3.5"
            },
            if regenerates { "0" } else { "> 0" },
            format!("{:.4}", agg.mean),
            if regenerates {
                agg.mean == 0.0
            } else {
                agg.mean > 0.0
            },
        ));
    }
    assert_eq!(set.len(), 2);
    assert!(set.all_hold(), "{}", set.to_markdown());
    let markdown = set.to_markdown();
    assert!(markdown.contains("SDG") && markdown.contains("SDGR"));
}

#[test]
fn facade_reexports_are_usable_together() {
    // Types from different member crates interoperate through the facade.
    use dynamic_churn_networks::graph::Snapshot;
    use dynamic_churn_networks::stochastic::rng::seeded_rng;

    let mut model = ModelKind::Pdgr.build(96, 5, 11).unwrap();
    model.warm_up();
    let snapshot = Snapshot::of(model.graph());
    assert_eq!(snapshot.len(), model.alive_count());

    let mut rng = seeded_rng(0);
    let estimate = dynamic_churn_networks::graph::expansion::ExpansionEstimator::new(
        dynamic_churn_networks::graph::expansion::ExpansionConfig::fast(),
    )
    .estimate(&snapshot, 1, snapshot.len() / 2, &mut rng);
    assert!(estimate.value().unwrap() > 0.0, "PDGR snapshots expand");
}
