//! Integration tests checking the qualitative content of the paper's Table 1 at
//! small scale: every cell's *direction* (who has isolated nodes, who expands,
//! who completes flooding, who merely reaches most nodes) must be reproduced.
//!
//! These are deliberately modest in size so they run in seconds; the full-size
//! reproductions live in the `churn-bench` experiment binaries.

use dynamic_churn_networks::core::expansion::{measure_expansion, SizeRange};
use dynamic_churn_networks::core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use dynamic_churn_networks::core::isolated::{isolated_now, lifetime_isolation_report};
use dynamic_churn_networks::core::theory;
use dynamic_churn_networks::core::{DynamicNetwork, ModelKind};
use dynamic_churn_networks::graph::expansion::ExpansionConfig;
use dynamic_churn_networks::stochastic::rng::seeded_rng;

/// Lemma 3.5 / 4.10 (Table 1, top-left): the models without edge regeneration
/// have isolated nodes, and a sizable share of them stay isolated for life.
#[test]
fn without_regeneration_isolated_nodes_exist_and_persist() {
    for kind in [ModelKind::Sdg, ModelKind::Pdg] {
        let mut model = kind.build(256, 2, 5).unwrap();
        model.warm_up();
        let report = lifetime_isolation_report(&model, 256);
        assert!(
            !report.isolated_now.is_empty(),
            "{kind}: expected isolated nodes at d = 2"
        );
        assert!(
            !report.lifetime_isolated.is_empty(),
            "{kind}: some isolated nodes should remain isolated for life"
        );
        // The paper's lower bound e^{-2d}/6 (or /18) is far below the measured
        // value, so it must certainly be satisfied.
        let bound = if kind.is_streaming() {
            theory::isolated_fraction_streaming(2)
        } else {
            theory::isolated_fraction_poisson(2)
        };
        assert!(
            report.isolated_fraction() >= bound,
            "{kind}: measured isolated fraction {} below the paper bound {bound}",
            report.isolated_fraction()
        );
    }
}

/// Theorems 3.15 / 4.16 (Table 1, right column): with edge regeneration no node
/// is ever isolated and snapshots expand.
#[test]
fn with_regeneration_no_isolated_nodes_and_snapshots_expand() {
    let mut rng = seeded_rng(1);
    for kind in [ModelKind::Sdgr, ModelKind::Pdgr] {
        let mut model = kind.build(256, 8, 6).unwrap();
        model.warm_up();
        assert!(
            isolated_now(&model).is_empty(),
            "{kind}: regeneration keeps every node connected"
        );
        let report = measure_expansion(
            &model,
            SizeRange::Full,
            &ExpansionConfig::default(),
            &mut rng,
        );
        let value = report.value().unwrap();
        assert!(
            value >= theory::EXPANSION_THRESHOLD,
            "{kind}: estimated expansion {value} below the paper's 0.1 threshold"
        );
    }
}

/// Lemmas 3.6 / 4.11 (Table 1, bottom-left positive part): even without
/// regeneration, *large* subsets expand.
#[test]
fn without_regeneration_large_subsets_still_expand() {
    let mut rng = seeded_rng(2);
    for kind in [ModelKind::Sdg, ModelKind::Pdg] {
        let mut model = kind.build(256, 20, 7).unwrap();
        model.warm_up();
        let full = measure_expansion(
            &model,
            SizeRange::Full,
            &ExpansionConfig::default(),
            &mut rng,
        );
        let large = measure_expansion(
            &model,
            SizeRange::LargeSets,
            &ExpansionConfig::default(),
            &mut rng,
        );
        let large_value = large.value().unwrap();
        assert!(
            large_value > 0.0,
            "{kind}: large subsets should expand, got {large_value}"
        );
        // Note: the full-range and large-set estimates come from independent
        // candidate searches, so they are not directly comparable run to run;
        // the quantitative comparison lives in experiment E2.
        let _ = full;
    }
}

/// Theorems 3.16 / 4.20 (Table 1, bottom-right): with regeneration flooding
/// completes, and it does so in a number of rounds consistent with O(log n).
#[test]
fn with_regeneration_flooding_completes_fast() {
    for kind in [ModelKind::Sdgr, ModelKind::Pdgr] {
        let mut model = kind.build(256, 8, 8).unwrap();
        model.warm_up();
        let record = run_flooding(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert!(
            record.outcome.is_complete(),
            "{kind}: flooding should complete, got {:?}",
            record.outcome
        );
        let rounds = record.outcome.rounds().unwrap();
        assert!(
            rounds as f64 <= theory::logarithmic_flooding_curve(256, 5.0),
            "{kind}: {rounds} rounds is not consistent with O(log n)"
        );
    }
}

/// Theorems 3.8 / 4.13 (Table 1, bottom-left): without regeneration flooding
/// still reaches a large constant fraction of the nodes quickly, and the
/// fraction grows with d.
#[test]
fn without_regeneration_flooding_reaches_most_nodes() {
    for kind in [ModelKind::Sdg, ModelKind::Pdg] {
        let coverage = |d: usize| {
            // Average over a few seeds to smooth out the constant failure
            // probability of Theorem 3.7.
            let mut total = 0.0;
            let seeds = 4;
            for seed in 0..seeds {
                let mut model = kind.build(256, d, 100 + seed).unwrap();
                model.warm_up();
                let record = run_flooding(
                    &mut model,
                    FloodingSource::NextToJoin,
                    &FloodingConfig::with_max_rounds(60),
                );
                total += record.final_fraction();
            }
            total / seeds as f64
        };
        let low_d = coverage(2);
        let high_d = coverage(10);
        assert!(
            high_d > 0.85,
            "{kind}: with d = 10 flooding should reach most nodes, got {high_d}"
        );
        assert!(
            high_d >= low_d - 0.05,
            "{kind}: coverage should not degrade as d grows ({low_d} -> {high_d})"
        );
    }
}

/// Theorems 3.7 / 4.12 (Table 1, bottom-left negative part): without
/// regeneration, flooding *can* die out after informing only a handful of
/// nodes, and this actually happens with noticeable probability at small d.
#[test]
fn without_regeneration_flooding_sometimes_dies_out() {
    // A run "dies out" when the informed set never grows past d + 1 nodes.
    // The per-run die-out probability is a constant (Theorems 3.7 / 4.12), so
    // a healthy number of seeds on a network large enough that newborn
    // attachments rarely rescue a stalled broadcast makes this deterministic
    // in practice.
    let mut died_somewhere = false;
    for kind in [ModelKind::Sdg, ModelKind::Pdg] {
        for seed in 0..16 {
            let mut model = kind.build(512, 1, 200 + seed).unwrap();
            model.warm_up();
            let record = run_flooding(
                &mut model,
                FloodingSource::NextToJoin,
                &FloodingConfig::with_max_rounds(60),
            );
            if record.outcome.is_died_out() {
                died_somewhere = true;
            }
        }
    }
    assert!(
        died_somewhere,
        "with d = 1, at least one of 32 broadcasts should die out"
    );
}

/// Lemma B.1 baseline: the static d-out random graph (no churn at all) is a
/// good expander and floods in O(log n) — the reference point the dynamic
/// models are compared against.
#[test]
fn static_d_out_baseline_expands_and_floods() {
    use dynamic_churn_networks::graph::expansion::{ExpansionConfig, ExpansionEstimator};
    use dynamic_churn_networks::graph::generators::d_out_random_graph;
    use dynamic_churn_networks::graph::traversal::static_flooding_time;
    use dynamic_churn_networks::graph::Snapshot;

    let mut rng = seeded_rng(3);
    let graph = d_out_random_graph(512, 3, &mut rng);
    let snapshot = Snapshot::of(&graph);
    let estimate = ExpansionEstimator::new(ExpansionConfig::default()).estimate(
        &snapshot,
        1,
        snapshot.len() / 2,
        &mut rng,
    );
    assert!(
        estimate.value().unwrap() > 0.0,
        "the 3-out static random graph is an expander (Lemma B.1)"
    );
    let flood_time = static_flooding_time(&snapshot, 0).expect("connected graph");
    assert!(
        (flood_time as f64) <= 4.0 * (512.0f64).log2(),
        "static flooding time {flood_time} should be O(log n)"
    );
}

/// Lemmas 4.4 / 4.7: the Poisson population concentrates in [0.9n, 1.1n] and
/// birth/death events are near-balanced after warm-up.
#[test]
fn poisson_churn_demographics_match_lemmas() {
    use dynamic_churn_networks::core::{PoissonConfig, PoissonModel};

    let n = 400usize;
    let mut model = PoissonModel::new(PoissonConfig::with_expected_size(n, 3).seed(9)).unwrap();
    model.warm_up();
    model.advance_until(6.0 * n as f64);

    let (lo, hi) = theory::poisson_population_band(n);
    let mut in_band = 0usize;
    let mut births = 0usize;
    let mut deaths = 0usize;
    let observations = 200;
    for _ in 0..observations {
        let summary = model.advance_time_unit();
        births += summary.births.len();
        deaths += summary.deaths.len();
        let size = model.alive_count() as f64;
        if size >= lo && size <= hi {
            in_band += 1;
        }
    }
    assert!(
        in_band as f64 / observations as f64 > 0.8,
        "population should stay within [0.9n, 1.1n] most of the time ({in_band}/{observations})"
    );
    let death_share = deaths as f64 / (births + deaths) as f64;
    let (plo, phi) = theory::jump_probability_band();
    assert!(
        death_share > plo - 0.05 && death_share < phi + 0.05,
        "death share {death_share} should be near 1/2 (Lemma 4.7)"
    );
}
