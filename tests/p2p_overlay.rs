//! Integration tests of the Bitcoin-like overlay built on top of the library:
//! the overlay must exhibit the PDGR behaviour the paper predicts for it.

use dynamic_churn_networks::core::expansion::{measure_expansion, SizeRange};
use dynamic_churn_networks::core::DynamicNetwork;
use dynamic_churn_networks::graph::expansion::ExpansionConfig;
use dynamic_churn_networks::p2p::gossip::{propagate_block, propagate_block_series};
use dynamic_churn_networks::p2p::health::overlay_health;
use dynamic_churn_networks::p2p::{P2pConfig, P2pNetwork};
use dynamic_churn_networks::stochastic::rng::seeded_rng;

fn warm_overlay(peers: usize, seed: u64) -> P2pNetwork {
    let mut overlay = P2pNetwork::new(P2pConfig::new(peers).seed(seed)).unwrap();
    overlay.warm_up();
    overlay
}

#[test]
fn overlay_reaches_and_keeps_a_healthy_topology() {
    let mut overlay = warm_overlay(250, 1);
    for _ in 0..50 {
        overlay.advance_time_unit();
    }
    let health = overlay_health(&overlay);
    assert!(health.peers > 150, "overlay should hold most of its peers");
    assert!(health.mean_outbound > 7.0, "outbound target is nearly met");
    assert_eq!(health.isolated_peers, 0);
    assert!(health.largest_component_fraction > 0.98);
    assert!(health.max_inbound <= 125);
    overlay.graph().assert_invariants();
}

#[test]
fn overlay_snapshots_are_expanders_like_pdgr() {
    let overlay = warm_overlay(250, 2);
    let mut rng = seeded_rng(3);
    let report = measure_expansion(
        &overlay,
        SizeRange::Full,
        &ExpansionConfig::fast(),
        &mut rng,
    );
    assert!(
        report.value().unwrap() >= 0.1,
        "the overlay should expand at least as well as the paper's 0.1 threshold, got {:?}",
        report.value()
    );
}

#[test]
fn blocks_propagate_logarithmically_under_churn() {
    let mut overlay = warm_overlay(250, 4);
    let report = propagate_block(&mut overlay, 100);
    assert!(report.final_coverage > 0.95);
    let to_99 = report.delays_to_99.expect("99% coverage reached");
    assert!(
        (to_99 as f64) <= 4.0 * (250.0f64).log2(),
        "99% coverage took {to_99} delays"
    );
}

#[test]
fn repeated_blocks_keep_propagating_as_the_overlay_churns() {
    let mut overlay = warm_overlay(180, 5);
    let reports = propagate_block_series(&mut overlay, 4, 25, 120);
    assert_eq!(reports.len(), 4);
    for (i, report) in reports.iter().enumerate() {
        assert!(
            report.final_coverage > 0.9,
            "block {i} only reached {:.2} of the overlay",
            report.final_coverage
        );
    }
    // A quarter of the overlay's lifetime passed; the membership must have
    // turned over noticeably while propagation kept working.
    assert!(overlay.churn_steps() > 50);
}
