//! Scaling-shape classification of measured series.

use serde::{Deserialize, Serialize};

use churn_stochastic::stats::{linear_fit, log_fit, LinearFit};

/// A fitted scaling curve together with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingFit {
    /// The least-squares fit (over the transformed abscissa for logarithmic
    /// fits).
    pub fit: LinearFit,
    /// Number of points fitted.
    pub points: usize,
}

impl ScalingFit {
    /// The coefficient of determination of the fit.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.fit.r_squared
    }

    /// The fitted slope (per `log₂ n` for logarithmic fits, per unit `n` for
    /// linear fits).
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.fit.slope
    }
}

/// Fits `y ≈ a + b·log₂(n)` to a `(n, y)` series. Returns `None` with fewer
/// than two points or non-positive `n`.
#[must_use]
pub fn fit_logarithmic(points: &[(f64, f64)]) -> Option<ScalingFit> {
    log_fit(points).map(|fit| ScalingFit {
        fit,
        points: points.len(),
    })
}

/// Fits `y ≈ a + b·n` to a `(n, y)` series. Returns `None` with fewer than two
/// points or constant `n`.
#[must_use]
pub fn fit_linear_in_n(points: &[(f64, f64)]) -> Option<ScalingFit> {
    linear_fit(points).map(|fit| ScalingFit {
        fit,
        points: points.len(),
    })
}

/// Which growth shape a measured series most resembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingClass {
    /// The series is explained (distinctly better) by `a + b·log n`.
    Logarithmic,
    /// The series is explained (distinctly better) by `a + b·n`.
    Linear,
    /// Neither shape is a distinctly better explanation (or the series is too
    /// short / flat to tell).
    Ambiguous,
}

impl std::fmt::Display for ScalingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScalingClass::Logarithmic => "logarithmic",
            ScalingClass::Linear => "linear",
            ScalingClass::Ambiguous => "ambiguous",
        };
        f.write_str(s)
    }
}

/// Classifies a `(n, y)` series as logarithmic or linear in `n`.
///
/// The discriminator is the relative residual error of the two least-squares
/// fits; a shape wins when its residual is at most half of the other's. This is
/// deliberately coarse — it distinguishes the `O(log n)` flooding time of the
/// regeneration models (Theorems 3.16, 4.20) from the `Ω(n)` completion time of
/// the models without regeneration (Theorems 3.7, 4.12), which differ by orders
/// of magnitude at the sizes the experiments run, and reports
/// [`ScalingClass::Ambiguous`] otherwise.
#[must_use]
pub fn classify_scaling(points: &[(f64, f64)]) -> ScalingClass {
    if points.len() < 3 {
        return ScalingClass::Ambiguous;
    }
    let Some(log_fit) = fit_logarithmic(points) else {
        return ScalingClass::Ambiguous;
    };
    let Some(lin_fit) = fit_linear_in_n(points) else {
        return ScalingClass::Ambiguous;
    };

    let residual = |predict: &dyn Fn(f64) -> f64| -> f64 {
        points
            .iter()
            .map(|&(x, y)| {
                let e = y - predict(x);
                e * e
            })
            .sum::<f64>()
    };
    let log_residual = residual(&|x: f64| log_fit.fit.predict(x.log2()));
    let lin_residual = residual(&|x: f64| lin_fit.fit.predict(x));

    // Guard against a degenerate, essentially-constant series.
    let spread: f64 = {
        let mean = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
        points
            .iter()
            .map(|&(_, y)| (y - mean) * (y - mean))
            .sum::<f64>()
    };
    if spread < 1e-12 {
        return ScalingClass::Ambiguous;
    }

    if log_residual <= 0.5 * lin_residual {
        ScalingClass::Logarithmic
    } else if lin_residual <= 0.5 * log_residual {
        ScalingClass::Linear
    } else {
        ScalingClass::Ambiguous
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        [256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0]
            .iter()
            .map(|&n| (n, f(n)))
            .collect()
    }

    #[test]
    fn logarithmic_series_is_classified_as_logarithmic() {
        let points = series(|n| 3.0 + 1.7 * n.log2());
        assert_eq!(classify_scaling(&points), ScalingClass::Logarithmic);
        let fit = fit_logarithmic(&points).unwrap();
        assert!((fit.slope() - 1.7).abs() < 1e-9);
        assert!(fit.r_squared() > 0.999);
        assert_eq!(fit.points, 7);
    }

    #[test]
    fn linear_series_is_classified_as_linear() {
        let points = series(|n| 10.0 + 0.25 * n);
        assert_eq!(classify_scaling(&points), ScalingClass::Linear);
        let fit = fit_linear_in_n(&points).unwrap();
        assert!((fit.slope() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn noisy_logarithmic_series_is_never_called_linear() {
        // Deterministic "noise" of ±10% may push the verdict to Ambiguous (the
        // classifier is conservative) but must never call the series linear, and
        // the fitted logarithmic slope must survive the noise.
        let points: Vec<(f64, f64)> = series(|n| 2.0 * n.log2())
            .into_iter()
            .enumerate()
            .map(|(i, (n, y))| (n, y * if i % 2 == 0 { 1.1 } else { 0.9 }))
            .collect();
        assert_ne!(classify_scaling(&points), ScalingClass::Linear);
        let fit = fit_logarithmic(&points).unwrap();
        assert!((fit.slope() - 2.0).abs() < 0.5);
        // With mild ±3% noise the verdict is unambiguous.
        let mild: Vec<(f64, f64)> = series(|n| 2.0 * n.log2())
            .into_iter()
            .enumerate()
            .map(|(i, (n, y))| (n, y * if i % 2 == 0 { 1.03 } else { 0.97 }))
            .collect();
        assert_eq!(classify_scaling(&mild), ScalingClass::Logarithmic);
    }

    #[test]
    fn short_or_flat_series_are_ambiguous() {
        assert_eq!(classify_scaling(&[(10.0, 1.0)]), ScalingClass::Ambiguous);
        assert_eq!(
            classify_scaling(&[(10.0, 5.0), (20.0, 5.0), (40.0, 5.0)]),
            ScalingClass::Ambiguous
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalingClass::Logarithmic.to_string(), "logarithmic");
        assert_eq!(ScalingClass::Linear.to_string(), "linear");
        assert_eq!(ScalingClass::Ambiguous.to_string(), "ambiguous");
    }

    #[test]
    fn invalid_series_yield_none_fits() {
        assert!(fit_logarithmic(&[(0.0, 1.0), (2.0, 3.0)]).is_none());
        assert!(fit_linear_in_n(&[(1.0, 1.0)]).is_none());
    }
}
