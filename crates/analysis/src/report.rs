//! Report regeneration from stored scenario records.
//!
//! The scenario engine persists everything a verdict needs: the main
//! `results/<name>.jsonl` checkpoint (one [`CellRecord`] per cell) and, for
//! series-enabled runs, the `results/<name>.series.jsonl` side file (one
//! [`SeriesRecord`] per supporting cell). This module rebuilds the
//! `EXPERIMENTS.md`-style report — per-point summary table, trajectory
//! summaries, and the paper-claim verdict table — from those files alone,
//! without re-running a single cell. `exp report <name>` is a thin wrapper
//! around [`scenario_report`].
//!
//! The verdict rules are keyed on metric *presence*, not on scenario names:
//! a scenario that records `completed` gets the majority-completion check, a
//! scenario that records both `max_in_degree` and `in_degree_cap` gets the
//! RAES cap check, and so on. New scenarios inherit verdicts by emitting the
//! shared metric vocabulary.

use churn_sim::scenario::{CellRecord, LoadRecord, SeriesRecord};
use churn_sim::Table;

use crate::comparison::{Comparison, ComparisonSet};
use crate::records::summarize_cells;

/// A regenerated scenario report: summary tables plus the verdict rows.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Summary tables — per-point means over the stored cell records, and
    /// (when series records are present) per-point trajectory summaries.
    pub tables: Vec<Table>,
    /// The paper-claim verdict rows derived from the stored metrics.
    pub comparisons: ComparisonSet,
}

impl ScenarioReport {
    /// Returns `true` when every derived comparison holds (vacuously true
    /// when the scenario's metrics trigger no rule).
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.comparisons.all_hold()
    }
}

/// Rebuilds the report for `scenario` from stored records.
///
/// `records` comes from `load_cell_records` on the main checkpoint and must
/// be non-empty for a meaningful report; `series` comes from
/// `load_series_records` on the side file and may be empty (series-off runs,
/// or measurements without per-round output); `loads` comes from
/// `load_load_records` on the `.load.jsonl` side file and may be empty (the
/// file only covers cells executed by the *last* invocation — resumed runs
/// re-create it). The throughput table it feeds is explicitly marked
/// machine-dependent: wall-clock never enters the deterministic checkpoint,
/// and its numbers are only comparable on one machine.
#[must_use]
pub fn scenario_report(
    scenario: &str,
    records: &[CellRecord],
    series: &[SeriesRecord],
    loads: &[LoadRecord],
) -> ScenarioReport {
    let mut tables = vec![summarize_cells(
        format!("{scenario} — per-point means"),
        records,
    )];
    if !series.is_empty() {
        let derived: Vec<CellRecord> = series.iter().map(series_summary_record).collect();
        tables.push(summarize_cells(
            format!("{scenario} — trajectory summaries (from .series.jsonl)"),
            &derived,
        ));
    }
    if !loads.is_empty() {
        tables.push(throughput_table(scenario, loads));
    }
    ScenarioReport {
        tables,
        comparisons: derive_comparisons(scenario, records),
    }
}

/// Renders per-point wall-clock throughput from the `.load.jsonl` side
/// file: records grouped by `(net, n, d, victim)` in first-appearance
/// order, with total wall time, total work units and the aggregate rate
/// (total units over total seconds — the mean of per-cell rates would
/// over-weight short cells). When any record carries a phase breakdown the
/// dominant phase and its share of the group's phase time are appended.
fn throughput_table(scenario: &str, loads: &[LoadRecord]) -> Table {
    let mut groups: Vec<(String, usize, usize, String)> = Vec::new();
    for load in loads {
        let key = (load.net.clone(), load.n, load.d, load.victim.clone());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    let has_phases = loads.iter().any(|l| !l.phases.is_empty());
    let mut header: Vec<String> = vec![
        "net".into(),
        "n".into(),
        "d".into(),
        "victim".into(),
        "cells".into(),
        "unit".into(),
        "units".into(),
        "wall_s".into(),
        "units/s".into(),
    ];
    if has_phases {
        header.push("top phase".into());
    }
    let mut table = Table::new(
        format!("{scenario} — wall-clock throughput (from .load.jsonl; machine-dependent, not checkpointed)"),
        header,
    );
    for key in &groups {
        let rows: Vec<&LoadRecord> = loads
            .iter()
            .filter(|l| l.net == key.0 && l.n == key.1 && l.d == key.2 && l.victim == key.3)
            .collect();
        let wall_s: f64 = rows.iter().map(|l| l.wall_s).sum();
        let units: f64 = rows.iter().map(|l| l.units).sum();
        let rate = if wall_s > 0.0 {
            units / wall_s
        } else {
            f64::NAN
        };
        // The unit is uniform within a scenario; tolerate mixtures anyway.
        let unit = rows
            .iter()
            .map(|l| l.unit)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
            .join("+");
        let mut cells = vec![
            key.0.clone(),
            key.1.to_string(),
            key.2.to_string(),
            key.3.clone(),
            rows.len().to_string(),
            unit,
            format!("{units:.0}"),
            format!("{wall_s:.3}"),
            format!("{rate:.0}"),
        ];
        if has_phases {
            let mut phase_totals: Vec<(String, f64)> = Vec::new();
            for row in &rows {
                for (phase, seconds) in &row.phases {
                    match phase_totals.iter_mut().find(|(name, _)| name == phase) {
                        Some((_, total)) => *total += seconds,
                        None => phase_totals.push((phase.clone(), *seconds)),
                    }
                }
            }
            let phase_sum: f64 = phase_totals.iter().map(|(_, s)| s).sum();
            let top = phase_totals
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .filter(|_| phase_sum > 0.0)
                .map_or_else(
                    || "-".to_string(),
                    |(name, seconds)| format!("{name} ({:.0}%)", 100.0 * seconds / phase_sum),
                );
            cells.push(top);
        }
        table.push_row(cells);
    }
    table
}

/// Collapses one per-round series into a flat metric record with the same
/// cell identity, so the trajectory table reuses [`summarize_cells`] grouping.
fn series_summary_record(series: &SeriesRecord) -> CellRecord {
    let mut metrics: Vec<(String, f64)> = vec![("rounds".into(), series.rounds() as f64)];
    for (name, values) in &series.series {
        match name.as_str() {
            "informed_fraction" => {
                metrics.push(("final_informed".into(), last_finite(values)));
                metrics.push(("rounds_to_half".into(), rounds_to(values, 0.5)));
                metrics.push(("rounds_to_99".into(), rounds_to(values, 0.99)));
            }
            // Per-round deltas: the interesting summary is the total.
            "newly_informed" | "duplicates" | "lost" | "blocked" | "requests" | "replies"
            | "repaired" | "sheds" | "crashes" | "restarts" | "pulls" => {
                metrics.push((format!("total_{name}"), finite_sum(values)));
            }
            // Peaks for load/saturation-shaped columns.
            "max_in_degree" | "saturated_fraction" | "informed" => {
                metrics.push((format!("peak_{name}"), finite_max(values)));
            }
            // Population columns: the end state tells the story.
            _ => metrics.push((format!("final_{name}"), last_finite(values))),
        }
    }
    CellRecord {
        scenario: series.scenario.clone(),
        net: series.net.clone(),
        n: series.n,
        d: series.d,
        victim: series.victim.clone(),
        fault: series.fault.clone(),
        trial: series.trial,
        seed: series.seed,
        metrics,
    }
}

/// First round index (1-based, as a count of rounds) at which `values`
/// reaches `threshold`; `NaN` when it never does.
fn rounds_to(values: &[f64], threshold: f64) -> f64 {
    values
        .iter()
        .position(|&v| v >= threshold)
        .map_or(f64::NAN, |i| (i + 1) as f64)
}

fn last_finite(values: &[f64]) -> f64 {
    values
        .iter()
        .rev()
        .copied()
        .find(|v| v.is_finite())
        .unwrap_or(f64::NAN)
}

fn finite_sum(values: &[f64]) -> f64 {
    values.iter().copied().filter(|v| v.is_finite()).sum()
}

fn finite_max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NAN, f64::max)
}

/// Mean of a metric over the records that carry it; `None` when absent.
fn metric_mean(records: &[CellRecord], name: &str) -> Option<f64> {
    let values: Vec<f64> = records
        .iter()
        .filter_map(|r| r.metric(name))
        .filter(|v| v.is_finite())
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Max of a metric over the records that carry it; `None` when absent.
fn metric_max(records: &[CellRecord], name: &str) -> Option<f64> {
    records
        .iter()
        .filter_map(|r| r.metric(name))
        .filter(|v| v.is_finite())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Min of a metric over the records that carry it; `None` when absent.
fn metric_min(records: &[CellRecord], name: &str) -> Option<f64> {
    records
        .iter()
        .filter_map(|r| r.metric(name))
        .filter(|v| v.is_finite())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Derives the verdict rows the scenario's metric vocabulary supports.
fn derive_comparisons(scenario: &str, records: &[CellRecord]) -> ComparisonSet {
    let mut set = ComparisonSet::new(format!("{scenario} — paper-claim verdicts"));
    if let Some(mean) = metric_mean(records, "completed") {
        set.push(
            Comparison::new(
                "flooding completion rate",
                "Theorems 3.16 / 4.20",
                ">= 0.50 of trials",
                format!("{mean:.2}"),
                mean >= 0.5,
            )
            .with_note("fraction of cells whose flooding completed"),
        );
    }
    if let (Some(max_deg), Some(cap)) = (
        metric_max(records, "max_in_degree"),
        metric_max(records, "in_degree_cap"),
    ) {
        set.push(
            Comparison::new(
                "peak RAES in-degree",
                "RAES accept rule (Becchetti et al.)",
                format!("<= cap {cap:.0}"),
                format!("{max_deg:.0}"),
                max_deg <= cap,
            )
            .with_note("max over every stored cell"),
        );
    }
    if let Some(min_h_out) = metric_min(records, "min_h_out") {
        set.push(
            Comparison::new(
                "min honest out-degree",
                "RAES out-degree repair",
                "> 0 (no honest node stranded)",
                format!("{min_h_out:.0}"),
                min_h_out > 0.0,
            )
            .with_note("min over every stored cell"),
        );
    }
    if let Some(expansion) = metric_min(records, "expansion") {
        set.push(
            Comparison::new(
                "snapshot expansion",
                "Theorems 3.15 / 4.16",
                "> 0 on every cell",
                format!("{expansion:.4}"),
                expansion > 0.0,
            )
            .with_note("min over every stored cell"),
        );
    }
    if let Some(recovered) = metric_mean(records, "partition_recovered") {
        set.push(
            Comparison::new(
                "partition recovery rate",
                "partition-healing scenario",
                ">= 0.50 of trials",
                format!("{recovered:.2}"),
                recovered >= 0.5,
            )
            .with_note("fraction of cells that re-healed after the partition"),
        );
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(metrics: &[(&str, f64)]) -> CellRecord {
        CellRecord {
            scenario: "s".into(),
            net: "SDGR".into(),
            n: 256,
            d: 4,
            victim: "uniform".into(),
            fault: None,
            trial: 0,
            seed: 7,
            metrics: metrics.iter().map(|&(m, v)| (m.to_string(), v)).collect(),
        }
    }

    fn series(columns: &[(&str, &[f64])]) -> SeriesRecord {
        SeriesRecord {
            scenario: "s".into(),
            net: "SDGR".into(),
            n: 256,
            d: 4,
            victim: "uniform".into(),
            fault: None,
            trial: 0,
            seed: 7,
            series: columns
                .iter()
                .map(|&(name, values)| (name.to_string(), values.to_vec()))
                .collect(),
        }
    }

    #[test]
    fn verdict_rules_fire_only_on_present_metrics() {
        let records = vec![
            cell(&[
                ("completed", 1.0),
                ("max_in_degree", 11.0),
                ("in_degree_cap", 12.0),
            ]),
            cell(&[
                ("completed", 1.0),
                ("max_in_degree", 9.0),
                ("in_degree_cap", 12.0),
            ]),
        ];
        let report = scenario_report("demo", &records, &[], &[]);
        assert_eq!(report.comparisons.len(), 2, "completion + cap rules");
        assert!(report.all_hold());
        // A cap violation flips the verdict.
        let bad = vec![cell(&[("max_in_degree", 13.0), ("in_degree_cap", 12.0)])];
        assert!(!scenario_report("demo", &bad, &[], &[]).all_hold());
        // No known metrics → vacuous verdict set.
        let none = vec![cell(&[("rounds", 5.0)])];
        let empty = scenario_report("demo", &none, &[], &[]);
        assert!(empty.comparisons.is_empty());
        assert!(empty.all_hold());
    }

    #[test]
    fn trajectory_table_summarizes_series_columns() {
        let records = vec![cell(&[("rounds", 3.0)])];
        let run = series(&[
            ("informed_fraction", &[0.2, 0.6, 1.0][..]),
            ("newly_informed", &[50.0, 100.0, 102.0][..]),
            ("alive", &[250.0, 252.0, 249.0][..]),
        ]);
        let report = scenario_report("demo", &records, std::slice::from_ref(&run), &[]);
        assert_eq!(report.tables.len(), 2);
        let md = report.tables[1].to_markdown();
        assert!(md.contains("trajectory summaries"));
        assert!(md.contains("rounds_to_half"), "{md}");
        assert!(md.contains("total_newly_informed"), "{md}");
        assert!(md.contains("final_alive"), "{md}");
        // rounds_to_half: first round reaching 0.5 is round 2.
        let derived = series_summary_record(&run);
        assert_eq!(derived.metric("rounds_to_half"), Some(2.0));
        assert_eq!(derived.metric("rounds_to_99"), Some(3.0));
        assert_eq!(derived.metric("final_informed"), Some(1.0));
        assert_eq!(derived.metric("total_newly_informed"), Some(252.0));
    }

    fn load(
        net: &str,
        trial: usize,
        wall_s: f64,
        units: f64,
        phases: &[(&str, f64)],
    ) -> LoadRecord {
        LoadRecord {
            scenario: "s".into(),
            net: net.into(),
            n: 256,
            d: 4,
            victim: "uniform".into(),
            trial,
            seed: 7,
            wall_s,
            unit: "events",
            units,
            units_per_s: units / wall_s,
            phases: phases
                .iter()
                .map(|&(name, s)| (name.to_string(), s))
                .collect(),
        }
    }

    #[test]
    fn throughput_table_aggregates_load_records_per_point() {
        let loads = vec![
            load(
                "SDG",
                0,
                1.0,
                1000.0,
                &[("event-loop", 0.9), ("churn", 0.1)],
            ),
            load(
                "SDG",
                1,
                3.0,
                9000.0,
                &[("event-loop", 2.4), ("churn", 0.6)],
            ),
            load("RAES", 0, 1.0, 500.0, &[]),
        ];
        let report = scenario_report("demo", &[cell(&[])], &[], &loads);
        let table = report.tables.last().unwrap();
        assert!(table.title().contains("machine-dependent"));
        let md = table.to_markdown();
        // SDG: 10000 units over 4 s — the aggregate rate, not the mean of
        // per-cell rates (which would be 2000).
        assert!(md.contains("2500"), "{md}");
        assert!(md.contains("10000"), "{md}");
        // Dominant phase with its share of the group's phase time.
        assert!(md.contains("event-loop (82%)"), "{md}");
        // The phase-free RAES group dashes the phase column.
        assert!(md.contains('-'), "{md}");

        // No load records → no throughput table at all.
        let without = scenario_report("demo", &[cell(&[])], &[], &[]);
        assert_eq!(without.tables.len(), 1);
    }

    #[test]
    fn threshold_never_reached_yields_nan_and_is_dashed_in_the_table() {
        let run = series(&[("informed_fraction", &[0.1, 0.2][..])]);
        let derived = series_summary_record(&run);
        assert!(derived.metric("rounds_to_99").unwrap().is_nan());
        let report = scenario_report("demo", &[cell(&[])], &[run], &[]);
        assert!(report.tables[1].to_markdown().contains('-'));
    }
}
