//! Paper-claim vs measured-value comparisons.

use serde::{Deserialize, Serialize};

use churn_sim::Table;

/// One "paper says X, we measured Y" row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared (e.g. `isolated fraction, SDG n=4096 d=2`).
    pub label: String,
    /// Where the claim comes from (e.g. `Lemma 3.5`).
    pub paper_reference: String,
    /// The paper's prediction, as a display string.
    pub predicted: String,
    /// The measured value, as a display string.
    pub measured: String,
    /// Whether the qualitative claim holds in the measurement.
    pub holds: bool,
    /// Free-form note (how the verdict was decided, caveats).
    pub note: String,
}

impl Comparison {
    /// Creates a comparison row.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        paper_reference: impl Into<String>,
        predicted: impl Into<String>,
        measured: impl Into<String>,
        holds: bool,
    ) -> Self {
        Comparison {
            label: label.into(),
            paper_reference: paper_reference.into(),
            predicted: predicted.into(),
            measured: measured.into(),
            holds,
            note: String::new(),
        }
    }

    /// Attaches a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Creates a ratio comparison that holds when
    /// `measured ≤ factor · baseline` — the shape of "X stays within k× of Y"
    /// claims (e.g. protocol-maintained flooding time vs. the SDGR baseline).
    /// The measured/baseline ratio is recorded in the note.
    #[must_use]
    pub fn within_factor(
        label: impl Into<String>,
        paper_reference: impl Into<String>,
        baseline: f64,
        measured: f64,
        factor: f64,
    ) -> Self {
        let ratio = if baseline > 0.0 {
            measured / baseline
        } else {
            f64::INFINITY
        };
        Comparison::new(
            label,
            paper_reference,
            format!("<= {factor:.2} x baseline {baseline:.2}"),
            format!("{measured:.2}"),
            measured <= factor * baseline,
        )
        .with_note(format!("measured/baseline ratio {ratio:.2}"))
    }

    /// The verdict symbol used in reports.
    #[must_use]
    pub fn verdict_symbol(&self) -> &'static str {
        if self.holds {
            "✓"
        } else {
            "✗"
        }
    }
}

/// A named collection of comparisons, renderable as a report table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComparisonSet {
    /// Name of the experiment the comparisons belong to.
    pub name: String,
    /// The comparison rows.
    pub comparisons: Vec<Comparison>,
}

impl ComparisonSet {
    /// Creates an empty set with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ComparisonSet {
            name: name.into(),
            comparisons: Vec::new(),
        }
    }

    /// Appends a comparison.
    pub fn push(&mut self, comparison: Comparison) {
        self.comparisons.push(comparison);
    }

    /// Number of comparisons.
    #[must_use]
    pub fn len(&self) -> usize {
        self.comparisons.len()
    }

    /// Returns `true` when the set holds no comparisons.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.comparisons.is_empty()
    }

    /// Returns `true` when every comparison holds.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.comparisons.iter().all(|c| c.holds)
    }

    /// Number of comparisons that hold.
    #[must_use]
    pub fn holding(&self) -> usize {
        self.comparisons.iter().filter(|c| c.holds).count()
    }

    /// Renders the set as a `churn-sim` table (the format used by the experiment
    /// binaries and `EXPERIMENTS.md`).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            self.name.clone(),
            [
                "quantity",
                "paper",
                "predicted",
                "measured",
                "holds",
                "note",
            ],
        );
        for c in &self.comparisons {
            table.push_row([
                c.label.clone(),
                c.paper_reference.clone(),
                c.predicted.clone(),
                c.measured.clone(),
                c.verdict_symbol().to_string(),
                c.note.clone(),
            ]);
        }
        table
    }

    /// Markdown rendering of [`Self::to_table`].
    #[must_use]
    pub fn to_markdown(&self) -> String {
        self.to_table().to_markdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_factor_holds_on_the_boundary_and_fails_beyond() {
        assert!(Comparison::within_factor("a", "ref", 10.0, 29.9, 3.0).holds);
        assert!(Comparison::within_factor("a", "ref", 10.0, 30.0, 3.0).holds);
        assert!(!Comparison::within_factor("a", "ref", 10.0, 30.1, 3.0).holds);
        let c = Comparison::within_factor("a", "ref", 10.0, 20.0, 3.0);
        assert!(
            c.note.contains("2.00"),
            "ratio recorded in note: {}",
            c.note
        );
        // A zero baseline cannot be beaten by any positive measurement.
        assert!(!Comparison::within_factor("a", "ref", 0.0, 1.0, 3.0).holds);
    }

    fn sample() -> ComparisonSet {
        let mut set = ComparisonSet::new("E1 — isolated nodes");
        set.push(
            Comparison::new(
                "isolated fraction, SDG d=2",
                "Lemma 3.5",
                ">= e^{-4}/6 = 0.0031",
                "0.0170",
                true,
            )
            .with_note("measured mean over 20 trials"),
        );
        set.push(Comparison::new(
            "isolated fraction, SDGR d=2",
            "Theorem 3.15",
            "0 (expander)",
            "0.0000",
            true,
        ));
        set
    }

    #[test]
    fn set_accounting() {
        let set = sample();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(set.all_hold());
        assert_eq!(set.holding(), 2);
    }

    #[test]
    fn failing_comparison_breaks_all_hold() {
        let mut set = sample();
        set.push(Comparison::new("bogus", "none", "1", "2", false));
        assert!(!set.all_hold());
        assert_eq!(set.holding(), 2);
        assert_eq!(set.comparisons[2].verdict_symbol(), "✗");
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        let set = sample();
        let table = set.to_table();
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.columns().len(), 6);
        let md = set.to_markdown();
        assert!(md.contains("E1 — isolated nodes"));
        assert!(md.contains("Lemma 3.5"));
        assert!(md.contains("✓"));
        assert!(md.contains("measured mean over 20 trials"));
    }

    #[test]
    fn empty_set_renders_header_only() {
        let set = ComparisonSet::new("empty");
        assert!(set.is_empty());
        assert!(set.all_hold(), "vacuously true");
        assert_eq!(set.to_table().rows().len(), 0);
    }
}
