//! Summaries over scenario cell records.
//!
//! The scenario engine (`churn_sim::scenario`) emits one [`CellRecord`] per
//! grid cell with a flat named-metric map — a uniform schema across every
//! registered scenario. This module turns a record list into the per-point
//! summary table the `exp` runner prints (and `EXPERIMENTS.md` consumers
//! paste): records grouped by `(net, n, d, victim)` in first-appearance
//! order, one column per metric (union over the group rows, in
//! first-appearance order), each cell the mean over the group's trials.

use churn_sim::scenario::CellRecord;
use churn_sim::{Aggregate, Table};

/// Groups records by `(net, n, d, victim)` and renders one mean-per-metric
/// row per group. Metrics absent from a group (e.g. protocol health on
/// non-RAES rows) render as `-`.
#[must_use]
pub fn summarize_cells(title: impl Into<String>, records: &[CellRecord]) -> Table {
    // First-appearance orders for groups and metric columns.
    let mut groups: Vec<(String, usize, usize, String)> = Vec::new();
    let mut metrics: Vec<String> = Vec::new();
    for record in records {
        let key = record.group_key();
        if !groups.contains(&key) {
            groups.push(key);
        }
        for (metric, _) in &record.metrics {
            if !metrics.contains(metric) {
                metrics.push(metric.clone());
            }
        }
    }

    let mut header: Vec<String> = vec![
        "net".into(),
        "n".into(),
        "d".into(),
        "victim".into(),
        "trials".into(),
    ];
    header.extend(metrics.iter().cloned());
    let mut table = Table::new(title, header);

    for key in &groups {
        let rows: Vec<&CellRecord> = records.iter().filter(|r| &r.group_key() == key).collect();
        let mut cells = vec![
            key.0.clone(),
            key.1.to_string(),
            key.2.to_string(),
            key.3.clone(),
            rows.len().to_string(),
        ];
        for metric in &metrics {
            let values: Vec<f64> = rows
                .iter()
                .filter_map(|r| r.metric(metric))
                .filter(|v| !v.is_nan())
                .collect();
            if values.is_empty() {
                cells.push("-".to_string());
            } else {
                let agg = Aggregate::from_values(&values);
                cells.push(format_metric(agg.mean));
            }
        }
        table.push_row(cells);
    }
    table
}

/// Compact fixed-ish formatting: integers verbatim, small magnitudes with 4
/// decimals, everything else with 2.
fn format_metric(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e12 {
        format!("{value:.0}")
    } else if value.abs() < 10.0 {
        format!("{value:.4}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(net: &str, n: usize, trial: usize, metrics: &[(&str, f64)]) -> CellRecord {
        CellRecord {
            scenario: "s".into(),
            net: net.into(),
            n,
            d: 4,
            victim: "uniform".into(),
            fault: None,
            trial,
            seed: (n + trial) as u64,
            metrics: metrics.iter().map(|&(m, v)| (m.to_string(), v)).collect(),
        }
    }

    #[test]
    fn groups_and_metric_columns_keep_first_appearance_order() {
        let records = vec![
            record("SDG", 64, 0, &[("rounds", 6.0), ("completed", 1.0)]),
            record("SDG", 64, 1, &[("rounds", 8.0), ("completed", 1.0)]),
            record("RAES", 64, 0, &[("rounds", 7.0), ("cap", 12.0)]),
        ];
        let table = summarize_cells("t", &records);
        let markdown = table.to_markdown();
        // Metric columns in first-appearance order, groups aggregated.
        let header_pos = |s: &str| markdown.find(s).unwrap_or(usize::MAX);
        assert!(header_pos("rounds") < header_pos("completed"));
        assert!(header_pos("completed") < header_pos("cap"));
        assert!(markdown.contains('7'), "SDG mean of 6 and 8 is 7");
        // RAES has no "completed" metric: rendered as "-".
        assert!(markdown.contains('-'));
    }

    #[test]
    fn nan_metrics_are_skipped_in_the_mean() {
        let records = vec![
            record("SDG", 64, 0, &[("x", f64::NAN)]),
            record("SDG", 64, 1, &[("x", 4.0)]),
        ];
        let table = summarize_cells("t", &records);
        assert!(table.to_markdown().contains('4'));
    }
}
