//! # churn-analysis
//!
//! Theory-vs-measured analysis for the churn-network reproduction.
//!
//! The paper's statements are asymptotic; at simulation sizes the meaningful
//! questions are about *shapes and orderings*: does the flooding time of the
//! regeneration models grow like `log n` rather than like `n`? Does the isolated
//! fraction decay exponentially in `d`? Does the regeneration column of Table 1
//! beat the no-regeneration column? This crate turns raw sweep results into
//! those verdicts:
//!
//! * [`scaling`] — least-squares classification of a measured series as
//!   logarithmic vs linear in `n` (the shape distinction between Theorems
//!   3.16/4.20 and Theorems 3.7/4.12),
//! * [`comparison`] — side-by-side "paper claim vs measured value" rows with a
//!   pass/fail verdict, rendered through `churn-sim` tables into the format
//!   `EXPERIMENTS.md` uses,
//! * [`report`] — report regeneration: rebuilds summary tables, trajectory
//!   summaries, and the verdict rows from the stored `results/*.jsonl` and
//!   `results/*.series.jsonl` files without re-running any cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comparison;
pub mod records;
pub mod report;
pub mod scaling;

pub use comparison::{Comparison, ComparisonSet};
pub use records::summarize_cells;
pub use report::{scenario_report, ScenarioReport};
pub use scaling::{classify_scaling, fit_logarithmic, ScalingClass, ScalingFit};
