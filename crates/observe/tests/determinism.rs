//! Determinism suite: the live trackers match their from-scratch
//! recomputation at every round, for all five `ModelKind`s (the four paper
//! baselines plus the RAES protocol model on both churn drivers), and the
//! lifecycle trackers agree with the pre-existing O(n)-per-round analyses.

use churn_core::flooding::{FloodingProcess, FloodingSource};
use churn_core::isolated::lifetime_isolation_report;
use churn_core::{DynamicNetwork, GraphDelta, ModelKind, Snapshot};
use churn_observe::{IncrementalSnapshot, InformedOverlap, LifetimeIsolation, LiveMetrics};
use churn_protocol::{ChurnDriver, RaesConfig, RaesModel};

/// Drives `model` for `rounds` rounds with observers attached, asserting the
/// tracker state matches a from-scratch recomputation after every round and
/// the incremental snapshot materialises exactly per checkpoint.
fn assert_observers_track<M: DynamicNetwork>(model: &mut M, rounds: u64, label: &str) {
    model.graph_mut().set_delta_recording(true);
    let mut inc = IncrementalSnapshot::new(model.graph()).with_threads(2);
    let mut metrics = LiveMetrics::new(model.graph());
    let mut delta = GraphDelta::new();
    for round in 1..=rounds {
        model.advance_time_unit();
        model.graph_mut().take_delta_into(&mut delta);
        inc.apply(model.graph(), &delta);
        metrics.apply(model.graph(), &delta);

        let fresh = LiveMetrics::new(model.graph());
        assert_eq!(
            metrics.summary(),
            fresh.summary(),
            "{label}: tracker diverged at round {round}"
        );
        assert_eq!(metrics.alive(), model.alive_count(), "{label}");
        assert_eq!(
            inc.to_snapshot(),
            Snapshot::of(model.graph()),
            "{label}: incremental snapshot diverged at round {round}"
        );
    }
}

#[test]
fn trackers_match_from_scratch_for_all_five_model_kinds() {
    for kind in ModelKind::ALL {
        let mut model = kind.build(60, 3, 0xD5).expect("valid parameters");
        model.warm_up();
        assert_observers_track(&mut model, 40, kind.label());
    }
    for churn in [ChurnDriver::Streaming, ChurnDriver::Poisson] {
        let mut model = RaesModel::new(RaesConfig::new(60, 3).churn(churn).seed(0xD5))
            .expect("valid parameters");
        model.warm_up();
        assert_observers_track(&mut model, 40, &format!("RAES/{churn}"));
    }
}

#[test]
fn raes_cap_occupancy_is_tracked_live() {
    // Tight capacity (c = 1) keeps nodes pinned at the cap, so the
    // saturated count is non-trivial.
    let mut model = RaesModel::new(
        RaesConfig::new(60, 4)
            .capacity_factor(1.0)
            .seed(7)
            .churn(ChurnDriver::Streaming),
    )
    .unwrap();
    model.warm_up();
    model.graph_mut().set_delta_recording(true);
    let cap = model.in_degree_cap();
    let mut metrics = LiveMetrics::new(model.graph());
    let mut delta = GraphDelta::new();
    let mut saw_saturation = false;
    for _ in 0..80 {
        model.advance_time_unit();
        model.graph_mut().take_delta_into(&mut delta);
        metrics.apply(model.graph(), &delta);
        assert!(metrics.max_in_requests() <= cap, "cap must hold");
        let expected = model
            .graph()
            .member_indices()
            .iter()
            .filter(|&&idx| model.graph().in_request_count_at(idx).unwrap() >= cap)
            .count();
        assert_eq!(metrics.saturated_count(cap), expected);
        saw_saturation |= expected > 0;
    }
    assert!(saw_saturation, "tight capacity must exercise the cap");
}

#[test]
fn lifetime_isolation_tracker_matches_report_on_streaming_churn() {
    // Streaming churn: one death + one birth per round, so the tracker's
    // event-level view and the report's round-boundary view coincide exactly.
    let mut model = ModelKind::Sdg.build(200, 2, 11).unwrap();
    model.warm_up();
    let horizon = 200u64;
    let report = lifetime_isolation_report(&model, horizon);

    let mut future = model.clone();
    future.graph_mut().set_delta_recording(true);
    let tracker = LifetimeIsolation::start(future.graph());
    assert_eq!(
        tracker.initial_isolated(),
        report.isolated_now.as_slice(),
        "initial censuses must agree"
    );
    let mut tracker = tracker;
    let mut delta = GraphDelta::new();
    for _ in 0..horizon {
        if tracker.remaining_candidates() == 0 {
            break;
        }
        future.advance_time_unit();
        future.graph_mut().take_delta_into(&mut delta);
        tracker.apply(future.graph(), &delta);
    }
    let lifetime = tracker.finish(future.graph());
    assert_eq!(
        lifetime, report.lifetime_isolated,
        "O(churn) tracker must reproduce the O(candidates)-per-round report"
    );
    assert!(
        !report.isolated_now.is_empty(),
        "a warm SDG network at d = 2 should have isolated nodes to track"
    );
}

#[test]
fn lifetime_isolation_tracker_matches_report_on_poisson_churn() {
    // Poisson time units span many events, but the tracker reconciles each
    // window against its final state — the same granularity as the per-unit
    // boundary rescan — so the two computations agree exactly here too.
    let mut model = ModelKind::Pdg.build(200, 2, 12).unwrap();
    model.warm_up();
    let horizon = 150u64;
    let report = lifetime_isolation_report(&model, horizon);

    let mut future = model.clone();
    future.graph_mut().set_delta_recording(true);
    let mut tracker = LifetimeIsolation::start(future.graph());
    let mut delta = GraphDelta::new();
    for _ in 0..horizon {
        future.advance_time_unit();
        future.graph_mut().take_delta_into(&mut delta);
        tracker.apply(future.graph(), &delta);
    }
    let lifetime = tracker.finish(future.graph());
    assert_eq!(
        lifetime, report.lifetime_isolated,
        "tracker must match the round-boundary report at window granularity"
    );
    assert!(
        !report.isolated_now.is_empty(),
        "a warm PDG network at d = 2 should have isolated nodes to track"
    );
}

#[test]
fn informed_overlap_tracks_flooding_informed_count() {
    let mut model = ModelKind::Sdgr.build(128, 5, 13).unwrap();
    model.warm_up();
    model.graph_mut().set_delta_recording(true);
    let mut process = FloodingProcess::start(&mut model, FloodingSource::Newest);
    // Starting the process may advance the model; drop whatever churn that
    // recorded before wiring the tracker.
    let mut delta = GraphDelta::new();
    model.graph_mut().take_delta_into(&mut delta);
    let mut overlap = InformedOverlap::new();
    for idx in process.informed_dense() {
        overlap.mark(idx);
    }
    for _ in 0..40 {
        let stats = process.step(&mut model);
        model.graph_mut().take_delta_into(&mut delta);
        // Deaths first, then the round's new marks: a recycled cell whose
        // newborn got informed in the same round must survive.
        overlap.apply(&delta);
        for idx in process.newly_informed_dense() {
            overlap.mark(idx);
        }
        assert_eq!(overlap.informed_alive(), process.informed_count());
        assert!((overlap.overlap_fraction(stats.alive) - stats.informed_fraction()).abs() < 1e-12);
        if stats.complete {
            break;
        }
    }
    assert!(process.is_complete(), "SDGR flooding should complete");
}

#[test]
fn behavior_census_tracks_byzantine_populations_live() {
    use churn_observe::BehaviorCensus;
    use churn_protocol::{AdversaryModel, AttackKind};

    let adversaries = [
        AdversaryModel::None,
        AdversaryModel::Uniform {
            fraction: 0.25,
            attack: AttackKind::RefuseAll,
        },
        AdversaryModel::JoinFlood {
            fraction: 0.2,
            cohort: 4,
            attack: AttackKind::SilentOnFlood,
        },
    ];
    for adversary in adversaries {
        for churn in [ChurnDriver::Streaming, ChurnDriver::Poisson] {
            let mut model = RaesModel::new(
                RaesConfig::new(60, 3)
                    .churn(churn)
                    .adversary(adversary)
                    .seed(0xB12),
            )
            .expect("valid parameters");
            model.warm_up();
            model.graph_mut().set_delta_recording(true);
            let mut census = BehaviorCensus::new(model.graph());
            let mut delta = GraphDelta::new();
            for round in 1..=60u32 {
                model.advance_time_unit();
                model.graph_mut().take_delta_into(&mut delta);
                census.apply(model.graph(), &delta);
                let fresh = BehaviorCensus::new(model.graph());
                assert_eq!(
                    census.summary(),
                    fresh.summary(),
                    "{adversary:?}/{churn}: census diverged at round {round}"
                );
                assert_eq!(census.alive(), model.alive_count());
                assert_eq!(
                    census.byzantine_count(),
                    model.graph().tagged_member_count(),
                    "census must agree with the graph's tag count"
                );
                assert_eq!(
                    census.honest_count() + census.byzantine_count(),
                    census.alive()
                );
            }
            match adversary {
                AdversaryModel::None => {
                    assert_eq!(census.byzantine_count(), 0);
                    assert_eq!(census.byzantine_fraction(), 0.0);
                }
                _ => assert!(
                    census.byzantine_count() > 0,
                    "{adversary:?}: a 20%+ adversary corrupts someone in 60 rounds"
                ),
            }
        }
    }
}
