//! Property suite pinning the observer contracts:
//!
//! * [`IncrementalSnapshot`] materialises **bit-identically** to
//!   [`Snapshot::of`] after arbitrary churn/rewire sequences, including cell
//!   recycling, at any patch/rebuild mix;
//! * [`LiveMetrics`] matches its from-scratch recomputation after the same
//!   sequences.
//!
//! The operation stream deliberately mirrors what the churn models generate
//! (join, leave, re-point, clear, shed) and is applied in *windows*, with one
//! delta taken and applied per window — so recycling within a window, empty
//! windows and windows crossing the rebuild threshold are all exercised.

use churn_graph::{DynamicGraph, GraphDelta, NodeId, Snapshot};
use churn_observe::{ApplyOutcome, IncrementalSnapshot, LiveMetrics};
use proptest::prelude::*;

/// A random mutation applied to the graph under test.
#[derive(Debug, Clone)]
enum Op {
    Add {
        out_degree: usize,
    },
    Remove {
        victim: usize,
    },
    Rewire {
        owner: usize,
        slot: usize,
        target: usize,
    },
    Clear {
        owner: usize,
        slot: usize,
    },
    Shed {
        target: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..5).prop_map(|out_degree| Op::Add { out_degree }),
        (0usize..48).prop_map(|victim| Op::Remove { victim }),
        (0usize..48, 0usize..5, 0usize..48).prop_map(|(owner, slot, target)| Op::Rewire {
            owner,
            slot,
            target
        }),
        (0usize..48, 0usize..5).prop_map(|(owner, slot)| Op::Clear { owner, slot }),
        (0usize..48).prop_map(|target| Op::Shed { target }),
    ]
}

/// Applies one op, ignoring rejected ones (the point is the mirror equality,
/// not that every random op is valid).
fn apply_op(g: &mut DynamicGraph, alive: &mut Vec<NodeId>, next_id: &mut u64, op: &Op) {
    match *op {
        Op::Add { out_degree } => {
            let id = NodeId::new(*next_id);
            *next_id += 1;
            g.add_node(id, out_degree).expect("fresh identifier");
            alive.push(id);
        }
        Op::Remove { victim } => {
            if alive.is_empty() {
                return;
            }
            let id = alive.swap_remove(victim % alive.len());
            g.remove_node(id).expect("victim is alive");
        }
        Op::Rewire {
            owner,
            slot,
            target,
        } => {
            if alive.is_empty() {
                return;
            }
            let owner = alive[owner % alive.len()];
            let target = alive[target % alive.len()];
            let _ = g.set_out_slot(owner, slot, target);
        }
        Op::Clear { owner, slot } => {
            if alive.is_empty() {
                return;
            }
            let owner = alive[owner % alive.len()];
            let _ = g.clear_out_slot(owner, slot);
        }
        Op::Shed { target } => {
            if alive.is_empty() {
                return;
            }
            let target = alive[target % alive.len()];
            let idx = g.dense_index_of(target).expect("alive node has an index");
            let _ = g.shed_oldest_in_ref(idx);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole contract: after every window, the incrementally patched
    /// view materialises exactly `Snapshot::of`, and the live metrics match
    /// their from-scratch recomputation.
    #[test]
    fn observers_match_from_scratch_recomputation(
        prefix in proptest::collection::vec(op_strategy(), 0..40),
        windows in proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..12), 1..10),
        rebuild_fraction in prop_oneof![Just(0.25f64), Just(1e-9), Just(1.0)],
        threads in prop_oneof![Just(1usize), Just(3)],
    ) {
        let mut g = DynamicGraph::new();
        let mut alive: Vec<NodeId> = Vec::new();
        let mut next_id = 0u64;
        // Un-observed prefix: whatever happened before the subscriber
        // attached must not matter.
        for op in &prefix {
            apply_op(&mut g, &mut alive, &mut next_id, op);
        }

        g.set_delta_recording(true);
        let mut inc = IncrementalSnapshot::new(&g)
            .with_rebuild_fraction(rebuild_fraction)
            .with_threads(threads);
        let mut metrics = LiveMetrics::new(&g);
        let mut delta = GraphDelta::new();
        let mut patched_windows = 0usize;
        let mut rebuilt_windows = 0usize;

        for window in &windows {
            for op in window {
                apply_op(&mut g, &mut alive, &mut next_id, op);
            }
            g.take_delta_into(&mut delta);
            inc.apply(&g, &delta);
            metrics.apply(&g, &delta);
            // Empty windows trivially patch zero cells regardless of the
            // threshold; only count windows that actually carried changes.
            if !delta.dirty.is_empty() {
                match inc.last_outcome() {
                    ApplyOutcome::Patched { .. } => patched_windows += 1,
                    ApplyOutcome::Rebuilt => rebuilt_windows += 1,
                }
            }

            // Snapshot equality is the strongest statement: ids, offsets and
            // adjacency all agree bit for bit.
            let reference = Snapshot::of(&g);
            prop_assert_eq!(inc.to_snapshot(), reference.clone());
            prop_assert_eq!(inc.alive(), g.len());
            prop_assert_eq!(inc.edge_count(), reference.edge_count());
            for &idx in g.member_indices() {
                let id = g.id_at(idx).unwrap();
                prop_assert_eq!(inc.degree_at(idx), reference.degree(id));
            }

            // Metrics against a from-scratch tracker.
            let fresh = LiveMetrics::new(&g);
            prop_assert_eq!(metrics.summary(), fresh.summary());
            prop_assert_eq!(metrics.isolated_count(), fresh.isolated_count());
            prop_assert_eq!(metrics.max_in_requests(), fresh.max_in_requests());
        }

        // The threshold knob really selects the path: with an (effectively)
        // zero threshold every non-empty window rebuilds, with fraction 1 on
        // small windows it patches.
        if rebuild_fraction < 1e-6 {
            // Zero threshold must always rebuild.
            prop_assert_eq!(patched_windows, 0);
        }
        let _ = rebuilt_windows;
    }
}

/// Deterministic regression: a round-shaped recycling pattern (death then
/// rebirth in the same window, recycled dense index) that once would hide
/// behind rare proptest draws.
#[test]
fn same_window_recycling_is_reconciled() {
    let mut g = DynamicGraph::new();
    for raw in 0..6u64 {
        g.add_node(NodeId::new(raw), 2).unwrap();
    }
    for raw in 0..5u64 {
        g.set_out_slot(NodeId::new(raw), 0, NodeId::new(raw + 1))
            .unwrap();
    }
    g.set_delta_recording(true);
    let mut inc = IncrementalSnapshot::new(&g);
    let mut metrics = LiveMetrics::new(&g);
    let mut delta = GraphDelta::new();

    // Kill node 2 and let node 10 recycle its cell within one window; also
    // re-point a survivor's slot at the newcomer.
    let idx2 = g.dense_index_of(NodeId::new(2)).unwrap();
    g.remove_node(NodeId::new(2)).unwrap();
    let idx10 = g
        .add_node_indexed(NodeId::new(10), 2)
        .expect("fresh identifier");
    assert_eq!(idx10, idx2, "the freed cell must be recycled");
    g.set_out_slot(NodeId::new(0), 1, NodeId::new(10)).unwrap();
    g.take_delta_into(&mut delta);
    inc.apply(&g, &delta);
    metrics.apply(&g, &delta);

    assert_eq!(inc.to_snapshot(), Snapshot::of(&g));
    assert_eq!(metrics.summary(), LiveMetrics::new(&g).summary());
}
