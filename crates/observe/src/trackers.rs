//! Lifecycle-aware trackers: lifetime isolation and informed-set overlap.

use churn_graph::{DynamicGraph, GraphDelta, NodeId};

/// Tracks which of a population of *currently isolated* nodes stay isolated
/// for the rest of their lifetime (Lemmas 3.5 / 4.10): a candidate is
/// *confirmed* when it dies without ever having been seen with an incident
/// edge, and *disqualified* the moment a delta window leaves it with one.
///
/// Per-round cost is O(delta): deaths are checked against the candidate set
/// by slab index, and only dirty cells pay the incident-link probe. This
/// replaces the `lifetime_isolation_report` pattern of cloning the model and
/// re-scanning every candidate per round, which capped the isolation
/// experiments at `n ≈ 10^4`.
///
/// Granularity: like every observer in this crate, the disqualification
/// probe reconciles against the window's **final** state — a candidate that
/// transiently gains and loses an edge *inside* one window (possible under
/// Poisson churn, where a time unit spans many events) is kept, exactly as
/// the per-unit boundary rescan of `lifetime_isolation_report` keeps it.
/// With one delta window per `advance_time_unit` the two computations agree
/// exactly, on both churn drivers (pinned by `tests/determinism.rs`); only
/// the cost model differs.
#[derive(Debug, Clone)]
pub struct LifetimeIsolation {
    /// Candidate flags by slab index.
    candidate: Vec<bool>,
    remaining: usize,
    /// Identifiers of the initial isolated population, sorted.
    initial: Vec<NodeId>,
    /// Candidates that died while still isolated.
    confirmed: Vec<NodeId>,
}

impl LifetimeIsolation {
    /// Starts tracking from the graph's currently isolated nodes.
    #[must_use]
    pub fn start(graph: &DynamicGraph) -> Self {
        let mut candidate = vec![false; graph.slab_len()];
        let mut initial = Vec::new();
        for &idx in graph.member_indices() {
            if graph.incident_link_count_at(idx) == Some(0) {
                candidate[idx as usize] = true;
                initial.push(graph.id_at(idx).expect("member cells are occupied"));
            }
        }
        initial.sort_unstable();
        let remaining = initial.len();
        LifetimeIsolation {
            candidate,
            remaining,
            initial,
            confirmed: Vec::new(),
        }
    }

    /// The isolated population at start time, sorted by identifier.
    #[must_use]
    pub fn initial_isolated(&self) -> &[NodeId] {
        &self.initial
    }

    /// Candidates still alive and never seen with an edge.
    #[must_use]
    pub fn remaining_candidates(&self) -> usize {
        self.remaining
    }

    /// Candidates that already died while still isolated.
    #[must_use]
    pub fn confirmed_count(&self) -> usize {
        self.confirmed.len()
    }

    /// Processes one delta window: candidate deaths confirm (death order in
    /// the feed precedes any same-window rebirth of the cell, so recycling
    /// cannot resurrect a candidacy), and dirty candidates that picked up an
    /// incident link are disqualified for good.
    pub fn apply(&mut self, graph: &DynamicGraph, delta: &GraphDelta) {
        // Cells appended to the slab after `start` can never be candidates;
        // grow the flag array so their indices stay addressable.
        if self.candidate.len() < graph.slab_len() {
            self.candidate.resize(graph.slab_len(), false);
        }
        for &(idx, id) in &delta.deaths {
            let slot = &mut self.candidate[idx as usize];
            if *slot {
                *slot = false;
                self.remaining -= 1;
                self.confirmed.push(id);
            }
        }
        for &idx in &delta.dirty {
            let slot = &mut self.candidate[idx as usize];
            if *slot && graph.incident_link_count_at(idx) != Some(0) {
                *slot = false;
                self.remaining -= 1;
            }
        }
    }

    /// Finishes the observation: every confirmed candidate plus every
    /// candidate still alive (and still isolated — it has been for the whole
    /// window), sorted by identifier. Mirrors the counting rule of
    /// `churn_core::isolated::lifetime_isolation_report`.
    #[must_use]
    pub fn finish(mut self, graph: &DynamicGraph) -> Vec<NodeId> {
        for (idx, &is_candidate) in self.candidate.iter().enumerate() {
            if is_candidate {
                let id = graph
                    .id_at(idx as u32)
                    .expect("alive candidates occupy their recorded cell");
                self.confirmed.push(id);
            }
        }
        self.confirmed.sort_unstable();
        self.confirmed
    }
}

/// Tracks the overlap between a flooding process's informed set and the
/// alive population, O(newly informed + deaths) per round: the flooding
/// engine feeds `newly_informed_dense` after each step, the delta's deaths
/// retire entries, and the count is available without rescanning either set.
#[derive(Debug, Clone, Default)]
pub struct InformedOverlap {
    informed: Vec<bool>,
    count: usize,
}

impl InformedOverlap {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the node in slab cell `idx` informed (idempotent).
    pub fn mark(&mut self, idx: u32) {
        let i = idx as usize;
        if self.informed.len() <= i {
            self.informed.resize(i + 1, false);
        }
        if !self.informed[i] {
            self.informed[i] = true;
            self.count += 1;
        }
    }

    /// Retires the informed marks of every death in the window. Process the
    /// delta **before** marking the round's newly informed nodes, so a cell
    /// recycled by a newborn that got informed in the same round survives.
    pub fn apply(&mut self, delta: &GraphDelta) {
        for &(idx, _) in &delta.deaths {
            if let Some(flag) = self.informed.get_mut(idx as usize) {
                if *flag {
                    *flag = false;
                    self.count -= 1;
                }
            }
        }
    }

    /// Number of informed alive nodes.
    #[must_use]
    pub fn informed_alive(&self) -> usize {
        self.count
    }

    /// Whether the node in slab cell `idx` is currently marked informed (and
    /// alive — deaths retire their marks). Lets end-of-run reports classify
    /// the *uninformed* population structurally (degree class, isolation)
    /// without keeping a second set.
    #[must_use]
    pub fn is_informed(&self, idx: u32) -> bool {
        self.informed.get(idx as usize).copied().unwrap_or(false)
    }

    /// Fraction of `alive` nodes that are informed (0 for an empty network).
    #[must_use]
    pub fn overlap_fraction(&self, alive: usize) -> f64 {
        if alive == 0 {
            0.0
        } else {
            self.count as f64 / alive as f64
        }
    }
}
