//! Lifecycle-aware trackers: lifetime isolation, informed-set overlap and
//! the partition-recovery census.

use churn_graph::{DynamicGraph, GraphDelta, NodeId};

/// Tracks which of a population of *currently isolated* nodes stay isolated
/// for the rest of their lifetime (Lemmas 3.5 / 4.10): a candidate is
/// *confirmed* when it dies without ever having been seen with an incident
/// edge, and *disqualified* the moment a delta window leaves it with one.
///
/// Per-round cost is O(delta): deaths are checked against the candidate set
/// by slab index, and only dirty cells pay the incident-link probe. This
/// replaces the `lifetime_isolation_report` pattern of cloning the model and
/// re-scanning every candidate per round, which capped the isolation
/// experiments at `n ≈ 10^4`.
///
/// Granularity: like every observer in this crate, the disqualification
/// probe reconciles against the window's **final** state — a candidate that
/// transiently gains and loses an edge *inside* one window (possible under
/// Poisson churn, where a time unit spans many events) is kept, exactly as
/// the per-unit boundary rescan of `lifetime_isolation_report` keeps it.
/// With one delta window per `advance_time_unit` the two computations agree
/// exactly, on both churn drivers (pinned by `tests/determinism.rs`); only
/// the cost model differs.
#[derive(Debug, Clone)]
pub struct LifetimeIsolation {
    /// Candidate flags by slab index.
    candidate: Vec<bool>,
    remaining: usize,
    /// Identifiers of the initial isolated population, sorted.
    initial: Vec<NodeId>,
    /// Candidates that died while still isolated.
    confirmed: Vec<NodeId>,
}

impl LifetimeIsolation {
    /// Starts tracking from the graph's currently isolated nodes.
    #[must_use]
    pub fn start(graph: &DynamicGraph) -> Self {
        let mut candidate = vec![false; graph.slab_len()];
        let mut initial = Vec::new();
        for &idx in graph.member_indices() {
            if graph.incident_link_count_at(idx) == Some(0) {
                candidate[idx as usize] = true;
                initial.push(graph.id_at(idx).expect("member cells are occupied"));
            }
        }
        initial.sort_unstable();
        let remaining = initial.len();
        LifetimeIsolation {
            candidate,
            remaining,
            initial,
            confirmed: Vec::new(),
        }
    }

    /// The isolated population at start time, sorted by identifier.
    #[must_use]
    pub fn initial_isolated(&self) -> &[NodeId] {
        &self.initial
    }

    /// Candidates still alive and never seen with an edge.
    #[must_use]
    pub fn remaining_candidates(&self) -> usize {
        self.remaining
    }

    /// Candidates that already died while still isolated.
    #[must_use]
    pub fn confirmed_count(&self) -> usize {
        self.confirmed.len()
    }

    /// Processes one delta window: candidate deaths confirm (death order in
    /// the feed precedes any same-window rebirth of the cell, so recycling
    /// cannot resurrect a candidacy), and dirty candidates that picked up an
    /// incident link are disqualified for good.
    pub fn apply(&mut self, graph: &DynamicGraph, delta: &GraphDelta) {
        // Cells appended to the slab after `start` can never be candidates;
        // grow the flag array so their indices stay addressable.
        if self.candidate.len() < graph.slab_len() {
            self.candidate.resize(graph.slab_len(), false);
        }
        for &(idx, id) in &delta.deaths {
            let slot = &mut self.candidate[idx as usize];
            if *slot {
                *slot = false;
                self.remaining -= 1;
                self.confirmed.push(id);
            }
        }
        for &idx in &delta.dirty {
            let slot = &mut self.candidate[idx as usize];
            if *slot && graph.incident_link_count_at(idx) != Some(0) {
                *slot = false;
                self.remaining -= 1;
            }
        }
    }

    /// Finishes the observation: every confirmed candidate plus every
    /// candidate still alive (and still isolated — it has been for the whole
    /// window), sorted by identifier. Mirrors the counting rule of
    /// `churn_core::isolated::lifetime_isolation_report`.
    #[must_use]
    pub fn finish(mut self, graph: &DynamicGraph) -> Vec<NodeId> {
        for (idx, &is_candidate) in self.candidate.iter().enumerate() {
            if is_candidate {
                let id = graph
                    .id_at(idx as u32)
                    .expect("alive candidates occupy their recorded cell");
                self.confirmed.push(id);
            }
        }
        self.confirmed.sort_unstable();
        self.confirmed
    }
}

/// Tracks the overlap between a flooding process's informed set and the
/// alive population, O(newly informed + deaths) per round: the flooding
/// engine feeds `newly_informed_dense` after each step, the delta's deaths
/// retire entries, and the count is available without rescanning either set.
#[derive(Debug, Clone, Default)]
pub struct InformedOverlap {
    informed: Vec<bool>,
    count: usize,
}

impl InformedOverlap {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the node in slab cell `idx` informed (idempotent).
    pub fn mark(&mut self, idx: u32) {
        let i = idx as usize;
        if self.informed.len() <= i {
            self.informed.resize(i + 1, false);
        }
        if !self.informed[i] {
            self.informed[i] = true;
            self.count += 1;
        }
    }

    /// Retires the informed marks of every death in the window. Process the
    /// delta **before** marking the round's newly informed nodes, so a cell
    /// recycled by a newborn that got informed in the same round survives.
    pub fn apply(&mut self, delta: &GraphDelta) {
        for &(idx, _) in &delta.deaths {
            if let Some(flag) = self.informed.get_mut(idx as usize) {
                if *flag {
                    *flag = false;
                    self.count -= 1;
                }
            }
        }
    }

    /// Number of informed alive nodes.
    #[must_use]
    pub fn informed_alive(&self) -> usize {
        self.count
    }

    /// Whether the node in slab cell `idx` is currently marked informed (and
    /// alive — deaths retire their marks). Lets end-of-run reports classify
    /// the *uninformed* population structurally (degree class, isolation)
    /// without keeping a second set.
    #[must_use]
    pub fn is_informed(&self, idx: u32) -> bool {
        self.informed.get(idx as usize).copied().unwrap_or(false)
    }

    /// Fraction of `alive` nodes that are informed (0 for an empty network).
    #[must_use]
    pub fn overlap_fraction(&self, alive: usize) -> f64 {
        if alive == 0 {
            0.0
        } else {
            self.count as f64 / alive as f64
        }
    }
}

/// A point-in-time census of flood recovery across partition blocks: for
/// each block of a (healed or active) partition, how many alive nodes it
/// holds and how many of them are informed. The block assignment is a pure
/// function of the node identifier — exactly the contract of the fault
/// layer's deterministic partition hash — so the census needs no membership
/// state and can be taken at any instant: at the heal (the state
/// anti-entropy must recover from) or at the end of a run (did the minority
/// block catch up?).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryCensus {
    alive: Vec<usize>,
    informed: Vec<usize>,
}

impl RecoveryCensus {
    /// Takes the census over the graph's alive population. `block_of` maps
    /// a raw node identifier to its block (values `≥ blocks` are clamped
    /// into the last block), `is_informed` marks rumor possession.
    #[must_use]
    pub fn take(
        graph: &DynamicGraph,
        blocks: u32,
        block_of: impl Fn(u64) -> u32,
        is_informed: impl Fn(u64) -> bool,
    ) -> Self {
        let blocks = blocks.max(1) as usize;
        let mut census = RecoveryCensus {
            alive: vec![0; blocks],
            informed: vec![0; blocks],
        };
        for &idx in graph.member_indices() {
            let id = graph.id_at(idx).expect("member cells are occupied").raw();
            let block = (block_of(id) as usize).min(blocks - 1);
            census.alive[block] += 1;
            if is_informed(id) {
                census.informed[block] += 1;
            }
        }
        census
    }

    /// Number of blocks the census was taken over.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.alive.len()
    }

    /// Alive nodes across all blocks.
    #[must_use]
    pub fn alive_total(&self) -> usize {
        self.alive.iter().sum()
    }

    /// Informed alive nodes across all blocks.
    #[must_use]
    pub fn informed_total(&self) -> usize {
        self.informed.iter().sum()
    }

    /// `(alive, informed)` of one block (0s past the end).
    #[must_use]
    pub fn block(&self, block: usize) -> (usize, usize) {
        (
            self.alive.get(block).copied().unwrap_or(0),
            self.informed.get(block).copied().unwrap_or(0),
        )
    }

    /// Informed fraction of one block (1 for an empty block — nothing left
    /// to recover).
    #[must_use]
    pub fn block_fraction(&self, block: usize) -> f64 {
        let (alive, informed) = self.block(block);
        if alive == 0 {
            1.0
        } else {
            informed as f64 / alive as f64
        }
    }

    /// Per-block informed fractions, in block order.
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        (0..self.blocks()).map(|b| self.block_fraction(b)).collect()
    }

    /// The worst block's informed fraction — the recovery floor. During a
    /// partition this is (near) zero for every block the source is not in;
    /// after a healed, recovered flood it returns to 1.
    #[must_use]
    pub fn min_fraction(&self) -> f64 {
        self.fractions().iter().copied().fold(1.0, f64::min)
    }

    /// The alive share of the largest block — the fraction the overall
    /// informed curve stalls at while a partition confines the flood to the
    /// source's (majority) block.
    #[must_use]
    pub fn majority_fraction(&self) -> f64 {
        let total = self.alive_total();
        if total == 0 {
            return 0.0;
        }
        self.alive.iter().copied().max().unwrap_or(0) as f64 / total as f64
    }

    /// Overall informed fraction of the alive population (1 when empty).
    #[must_use]
    pub fn overall_fraction(&self) -> f64 {
        let total = self.alive_total();
        if total == 0 {
            return 1.0;
        }
        self.informed_total() as f64 / total as f64
    }

    /// `true` once every block is fully informed — the flood recovered from
    /// the partition.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.alive
            .iter()
            .zip(&self.informed)
            .all(|(&alive, &informed)| informed == alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(n: u64) -> DynamicGraph {
        let mut graph = DynamicGraph::with_capacity(n as usize);
        for i in 0..n {
            graph.add_node(NodeId::new(i), 0).unwrap();
        }
        graph
    }

    #[test]
    fn recovery_census_counts_blocks_and_fractions() {
        // Even ids in block 0, odd ids in block 1; ids < 4 informed.
        let graph = graph_of(8);
        let census = RecoveryCensus::take(&graph, 2, |id| (id % 2) as u32, |id| id < 4);
        assert_eq!(census.blocks(), 2);
        assert_eq!(census.alive_total(), 8);
        assert_eq!(census.informed_total(), 4);
        assert_eq!(census.block(0), (4, 2));
        assert_eq!(census.block(1), (4, 2));
        assert_eq!(census.block(7), (0, 0));
        assert!((census.block_fraction(0) - 0.5).abs() < 1e-12);
        assert!((census.min_fraction() - 0.5).abs() < 1e-12);
        assert!((census.overall_fraction() - 0.5).abs() < 1e-12);
        assert!(!census.recovered());
    }

    #[test]
    fn recovery_census_majority_and_recovery() {
        // 6 nodes in block 0, 2 in block 1, everyone informed.
        let graph = graph_of(8);
        let census = RecoveryCensus::take(&graph, 2, |id| u32::from(id >= 6), |_| true);
        assert!((census.majority_fraction() - 0.75).abs() < 1e-12);
        assert!(census.recovered());
        assert_eq!(census.fractions(), vec![1.0, 1.0]);
        assert!((census.min_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_census_clamps_out_of_range_blocks_and_empty_graphs() {
        let graph = graph_of(3);
        // A block function pointing past the range lands in the last block.
        let census = RecoveryCensus::take(&graph, 2, |_| 9, |_| false);
        assert_eq!(census.block(1), (3, 0));
        assert_eq!(census.min_fraction(), 0.0);
        // Empty graph: everything trivially recovered, majority 0.
        let empty = DynamicGraph::with_capacity(4);
        let census = RecoveryCensus::take(&empty, 3, |_| 0, |_| true);
        assert!(census.recovered());
        assert_eq!(census.overall_fraction(), 1.0);
        assert_eq!(census.majority_fraction(), 0.0);
        assert_eq!(census.block_fraction(0), 1.0);
    }
}
