//! # churn-observe
//!
//! Incremental observation of dynamic churn networks: everything the paper
//! measures *per round* — degree structure, isolated nodes, informed-set
//! overlap, the realized in-degree of bounded-degree protocols — maintained
//! at **O(churn)** cost per round instead of the O(n + m) full rescan or
//! `Snapshot` rebuild the analyses used before.
//!
//! The input is the [`churn_graph::GraphDelta`] change feed: a compact dirty
//! set (plus birth/death lifecycle events) the slab graph core records at
//! near-zero overhead when a subscriber is attached
//! ([`churn_graph::DynamicGraph::set_delta_recording`]) and none when not.
//! Observers reconcile each dirty cell against the graph's final state for
//! the round, so they are insensitive to the order (or multiplicity) of
//! events inside one window — including a slab cell dying and being recycled
//! by a newborn within the same round.
//!
//! The pieces:
//!
//! * [`IncrementalSnapshot`] — a slab-mirrored undirected adjacency view
//!   patched in O(delta · d) per round, with a rayon-parallel full-rebuild
//!   fallback past a churn-fraction threshold, and an on-demand
//!   [`IncrementalSnapshot::to_snapshot`] materialisation pinned
//!   **bit-identical** to [`churn_graph::Snapshot::of`] by the property
//!   suite. Per-round structural observation becomes O(churn); only an
//!   actual heavyweight analysis (expansion estimation) pays the
//!   materialisation.
//! * [`LiveMetrics`] — degree and in-request histograms, isolated and
//!   low-degree node counts, RAES in-degree-cap occupancy, maintained per
//!   dirty cell.
//! * [`BehaviorCensus`] — the alive population per behavior tag class
//!   (honest vs. each Byzantine behavior of `churn-protocol`'s adversary
//!   layer), maintained per dirty cell; gives the realized corrupted
//!   fraction of a hardened scenario run at O(churn) cost.
//! * [`LifetimeIsolation`] — the Lemma 3.5 / 4.10 census: tracks which of
//!   the currently isolated nodes stay isolated until they die, at O(churn)
//!   per round instead of O(candidates).
//! * [`InformedOverlap`] — the alive-informed overlap of a flooding run,
//!   fed by `FloodingProcess::newly_informed_dense` and the delta's deaths.
//! * [`RecoveryCensus`] — a point-in-time per-partition-block census of
//!   flood recovery (alive and informed counts per block of a deterministic
//!   id-hash partition), for the chaos scenarios' heal and end-of-run
//!   checkpoints.
//!
//! Typical wiring (the experiment binaries in `churn-bench` follow this
//! shape, via `churn_sim::observe_rounds`):
//!
//! ```
//! use churn_core::{DynamicNetwork, StreamingConfig, StreamingModel};
//! use churn_graph::{GraphDelta, Snapshot};
//! use churn_observe::{IncrementalSnapshot, LiveMetrics};
//!
//! # fn main() -> Result<(), churn_core::ModelError> {
//! let mut model = StreamingModel::new(StreamingConfig::new(64, 3).seed(7))?;
//! model.warm_up();
//! model.graph_mut().set_delta_recording(true);
//! let mut inc = IncrementalSnapshot::new(model.graph());
//! let mut metrics = LiveMetrics::new(model.graph());
//! let mut delta = GraphDelta::new();
//! for _ in 0..32 {
//!     model.advance_time_unit();
//!     model.graph_mut().take_delta_into(&mut delta);
//!     inc.apply(model.graph(), &delta);
//!     metrics.apply(model.graph(), &delta);
//! }
//! assert_eq!(inc.to_snapshot(), Snapshot::of(model.graph()));
//! assert_eq!(metrics.alive(), model.alive_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod incremental;
mod metrics;
mod trackers;

pub use incremental::{ApplyOutcome, IncrementalSnapshot};
pub use metrics::{BehaviorCensus, BehaviorSummary, LiveMetrics, MetricsSummary};
pub use trackers::{InformedOverlap, LifetimeIsolation, RecoveryCensus};
