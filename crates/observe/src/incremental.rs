//! The incrementally patched snapshot.

use churn_graph::{DynamicGraph, GraphDelta, NodeId, Snapshot};

/// Sentinel for a vacant row (`NodeId` raw values never reach `u64::MAX` in
/// practice; the graph's member table is the source of truth either way).
const VACANT: u64 = u64::MAX;

/// One slab cell's mirrored state: the occupant's raw identifier and its
/// deduplicated undirected neighbourhood as dense indices, sorted.
#[derive(Debug, Clone, Default)]
struct Row {
    id: u64,
    neighbors: Vec<u32>,
}

impl Row {
    fn new() -> Self {
        Row {
            id: VACANT,
            neighbors: Vec::new(),
        }
    }

    #[inline]
    fn occupied(&self) -> bool {
        self.id != VACANT
    }
}

/// How [`IncrementalSnapshot::apply`] handled the most recent delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The delta was small: only the listed number of distinct dirty cells
    /// were re-read from the graph.
    Patched {
        /// Distinct slab cells refreshed.
        cells: usize,
    },
    /// The delta crossed the churn-fraction threshold: every row was rebuilt
    /// from scratch (rayon-sharded when a thread budget is configured).
    Rebuilt,
}

/// A CSR-equivalent view of a [`DynamicGraph`] kept in sync through the
/// [`GraphDelta`] change feed instead of being rebuilt per observation.
///
/// # Contract (when is incremental patching valid?)
///
/// * Between [`IncrementalSnapshot::new`] / the last
///   [`IncrementalSnapshot::apply`] and the next `apply`, the graph must
///   only have been mutated **while delta recording was enabled**, and every
///   recorded window must be applied exactly once, in order. The delta is a
///   dirty *set*, so the view reconciles against the graph's final state —
///   event order and cell recycling inside one window are handled by
///   construction.
/// * A delta produced by a *different* graph (or a window that was dropped)
///   silently desynchronises the view; `debug_assert`s catch the common
///   cases, [`Self::rebuild`] resynchronises unconditionally.
///
/// # Cost model
///
/// * `apply` with `k` distinct dirty cells: `O(k · d log d)` — independent of
///   `n`, which is what lets per-round structural observation follow the
///   flooding experiments to `n = 10^6` (at the paper's churn rates a round
///   dirties O(d) cells).
/// * Past the churn-fraction threshold ([`Self::with_rebuild_fraction`],
///   default 1/4 of the alive population), patching row by row loses to one
///   sequential pass; `apply` then falls back to a full
///   [`Self::rebuild`], sharded across the configured thread budget
///   ([`Self::with_threads`]).
/// * [`Self::to_snapshot`] materialises a [`Snapshot`] in `O(n log n + m)`;
///   the result is bit-identical to [`Snapshot::of`] on the same graph
///   (pinned by `tests/prop_incremental.rs`).
#[derive(Debug, Clone)]
pub struct IncrementalSnapshot {
    rows: Vec<Row>,
    alive: usize,
    /// Sum of per-row deduplicated degrees (= 2 × undirected edge count).
    total_degree: usize,
    /// Fraction of the alive population a delta's dirty list may reach
    /// before `apply` rebuilds instead of patching.
    rebuild_fraction: f64,
    /// Thread budget of the rebuild fallback (`0` = one shard per rayon pool
    /// thread, `1` = sequential).
    threads: usize,
    /// Epoch-stamped visited marks for deduplicating the dirty list.
    seen: Vec<u32>,
    epoch: u32,
    scratch: Vec<u32>,
    last_outcome: ApplyOutcome,
}

/// Re-reads one cell from the graph into `row` (occupancy, identifier and
/// sorted deduplicated dense neighbourhood).
fn refresh_row(graph: &DynamicGraph, idx: u32, row: &mut Row, scratch: &mut Vec<u32>) {
    match graph.id_at(idx) {
        None => {
            row.id = VACANT;
            row.neighbors.clear();
        }
        Some(id) => {
            scratch.clear();
            scratch.extend(graph.neighbor_indices_at(idx));
            scratch.sort_unstable();
            scratch.dedup();
            row.neighbors.clear();
            row.neighbors.extend_from_slice(scratch);
            row.id = id.raw();
        }
    }
}

impl IncrementalSnapshot {
    /// Builds the view from the graph's current state (one full pass).
    #[must_use]
    pub fn new(graph: &DynamicGraph) -> Self {
        let mut this = IncrementalSnapshot {
            rows: Vec::new(),
            alive: 0,
            total_degree: 0,
            rebuild_fraction: 0.25,
            threads: 1,
            seen: Vec::new(),
            epoch: 0,
            scratch: Vec::new(),
            last_outcome: ApplyOutcome::Rebuilt,
        };
        this.rebuild(graph);
        this
    }

    /// Sets the churn-fraction threshold past which [`Self::apply`] rebuilds
    /// instead of patching (clamped to be positive; default 0.25).
    #[must_use]
    pub fn with_rebuild_fraction(mut self, fraction: f64) -> Self {
        self.rebuild_fraction = fraction.max(f64::EPSILON);
        self
    }

    /// Sets the thread budget of the rebuild fallback (`0` = one shard per
    /// rayon pool thread; default 1 = sequential).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of alive nodes in the view.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// Number of distinct undirected edges in the view.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.total_degree / 2
    }

    /// Distinct-neighbour degree of the node in slab cell `idx`, or `None`
    /// when the cell is vacant (or out of the mirrored range).
    #[must_use]
    pub fn degree_at(&self, idx: u32) -> Option<usize> {
        self.rows
            .get(idx as usize)
            .filter(|row| row.occupied())
            .map(|row| row.neighbors.len())
    }

    /// How the most recent [`Self::apply`] proceeded.
    #[must_use]
    pub fn last_outcome(&self) -> ApplyOutcome {
        self.last_outcome
    }

    /// Brings the view up to date with one recorded delta window.
    pub fn apply(&mut self, graph: &DynamicGraph, delta: &GraphDelta) {
        let _snapshot = tracing::span("snapshot");
        let threshold = (self.rebuild_fraction * graph.len().max(1) as f64).ceil() as usize;
        if delta.dirty.len() >= threshold.max(1) {
            self.rebuild(graph);
            self.last_outcome = ApplyOutcome::Rebuilt;
            return;
        }
        self.grow(graph.slab_len());
        // One epoch per apply; the stamp array deduplicates the dirty list
        // without clearing anything between rounds.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        let mut cells = 0usize;
        for i in 0..delta.dirty.len() {
            let idx = delta.dirty[i];
            let slot = &mut self.seen[idx as usize];
            if *slot == self.epoch {
                continue;
            }
            *slot = self.epoch;
            cells += 1;
            self.refresh_counted(graph, idx);
        }
        self.last_outcome = ApplyOutcome::Patched { cells };
    }

    /// Rebuilds every row from the graph (the fallback path; also the
    /// resynchronisation escape hatch). Sharded across the thread budget.
    pub fn rebuild(&mut self, graph: &DynamicGraph) {
        self.grow(graph.slab_len());
        let threads = if self.threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            self.threads
        };
        let len = self.rows.len();
        if threads <= 1 || len < 1 << 14 {
            for idx in 0..len {
                let (rows, scratch) = (&mut self.rows, &mut self.scratch);
                refresh_row(graph, idx as u32, &mut rows[idx], scratch);
            }
        } else {
            let chunk = len.div_ceil(threads).max(1);
            rayon::scope(|s| {
                for (chunk_index, rows_chunk) in self.rows.chunks_mut(chunk).enumerate() {
                    let base = chunk_index * chunk;
                    s.spawn(move |_| {
                        let mut scratch: Vec<u32> = Vec::new();
                        for (offset, row) in rows_chunk.iter_mut().enumerate() {
                            refresh_row(graph, (base + offset) as u32, row, &mut scratch);
                        }
                    });
                }
            });
        }
        self.alive = 0;
        self.total_degree = 0;
        for row in &self.rows {
            if row.occupied() {
                self.alive += 1;
                self.total_degree += row.neighbors.len();
            }
        }
        self.last_outcome = ApplyOutcome::Rebuilt;
        debug_assert_eq!(self.alive, graph.len(), "view out of sync after rebuild");
    }

    /// Materialises a [`Snapshot`] — bit-identical to [`Snapshot::of`] on the
    /// graph the view mirrors, at any thread budget.
    ///
    /// With a thread budget above 1 ([`Self::with_threads`]) and enough alive
    /// nodes, the build is sharded like `Snapshot::of_with_threads`: the
    /// identifier sort runs as parallel per-chunk sorts joined by one k-way
    /// merge, and the adjacency translation writes disjoint pre-sized CSR
    /// ranges concurrently — removing the last `O(n log n)` *sequential* term
    /// of a large expansion measurement. Both paths produce identical bytes
    /// (pinned by this module's tests and `tests/prop_incremental.rs`).
    #[must_use]
    pub fn to_snapshot(&self) -> Snapshot {
        let threads = if self.threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            self.threads
        };
        if threads <= 1 || self.alive < 1 << 14 {
            self.to_snapshot_sequential()
        } else {
            self.to_snapshot_sharded(threads)
        }
    }

    /// The sequential materialisation (also the reference the sharded path
    /// is pinned against).
    fn to_snapshot_sequential(&self) -> Snapshot {
        let mut nodes: Vec<(u64, u32)> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.occupied())
            .map(|(idx, row)| (row.id, idx as u32))
            .collect();
        nodes.sort_unstable();

        let mut slab_to_snap: Vec<u32> = vec![u32::MAX; self.rows.len()];
        for (pos, &(_, idx)) in nodes.iter().enumerate() {
            slab_to_snap[idx as usize] = pos as u32;
        }

        let mut ids = Vec::with_capacity(nodes.len());
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut adjacency = Vec::with_capacity(self.total_degree);
        offsets.push(0);
        for &(raw, idx) in &nodes {
            ids.push(NodeId::new(raw));
            let start = adjacency.len();
            adjacency.extend(
                self.rows[idx as usize]
                    .neighbors
                    .iter()
                    .map(|&nb| slab_to_snap[nb as usize] as usize),
            );
            // Rows are sorted by dense index; the dense → snapshot position
            // map is not monotone (recycled cells), so re-sort the
            // translated row. Distinct dense indices stay distinct, so no
            // dedup is needed.
            adjacency[start..].sort_unstable();
            offsets.push(adjacency.len());
        }
        Snapshot::from_csr_parts(ids, offsets, adjacency)
    }

    /// The sharded materialisation body (no small-size fallback, so tests
    /// can exercise it at any size).
    fn to_snapshot_sharded(&self, threads: usize) -> Snapshot {
        // Phase 1 — identifier ordering, sharded: every worker collects and
        // sorts the occupied cells of one contiguous row range; a k-way merge
        // (identifiers are unique, so the merge is unambiguous) joins the
        // runs into the same `nodes` vector the sequential sort produces.
        let row_chunk = self.rows.len().div_ceil(threads).max(1);
        let mut runs: Vec<Vec<(u64, u32)>> = Vec::new();
        runs.resize_with(self.rows.len().div_ceil(row_chunk), Vec::new);
        rayon::scope(|s| {
            for (chunk_index, (rows_chunk, run)) in
                self.rows.chunks(row_chunk).zip(runs.iter_mut()).enumerate()
            {
                s.spawn(move |_| {
                    let base = chunk_index * row_chunk;
                    run.extend(
                        rows_chunk
                            .iter()
                            .enumerate()
                            .filter(|(_, row)| row.occupied())
                            .map(|(offset, row)| (row.id, (base + offset) as u32)),
                    );
                    run.sort_unstable();
                });
            }
        });
        let mut nodes: Vec<(u64, u32)> = Vec::with_capacity(self.alive);
        let mut heads: Vec<usize> = vec![0; runs.len()];
        loop {
            let mut best: Option<usize> = None;
            for (r, run) in runs.iter().enumerate() {
                if heads[r] < run.len()
                    && best.is_none_or(|b: usize| run[heads[r]].0 < runs[b][heads[b]].0)
                {
                    best = Some(r);
                }
            }
            match best {
                Some(r) => {
                    nodes.push(runs[r][heads[r]]);
                    heads[r] += 1;
                }
                None => break,
            }
        }

        let mut slab_to_snap: Vec<u32> = vec![u32::MAX; self.rows.len()];
        for (pos, &(_, idx)) in nodes.iter().enumerate() {
            slab_to_snap[idx as usize] = pos as u32;
        }

        // Phase 2 — offsets from the mirrored per-row degrees (O(n), cheap),
        // then the adjacency translation into disjoint pre-sized ranges.
        let mut ids = Vec::with_capacity(nodes.len());
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        offsets.push(0usize);
        for &(raw, idx) in &nodes {
            ids.push(NodeId::new(raw));
            offsets.push(offsets.last().unwrap() + self.rows[idx as usize].neighbors.len());
        }
        let mut adjacency = vec![0usize; self.total_degree];
        let node_chunk = nodes.len().div_ceil(threads).max(1);
        let slab_to_snap = &slab_to_snap;
        let offsets_ref = &offsets;
        rayon::scope(|s| {
            let mut rest: &mut [usize] = &mut adjacency;
            for (chunk_index, node_chunk_slice) in nodes.chunks(node_chunk).enumerate() {
                let lo = offsets_ref[chunk_index * node_chunk];
                let hi = offsets_ref
                    [(chunk_index * node_chunk + node_chunk_slice.len()).min(nodes.len())];
                let (mine, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                s.spawn(move |_| {
                    let mut cursor = 0usize;
                    for &(_, idx) in node_chunk_slice {
                        let row = &self.rows[idx as usize].neighbors;
                        let slice = &mut mine[cursor..cursor + row.len()];
                        for (out, &nb) in slice.iter_mut().zip(row.iter()) {
                            *out = slab_to_snap[nb as usize] as usize;
                        }
                        slice.sort_unstable();
                        cursor += row.len();
                    }
                });
            }
        });
        Snapshot::from_csr_parts(ids, offsets, adjacency)
    }

    fn grow(&mut self, slab_len: usize) {
        if self.rows.len() < slab_len {
            self.rows.resize_with(slab_len, Row::new);
            self.seen.resize(slab_len, 0);
        }
    }

    /// Refreshes one row, keeping the alive/degree counters in sync.
    fn refresh_counted(&mut self, graph: &DynamicGraph, idx: u32) {
        let row = &mut self.rows[idx as usize];
        let was_alive = row.occupied();
        let old_degree = row.neighbors.len();
        refresh_row(graph, idx, row, &mut self.scratch);
        let is_alive = row.occupied();
        let new_degree = row.neighbors.len();
        self.alive = self.alive + usize::from(is_alive) - usize::from(was_alive);
        // A vacant row always has an empty neighbour list, so the old/new
        // degrees are zero exactly when the occupancy flag says so.
        self.total_degree = self.total_degree + new_degree - old_degree;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_graph::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A churned graph off the id-sorted fast path: recycled cells,
    /// multi-edges, isolated nodes.
    fn churned_graph(n: u64, seed: u64) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for raw in 0..n {
            g.add_node(NodeId::new(raw), 3).unwrap();
        }
        for raw in 0..n {
            for slot in 0..3 {
                let target = rng.gen_range(0..n);
                if target != raw {
                    g.set_out_slot(NodeId::new(raw), slot, NodeId::new(target))
                        .unwrap();
                }
            }
        }
        for raw in (0..n).step_by(7) {
            g.remove_node(NodeId::new(raw)).unwrap();
        }
        for raw in n..n + n / 5 {
            g.add_node(NodeId::new(raw), 2).unwrap();
        }
        g
    }

    #[test]
    fn sharded_materialisation_is_bit_identical_to_sequential() {
        let g = churned_graph(400, 3);
        let inc = IncrementalSnapshot::new(&g);
        let reference = inc.to_snapshot_sequential();
        assert_eq!(reference, churn_graph::Snapshot::of(&g));
        for threads in [2usize, 3, 5, 8] {
            assert_eq!(
                inc.to_snapshot_sharded(threads),
                reference,
                "{threads} threads"
            );
        }
        // The public entry point falls back below the size cutoff…
        let small = IncrementalSnapshot::new(&g).with_threads(8);
        assert_eq!(small.to_snapshot(), reference);
        // …and an explicit budget of 1 always stays sequential.
        assert_eq!(
            IncrementalSnapshot::new(&g).with_threads(1).to_snapshot(),
            reference
        );
    }

    #[test]
    fn sharded_materialisation_handles_empty_and_tiny_views() {
        let g = DynamicGraph::new();
        let inc = IncrementalSnapshot::new(&g);
        assert_eq!(inc.to_snapshot_sharded(4), inc.to_snapshot_sequential());
        let mut g = DynamicGraph::new();
        g.add_node(NodeId::new(7), 1).unwrap();
        let inc = IncrementalSnapshot::new(&g);
        assert_eq!(inc.to_snapshot_sharded(4), inc.to_snapshot_sequential());
    }
}
