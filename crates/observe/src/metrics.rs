//! Live structural metric trackers.

use churn_graph::{DynamicGraph, GraphDelta};

/// Per-cell mirrored state of [`LiveMetrics`].
#[derive(Debug, Clone, Copy, Default)]
struct CellState {
    alive: bool,
    /// Distinct-neighbour degree.
    degree: u32,
    /// In-requests with multiplicity (the RAES saturation quantity).
    in_requests: u32,
}

/// A normalised, comparable digest of a [`LiveMetrics`] state (histograms
/// trimmed of trailing zeros, so an incrementally maintained tracker and a
/// freshly built one compare equal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Alive nodes.
    pub alive: usize,
    /// `degree_histogram[k]` = alive nodes with distinct-neighbour degree `k`.
    pub degree_histogram: Vec<u64>,
    /// `in_request_histogram[k]` = alive nodes with `k` in-requests.
    pub in_request_histogram: Vec<u64>,
}

/// Live structural metrics of a churning graph, maintained O(delta) per
/// round: the degree histogram (hence isolated and low-degree node counts —
/// Lemmas 3.5 / 4.10's census quantities) and the in-request histogram
/// (hence the realized in-degree-cap occupancy of bounded-degree protocols
/// like RAES).
///
/// Like every observer in this crate, the tracker reconciles dirty cells
/// against the graph's final per-round state, so it is exact at round
/// granularity for any event interleaving (including cell recycling).
/// Building one ([`LiveMetrics::new`]) *is* the from-scratch recomputation,
/// which is what the determinism suite compares against every round.
#[derive(Debug, Clone)]
pub struct LiveMetrics {
    state: Vec<CellState>,
    degree_hist: Vec<u64>,
    in_req_hist: Vec<u64>,
    alive: usize,
    seen: Vec<u32>,
    epoch: u32,
    scratch: Vec<u32>,
}

fn bump(hist: &mut Vec<u64>, bucket: usize) {
    if hist.len() <= bucket {
        hist.resize(bucket + 1, 0);
    }
    hist[bucket] += 1;
}

fn trimmed(hist: &[u64]) -> Vec<u64> {
    let len = hist.iter().rposition(|&c| c != 0).map_or(0, |p| p + 1);
    hist[..len].to_vec()
}

impl LiveMetrics {
    /// Builds the tracker from the graph's current state (one full pass).
    #[must_use]
    pub fn new(graph: &DynamicGraph) -> Self {
        let mut this = LiveMetrics {
            state: Vec::new(),
            degree_hist: Vec::new(),
            in_req_hist: Vec::new(),
            alive: 0,
            seen: Vec::new(),
            epoch: 0,
            scratch: Vec::new(),
        };
        this.grow(graph.slab_len());
        for &idx in graph.member_indices() {
            this.refresh(graph, idx);
        }
        this
    }

    /// Brings the tracker up to date with one recorded delta window —
    /// O(distinct dirty cells · d log d).
    pub fn apply(&mut self, graph: &DynamicGraph, delta: &GraphDelta) {
        self.grow(graph.slab_len());
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        for i in 0..delta.dirty.len() {
            let idx = delta.dirty[i];
            let slot = &mut self.seen[idx as usize];
            if *slot == self.epoch {
                continue;
            }
            *slot = self.epoch;
            self.refresh(graph, idx);
        }
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// Alive nodes with no incident edges at all (the isolated-node census of
    /// Lemmas 3.5 and 4.10).
    #[must_use]
    pub fn isolated_count(&self) -> usize {
        self.degree_hist.first().copied().unwrap_or(0) as usize
    }

    /// Alive nodes with distinct-neighbour degree at most `max_degree`.
    #[must_use]
    pub fn low_degree_count(&self, max_degree: usize) -> usize {
        self.degree_hist.iter().take(max_degree + 1).sum::<u64>() as usize
    }

    /// The degree histogram (index = distinct-neighbour degree; may carry
    /// trailing zero buckets — compare through [`Self::summary`]).
    #[must_use]
    pub fn degree_histogram(&self) -> &[u64] {
        &self.degree_hist
    }

    /// The in-request histogram (index = in-requests with multiplicity).
    #[must_use]
    pub fn in_request_histogram(&self) -> &[u64] {
        &self.in_req_hist
    }

    /// Alive nodes whose in-request count is at least `cap` — with RAES's
    /// accept rule (`accept while in-degree < ⌊c·d⌋`) this is exactly the
    /// number of nodes sitting *at* the cap, i.e. the cap occupancy.
    #[must_use]
    pub fn saturated_count(&self, cap: usize) -> usize {
        self.in_req_hist.iter().skip(cap).sum::<u64>() as usize
    }

    /// Largest in-request count over the alive nodes.
    #[must_use]
    pub fn max_in_requests(&self) -> usize {
        self.in_req_hist.iter().rposition(|&c| c != 0).unwrap_or(0)
    }

    /// Mean distinct-neighbour degree (0 for an empty graph).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.alive == 0 {
            return 0.0;
        }
        let total: u64 = self
            .degree_hist
            .iter()
            .enumerate()
            .map(|(deg, &count)| deg as u64 * count)
            .sum();
        total as f64 / self.alive as f64
    }

    /// A normalised digest for equality comparisons.
    #[must_use]
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            alive: self.alive,
            degree_histogram: trimmed(&self.degree_hist),
            in_request_histogram: trimmed(&self.in_req_hist),
        }
    }

    fn grow(&mut self, slab_len: usize) {
        if self.state.len() < slab_len {
            self.state.resize(slab_len, CellState::default());
            self.seen.resize(slab_len, 0);
        }
    }

    fn refresh(&mut self, graph: &DynamicGraph, idx: u32) {
        let old = self.state[idx as usize];
        if old.alive {
            self.degree_hist[old.degree as usize] -= 1;
            self.in_req_hist[old.in_requests as usize] -= 1;
            self.alive -= 1;
        }
        match graph.in_request_count_at(idx) {
            None => {
                self.state[idx as usize] = CellState::default();
            }
            Some(in_requests) => {
                self.scratch.clear();
                self.scratch.extend(graph.neighbor_indices_at(idx));
                self.scratch.sort_unstable();
                self.scratch.dedup();
                let degree = self.scratch.len();
                bump(&mut self.degree_hist, degree);
                bump(&mut self.in_req_hist, in_requests);
                self.alive += 1;
                self.state[idx as usize] = CellState {
                    alive: true,
                    degree: degree as u32,
                    in_requests: in_requests as u32,
                };
            }
        }
    }
}

/// Per-cell mirrored state of [`BehaviorCensus`].
#[derive(Debug, Clone, Copy, Default)]
struct CensusCell {
    alive: bool,
    tag: u8,
}

/// A normalised, comparable digest of a [`BehaviorCensus`] state: the alive
/// population per behavior tag byte, sorted by tag, zero-count classes
/// omitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorSummary {
    /// Total alive nodes.
    pub alive: usize,
    /// `(tag byte, alive count)` pairs, ascending by tag; tag `0` is the
    /// honest class.
    pub classes: Vec<(u8, usize)>,
}

/// Live census of the graph's behavior tags (see
/// [`DynamicGraph::set_tag_at`]): how many alive nodes carry each tag byte,
/// maintained O(delta) per round with the same dirty-cell reconciliation as
/// [`LiveMetrics`].
///
/// The tracker relies on the tag lifecycle the Byzantine behavior layer
/// guarantees: a tag is written only at spawn (the add already dirties the
/// cell) and cleared only at removal (ditto), never mutated mid-life — so
/// the change feed's dirty set always covers tag transitions.
#[derive(Debug, Clone)]
pub struct BehaviorCensus {
    state: Vec<CensusCell>,
    counts: Vec<usize>,
    alive: usize,
    seen: Vec<u32>,
    epoch: u32,
}

impl BehaviorCensus {
    /// Builds the census from the graph's current state (one full pass).
    #[must_use]
    pub fn new(graph: &DynamicGraph) -> Self {
        let mut this = BehaviorCensus {
            state: Vec::new(),
            counts: vec![0; 256],
            alive: 0,
            seen: Vec::new(),
            epoch: 0,
        };
        this.grow(graph.slab_len());
        for &idx in graph.member_indices() {
            this.refresh(graph, idx);
        }
        this
    }

    /// Brings the census up to date with one recorded delta window —
    /// O(distinct dirty cells).
    pub fn apply(&mut self, graph: &DynamicGraph, delta: &GraphDelta) {
        self.grow(graph.slab_len());
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        for i in 0..delta.dirty.len() {
            let idx = delta.dirty[i];
            let slot = &mut self.seen[idx as usize];
            if *slot == self.epoch {
                continue;
            }
            *slot = self.epoch;
            self.refresh(graph, idx);
        }
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// Alive nodes with tag `0` (the honest class).
    #[must_use]
    pub fn honest_count(&self) -> usize {
        self.counts[0]
    }

    /// Alive nodes carrying any nonzero tag.
    #[must_use]
    pub fn byzantine_count(&self) -> usize {
        self.alive - self.counts[0]
    }

    /// Alive nodes carrying exactly this tag byte.
    #[must_use]
    pub fn count_of_tag(&self, tag: u8) -> usize {
        self.counts[tag as usize]
    }

    /// The realized corrupted fraction of the alive population (0 when the
    /// graph is empty).
    #[must_use]
    pub fn byzantine_fraction(&self) -> f64 {
        if self.alive == 0 {
            return 0.0;
        }
        self.byzantine_count() as f64 / self.alive as f64
    }

    /// A normalised digest for equality comparisons.
    #[must_use]
    pub fn summary(&self) -> BehaviorSummary {
        BehaviorSummary {
            alive: self.alive,
            classes: self
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count != 0)
                .map(|(tag, &count)| (tag as u8, count))
                .collect(),
        }
    }

    fn grow(&mut self, slab_len: usize) {
        if self.state.len() < slab_len {
            self.state.resize(slab_len, CensusCell::default());
            self.seen.resize(slab_len, 0);
        }
    }

    fn refresh(&mut self, graph: &DynamicGraph, idx: u32) {
        let old = self.state[idx as usize];
        if old.alive {
            self.counts[old.tag as usize] -= 1;
            self.alive -= 1;
        }
        if graph.in_request_count_at(idx).is_some() {
            let tag = graph.tag_at(idx);
            self.counts[tag as usize] += 1;
            self.alive += 1;
            self.state[idx as usize] = CensusCell { alive: true, tag };
        } else {
            self.state[idx as usize] = CensusCell::default();
        }
    }
}
