//! Verifies the "no steady-state heap allocation" guarantee of
//! `RaesModel::advance_time_unit` with a counting global allocator.
//!
//! This file holds exactly one test so no concurrently running test can
//! pollute the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use churn_core::{ChurnSummary, DynamicNetwork};
use churn_protocol::{RaesConfig, RaesModel, SaturationPolicy};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_rounds_do_not_allocate() {
    for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
        let mut model =
            RaesModel::new(RaesConfig::new(2_000, 8).saturation(policy).seed(3)).unwrap();
        model.warm_up();
        // Let every reused buffer (pending queue, sample batch, removal
        // scratch, overflow, the caller-owned summary) reach its steady
        // capacity.
        let mut summary = ChurnSummary::new();
        for _ in 0..500 {
            model.step_round_into(&mut summary);
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..500 {
            model.step_round_into(&mut summary);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{policy}: steady-state protocol rounds must not touch the heap"
        );
    }
}
