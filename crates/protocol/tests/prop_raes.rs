//! Property-based invariant suite for the RAES maintenance protocol.
//!
//! The facts that must hold for *every* realisation, over random sizes,
//! degrees, capacity factors, saturation policies, churn drivers and seeds:
//!
//! * **deficit accounting** — after every round, every alive node's connected
//!   out-degree plus its pending-request deficit equals exactly `d`;
//! * **bounded in-degree** — no node's in-degree (requests with multiplicity)
//!   ever exceeds the cap `⌊c·d⌋`;
//! * **queue hygiene** — every pending entry's handle is current (dead owners
//!   are swept out) and no `(owner, slot)` is queued twice;
//! * **determinism** — the trajectory is a pure function of the
//!   configuration.
//!
//! The streaming runs deliberately pass the `n`-round mark so slab cells are
//! recycled under the queue's generation-tagged handles.

use std::collections::{HashMap, HashSet};

use churn_core::DynamicNetwork;
use churn_protocol::{ChurnDriver, RaesConfig, RaesModel, SaturationPolicy};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = SaturationPolicy> {
    prop_oneof![
        Just(SaturationPolicy::RejectRetry),
        Just(SaturationPolicy::EvictOldest),
    ]
}

fn churn_strategy() -> impl Strategy<Value = ChurnDriver> {
    prop_oneof![Just(ChurnDriver::Streaming), Just(ChurnDriver::Poisson)]
}

/// The protocol's structural invariants at one instant (see module docs).
fn assert_invariants(m: &RaesModel) {
    m.graph().assert_invariants();
    let d = m.degree_parameter();
    let cap = m.in_degree_cap();

    let mut deficit: HashMap<u32, usize> = HashMap::new();
    let mut queued_slots: HashSet<(u32, u32)> = HashSet::new();
    for request in m.pending_requests() {
        assert!(
            m.graph().is_current(request.owner),
            "pending entry references a dead or recycled cell"
        );
        assert!(
            queued_slots.insert((request.owner.index, request.slot)),
            "out-slot queued twice"
        );
        assert!((request.slot as usize) < d, "slot index out of range");
        *deficit.entry(request.owner.index).or_insert(0) += 1;
    }

    for &idx in m.graph().member_indices() {
        let id = m.graph().id_at(idx).expect("member cells are occupied");
        let out = m.graph().out_degree(id).expect("node is alive");
        let pending = deficit.remove(&idx).unwrap_or(0);
        assert_eq!(
            out + pending,
            d,
            "node {id}: out-degree {out} + pending deficit {pending} != d = {d}"
        );
        let in_degree = m.graph().in_request_count(id).expect("node is alive");
        assert!(
            in_degree <= cap,
            "node {id}: in-degree {in_degree} exceeds cap {cap}"
        );
    }
    assert!(
        deficit.is_empty(),
        "pending requests owned by non-member cells: {deficit:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Deficit accounting, the in-degree cap and queue hygiene hold after
    /// every round of every configuration — including rounds past the
    /// streaming model's first death, where slab cells are recycled.
    #[test]
    fn protocol_invariants_hold_every_round(
        n in 5usize..40,
        d in 1usize..6,
        c in 1.0f64..2.5,
        policy in policy_strategy(),
        churn in churn_strategy(),
        seed in any::<u64>(),
    ) {
        let config = RaesConfig::new(n, d)
            .capacity_factor(c)
            .saturation(policy)
            .churn(churn)
            .seed(seed);
        let mut m = RaesModel::new(config).unwrap();
        // 3n rounds: past full size (round n) and past the point where every
        // original cell has been vacated and reused at least once (round 2n).
        for _ in 0..(3 * n as u64) {
            m.advance_time_unit();
            assert_invariants(&m);
        }
        if churn == ChurnDriver::Streaming {
            prop_assert!(
                (m.graph().slab_len() as u64) < m.rounds(),
                "streaming churn past round n must recycle slab cells \
                 (slab {} vs {} births)",
                m.graph().slab_len(),
                m.rounds(),
            );
        }
    }

    /// The trajectory — topology, pending queue and protocol counters — is a
    /// pure function of the configuration.
    #[test]
    fn same_seed_same_trajectory(
        n in 5usize..40,
        d in 1usize..6,
        policy in policy_strategy(),
        churn in churn_strategy(),
        seed in any::<u64>(),
    ) {
        let config = RaesConfig::new(n, d)
            .saturation(policy)
            .churn(churn)
            .seed(seed);
        let mut a = RaesModel::new(config.clone()).unwrap();
        let mut b = RaesModel::new(config).unwrap();
        for _ in 0..(2 * n as u64 + 20) {
            prop_assert_eq!(a.advance_time_unit(), b.advance_time_unit());
        }
        prop_assert_eq!(a.alive_ids(), b.alive_ids());
        prop_assert_eq!(a.pending_requests(), b.pending_requests());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// Saturation pressure cannot break the cap: even at c = 1 (capacity
    /// exactly equal to demand) the maximum in-degree stays at ⌊c·d⌋, under
    /// both saturation policies.
    #[test]
    fn cap_holds_under_tight_capacity(
        n in 10usize..50,
        d in 1usize..5,
        policy in policy_strategy(),
        seed in any::<u64>(),
    ) {
        let mut m = RaesModel::new(
            RaesConfig::new(n, d)
                .capacity_factor(1.0)
                .saturation(policy)
                .seed(seed),
        )
        .unwrap();
        for _ in 0..(2 * n as u64 + 30) {
            m.advance_time_unit();
            prop_assert!(m.max_in_degree() <= m.in_degree_cap());
        }
        assert_invariants(&m);
    }

    /// With genuinely slack capacity (c = 2, so the cap is at least d + 1 for
    /// every d ≥ 1) the pending backlog stays bounded by a small multiple of
    /// d: deficits are repaired, not accumulated. (At d = 1 the *default*
    /// c = 1.5 floors to cap 1 — zero slack — which is why this test pins
    /// c = 2 instead.)
    #[test]
    fn backlog_stays_bounded_with_slack_capacity(
        n in 20usize..60,
        d in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut m = RaesModel::new(
            RaesConfig::new(n, d).capacity_factor(2.0).seed(seed),
        )
        .unwrap();
        m.warm_up();
        for _ in 0..60 {
            m.advance_time_unit();
            prop_assert!(
                m.pending_requests().len() <= 6 * d + 8,
                "backlog {} should stay within a few multiples of d = {}",
                m.pending_requests().len(),
                d,
            );
        }
    }
}
