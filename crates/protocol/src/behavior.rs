//! Byzantine behavior layer: per-node protocol behaviors and the seeded
//! adversary model that assigns them at spawn.
//!
//! The paper's guarantees assume every node follows the protocol;
//! [`churn_core::VictimPolicy`] only attacks the churn *schedule*. This module
//! attacks the *protocol itself*: a configured [`AdversaryModel`] assigns each
//! newborn a [`Behavior`], and Byzantine behaviors hook the RAES
//! request/accept/reject and repair paths while honest nodes run the
//! completely unchanged code path. With [`AdversaryModel::None`] (or a
//! fraction of 0) the model is RNG-stream-identical to the un-adversarial
//! protocol: adversary decisions draw from a separate substream, and no
//! behavior tag is ever written, so every hot-path branch stays on its
//! existing arm.
//!
//! Behaviors are stored as one byte per slab cell
//! ([`churn_graph::DynamicGraph::set_tag_at`]); the low nibble carries the
//! flag bits shared with the flooding engines
//! ([`churn_core::flooding::TAG_BYZANTINE`],
//! [`churn_core::flooding::TAG_NO_FORWARD`]), the high nibble the behavior
//! discriminant.

use serde::{Deserialize, Serialize};

use churn_core::flooding::{TAG_BYZANTINE, TAG_NO_FORWARD};

/// The protocol behavior of one alive node, assigned at spawn and immutable
/// for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Behavior {
    /// Follows the protocol (and forwards floods) exactly.
    #[default]
    Honest,
    /// Rejects every incoming connection request, regardless of its actual
    /// in-degree — exploits the accept/reject edge of the handshake: a
    /// refusal is indistinguishable from genuine saturation, so honest
    /// requesters burn retry rounds.
    RefuseAll,
    /// Accepts the handshake but never holds the in-link: the requester's
    /// slot is silently severed again, so the repair re-enters the queue
    /// every round and its latency grows without the requester ever seeing a
    /// rejection.
    AcceptThenDrop,
    /// Spends its own out-links saturating a chosen victim's `⌊c·d⌋`
    /// in-degree cap, so honest repair requests aimed at the victim bounce
    /// (or, under evict-oldest, shed honest links).
    CapSaturator,
    /// Protocol-honest on the repair path but silent on the flooding
    /// overlay: it becomes informed yet never forwards, poisoning the
    /// informed set around it.
    SilentOnFlood,
}

impl Behavior {
    /// The graph tag byte encoding this behavior (`0` for honest). Low
    /// nibble: flag bits shared with `churn_core::flooding`; high nibble:
    /// behavior discriminant.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Behavior::Honest => 0,
            Behavior::RefuseAll => 0x10 | TAG_BYZANTINE,
            Behavior::AcceptThenDrop => 0x20 | TAG_BYZANTINE,
            Behavior::CapSaturator => 0x30 | TAG_BYZANTINE,
            Behavior::SilentOnFlood => 0x40 | TAG_BYZANTINE | TAG_NO_FORWARD,
        }
    }

    /// Decodes a graph tag byte back into a behavior (`None` for bytes this
    /// crate never writes).
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Behavior::Honest),
            t if t == Behavior::RefuseAll.tag() => Some(Behavior::RefuseAll),
            t if t == Behavior::AcceptThenDrop.tag() => Some(Behavior::AcceptThenDrop),
            t if t == Behavior::CapSaturator.tag() => Some(Behavior::CapSaturator),
            t if t == Behavior::SilentOnFlood.tag() => Some(Behavior::SilentOnFlood),
            _ => None,
        }
    }
}

/// Which Byzantine behavior an adversary model assigns to its nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Every corrupted node runs [`Behavior::RefuseAll`].
    RefuseAll,
    /// Every corrupted node runs [`Behavior::AcceptThenDrop`].
    AcceptThenDrop,
    /// Every corrupted node runs [`Behavior::CapSaturator`].
    CapSaturator,
    /// Every corrupted node runs [`Behavior::SilentOnFlood`].
    SilentOnFlood,
}

impl AttackKind {
    /// The behavior this attack assigns.
    #[must_use]
    pub fn behavior(self) -> Behavior {
        match self {
            AttackKind::RefuseAll => Behavior::RefuseAll,
            AttackKind::AcceptThenDrop => Behavior::AcceptThenDrop,
            AttackKind::CapSaturator => Behavior::CapSaturator,
            AttackKind::SilentOnFlood => Behavior::SilentOnFlood,
        }
    }

    /// Short label used in scenario net names and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::RefuseAll => "refuse",
            AttackKind::AcceptThenDrop => "accept-drop",
            AttackKind::CapSaturator => "cap-sat",
            AttackKind::SilentOnFlood => "silent",
        }
    }

    /// A stable code mixed into seed derivation (so distinct attacks on the
    /// same grid point get distinct cell seeds).
    #[must_use]
    pub fn seed_code(self) -> u64 {
        match self {
            AttackKind::RefuseAll => 1,
            AttackKind::AcceptThenDrop => 2,
            AttackKind::CapSaturator => 3,
            AttackKind::SilentOnFlood => 4,
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How Byzantine behaviors are assigned to newborn nodes. All randomness
/// draws from the model's dedicated adversary substream, never from the main
/// simulation stream — so the honest trajectory at fraction 0 is bit-for-bit
/// the trajectory of a model with no adversary at all.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryModel {
    /// No adversary: no draws, no tags, the unchanged protocol.
    #[default]
    None,
    /// Each newborn is independently corrupted with probability `fraction`.
    Uniform {
        /// Corruption probability per spawn, in `[0, 1)`.
        fraction: f64,
        /// Behavior assigned to corrupted nodes.
        attack: AttackKind,
    },
    /// Like [`AdversaryModel::Uniform`], but every corrupted
    /// [`Behavior::CapSaturator`] presses one *shared* victim — the
    /// targeted-neighborhood (eclipse) shape, which concentrates the whole
    /// corrupted capacity budget on a single node. For attacks without a
    /// victim notion this degenerates to `Uniform`.
    Eclipse {
        /// Corruption probability per spawn, in `[0, 1)`.
        fraction: f64,
        /// Behavior assigned to corrupted nodes.
        attack: AttackKind,
    },
    /// Corrupted nodes arrive in bursts: once a corruption fires, the next
    /// `cohort - 1` spawns are corrupted too (a join-flood). The per-spawn
    /// firing probability is `fraction / cohort`, so the *long-run* corrupted
    /// fraction still approaches `fraction`.
    JoinFlood {
        /// Long-run corrupted fraction, in `[0, 1)`.
        fraction: f64,
        /// Burst length (at least 1; 1 degenerates to `Uniform`).
        cohort: u32,
        /// Behavior assigned to corrupted nodes.
        attack: AttackKind,
    },
}

impl AdversaryModel {
    /// The configured corrupted fraction (0 for [`AdversaryModel::None`]).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        match *self {
            AdversaryModel::None => 0.0,
            AdversaryModel::Uniform { fraction, .. }
            | AdversaryModel::Eclipse { fraction, .. }
            | AdversaryModel::JoinFlood { fraction, .. } => fraction,
        }
    }

    /// The configured attack, when any.
    #[must_use]
    pub fn attack(&self) -> Option<AttackKind> {
        match *self {
            AdversaryModel::None => None,
            AdversaryModel::Uniform { attack, .. }
            | AdversaryModel::Eclipse { attack, .. }
            | AdversaryModel::JoinFlood { attack, .. } => Some(attack),
        }
    }

    /// `true` unless this is [`AdversaryModel::None`]. An *active* model with
    /// fraction 0 still draws from the adversary substream at every spawn but
    /// never corrupts — by construction that leaves the main stream, and
    /// hence the trajectory, untouched.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, AdversaryModel::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_and_carry_the_flag_bits() {
        for behavior in [
            Behavior::Honest,
            Behavior::RefuseAll,
            Behavior::AcceptThenDrop,
            Behavior::CapSaturator,
            Behavior::SilentOnFlood,
        ] {
            assert_eq!(Behavior::from_tag(behavior.tag()), Some(behavior));
            if behavior != Behavior::Honest {
                assert_ne!(behavior.tag() & TAG_BYZANTINE, 0, "{behavior:?}");
            }
        }
        assert_ne!(Behavior::SilentOnFlood.tag() & TAG_NO_FORWARD, 0);
        assert_eq!(Behavior::RefuseAll.tag() & TAG_NO_FORWARD, 0);
        assert_eq!(Behavior::from_tag(0xFF), None);
    }

    #[test]
    fn attack_labels_and_codes_are_stable_and_distinct() {
        let kinds = [
            AttackKind::RefuseAll,
            AttackKind::AcceptThenDrop,
            AttackKind::CapSaturator,
            AttackKind::SilentOnFlood,
        ];
        assert_eq!(AttackKind::RefuseAll.to_string(), "refuse");
        assert_eq!(AttackKind::AcceptThenDrop.to_string(), "accept-drop");
        assert_eq!(AttackKind::CapSaturator.to_string(), "cap-sat");
        assert_eq!(AttackKind::SilentOnFlood.to_string(), "silent");
        let mut codes: Vec<u64> = kinds.iter().map(|k| k.seed_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }

    #[test]
    fn adversary_model_accessors() {
        assert!(!AdversaryModel::None.is_active());
        assert_eq!(AdversaryModel::None.fraction(), 0.0);
        assert_eq!(AdversaryModel::None.attack(), None);
        let uniform = AdversaryModel::Uniform {
            fraction: 0.1,
            attack: AttackKind::RefuseAll,
        };
        assert!(uniform.is_active());
        assert_eq!(uniform.fraction(), 0.1);
        assert_eq!(uniform.attack(), Some(AttackKind::RefuseAll));
        assert_eq!(AdversaryModel::default(), AdversaryModel::None);
    }
}
