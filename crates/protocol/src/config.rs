//! Configuration of the RAES maintenance protocol.

use serde::{Deserialize, Serialize};

use churn_core::{ModelError, Result, VictimPolicy};

use crate::behavior::AdversaryModel;

/// What a contacted node does with a connection request once its in-degree has
/// reached the cap `⌊c·d⌋`.
///
/// * [`SaturationPolicy::RejectRetry`] — the classic RAES rule: the request is
///   rejected and its owner resamples a fresh uniform target in the next
///   round. In-links, once accepted, are only severed by churn.
/// * [`SaturationPolicy::EvictOldest`] — the saturated node accepts the
///   request but sheds its (approximately) oldest incoming link to stay at the
///   cap; the evicted requester re-enters the pending queue. This trades churn
///   amplification for zero rejections, the way some DHT neighbour tables
///   prefer fresh links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SaturationPolicy {
    /// Reject the request; the owner retries next round (classic RAES).
    #[default]
    RejectRetry,
    /// Accept the request and evict the oldest in-link to make room.
    EvictOldest,
}

impl SaturationPolicy {
    /// Short label used in reports and bench ids.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SaturationPolicy::RejectRetry => "reject-retry",
            SaturationPolicy::EvictOldest => "evict-oldest",
        }
    }
}

impl std::fmt::Display for SaturationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which churn process drives node arrivals and departures underneath the
/// protocol — the same two options as the paper's models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ChurnDriver {
    /// Streaming churn (Definition 3.2): one join and one leave per round,
    /// every node lives exactly `n` rounds.
    #[default]
    Streaming,
    /// Poisson churn (Definition 4.1): arrivals at rate λ = 1, exponential
    /// lifetimes with rate µ = 1/n, simulated along the jump chain.
    Poisson,
}

impl ChurnDriver {
    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChurnDriver::Streaming => "streaming",
            ChurnDriver::Poisson => "poisson",
        }
    }
}

impl std::fmt::Display for ChurnDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a [`crate::RaesModel`].
///
/// Built with the same consuming builder style as the core model configs:
///
/// ```
/// use churn_protocol::{ChurnDriver, RaesConfig, SaturationPolicy};
///
/// let config = RaesConfig::new(1_000, 8)
///     .capacity_factor(2.0)
///     .saturation(SaturationPolicy::EvictOldest)
///     .churn(ChurnDriver::Poisson)
///     .seed(7);
/// assert_eq!(config.in_degree_cap(), 16);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaesConfig {
    /// Expected network size (streaming: exact after warm-up; Poisson: λ/µ).
    pub n: usize,
    /// Number of out-links every alive node maintains.
    pub d: usize,
    /// In-degree capacity factor: a node accepts requests only while its
    /// in-degree is below `⌊c·d⌋`. Must be at least 1; RAES needs `c > 1` for
    /// fast convergence (at `c = 1` total capacity exactly equals demand).
    pub c: f64,
    /// What a saturated node does with an incoming request.
    pub saturation: SaturationPolicy,
    /// How many contacts a pending request may make within one repair round
    /// (at least 1; the classic RAES rule is 1). Under
    /// [`SaturationPolicy::RejectRetry`], a rejected request immediately
    /// resamples a fresh uniform target up to this many times in the same
    /// round before it is carried over — trading extra messages for lower
    /// repair latency near saturation. [`SaturationPolicy::EvictOldest`]
    /// serves every request on the first contact, so the knob has no effect
    /// there.
    pub attempts_per_round: usize,
    /// The churn process underneath the protocol.
    pub churn: ChurnDriver,
    /// How Poisson death events pick their victim: the paper's uniform
    /// churn, or an adversarial (oldest-first / highest-degree) selection —
    /// the robustness question for a bounded-degree expander-maintenance
    /// protocol. Streaming churn is structurally oldest-first, so only
    /// [`VictimPolicy::Uniform`] and [`VictimPolicy::OldestFirst`] validate
    /// there.
    pub victim_policy: VictimPolicy,
    /// How Byzantine behaviors are assigned to newborn nodes (default:
    /// [`AdversaryModel::None`]). Adversary decisions draw from a dedicated
    /// substream, so any model with an effective corrupted fraction of 0 is
    /// RNG-stream-identical to one with no adversary at all.
    pub adversary: AdversaryModel,
    /// RNG seed; identical configurations evolve identically.
    pub seed: u64,
}

impl RaesConfig {
    /// The default capacity factor. `1.5` keeps the in-degree cap at `12` for
    /// the workspace's standard `d = 8`, which fits the graph records' inline
    /// in-reference capacity — steady-state protocol rounds then perform no
    /// heap allocation at all.
    pub const DEFAULT_CAPACITY_FACTOR: f64 = 1.5;

    /// Creates a configuration with the given size and degree, capacity
    /// factor [`Self::DEFAULT_CAPACITY_FACTOR`], reject-and-retry saturation,
    /// streaming churn and seed 0.
    #[must_use]
    pub fn new(n: usize, d: usize) -> Self {
        RaesConfig {
            n,
            d,
            c: Self::DEFAULT_CAPACITY_FACTOR,
            saturation: SaturationPolicy::default(),
            attempts_per_round: 1,
            churn: ChurnDriver::default(),
            victim_policy: VictimPolicy::Uniform,
            adversary: AdversaryModel::None,
            seed: 0,
        }
    }

    /// Sets the Byzantine adversary model (see [`Self::adversary`]).
    #[must_use]
    pub fn adversary(mut self, adversary: AdversaryModel) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the number of contacts a pending request may make per round
    /// (see [`Self::attempts_per_round`]).
    #[must_use]
    pub fn attempts_per_round(mut self, attempts: usize) -> Self {
        self.attempts_per_round = attempts;
        self
    }

    /// Sets the death-victim selection policy.
    #[must_use]
    pub fn victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim_policy = policy;
        self
    }

    /// Sets the in-degree capacity factor `c`.
    #[must_use]
    pub fn capacity_factor(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the saturation policy.
    #[must_use]
    pub fn saturation(mut self, policy: SaturationPolicy) -> Self {
        self.saturation = policy;
        self
    }

    /// Sets the churn driver.
    #[must_use]
    pub fn churn(mut self, churn: ChurnDriver) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The absolute in-degree cap `⌊c·d⌋`: a node accepts a request only
    /// while its in-degree is strictly below this, so the cap is also the
    /// largest in-degree the protocol ever produces.
    #[must_use]
    pub fn in_degree_cap(&self) -> usize {
        (self.c * self.d as f64).floor() as usize
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NetworkTooSmall`] if `n < 2`,
    /// [`ModelError::InvalidDegree`] if `d == 0`,
    /// [`ModelError::InvalidCapacityFactor`] unless `c` is finite and at
    /// least 1, and [`ModelError::UnsupportedVictimPolicy`] for
    /// degree-targeted deaths on streaming churn (whose death schedule is
    /// structurally fixed).
    pub fn validate(&self) -> Result<()> {
        if self.n < churn_core::MIN_NETWORK_SIZE {
            return Err(ModelError::NetworkTooSmall {
                requested: self.n,
                minimum: churn_core::MIN_NETWORK_SIZE,
            });
        }
        if self.d == 0 {
            return Err(ModelError::InvalidDegree { requested: self.d });
        }
        if !(self.c.is_finite() && self.c >= 1.0) {
            return Err(ModelError::InvalidCapacityFactor { value: self.c });
        }
        if self.attempts_per_round == 0 {
            return Err(ModelError::InvalidAttempts {
                requested: self.attempts_per_round,
            });
        }
        if self.churn == ChurnDriver::Streaming && self.victim_policy == VictimPolicy::HighestDegree
        {
            return Err(ModelError::UnsupportedVictimPolicy {
                kind: "RAES",
                policy: self.victim_policy.label(),
            });
        }
        if self.adversary.is_active() {
            let fraction = self.adversary.fraction();
            if !(fraction.is_finite() && (0.0..1.0).contains(&fraction)) {
                return Err(ModelError::InvalidRate {
                    parameter: "adversary fraction",
                    value: fraction,
                });
            }
            if let AdversaryModel::JoinFlood { cohort: 0, .. } = self.adversary {
                return Err(ModelError::InvalidRate {
                    parameter: "join-flood cohort",
                    value: 0.0,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields_and_validates() {
        let c = RaesConfig::new(100, 4)
            .capacity_factor(2.0)
            .saturation(SaturationPolicy::EvictOldest)
            .churn(ChurnDriver::Poisson)
            .seed(9);
        assert_eq!((c.n, c.d, c.seed), (100, 4, 9));
        assert_eq!(c.saturation, SaturationPolicy::EvictOldest);
        assert_eq!(c.churn, ChurnDriver::Poisson);
        assert_eq!(c.in_degree_cap(), 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn default_capacity_fits_inline_in_refs_at_d_8() {
        assert_eq!(RaesConfig::new(100, 8).in_degree_cap(), 12);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(matches!(
            RaesConfig::new(1, 4).validate(),
            Err(ModelError::NetworkTooSmall { .. })
        ));
        assert!(matches!(
            RaesConfig::new(100, 0).validate(),
            Err(ModelError::InvalidDegree { .. })
        ));
        for bad in [0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                RaesConfig::new(100, 4).capacity_factor(bad).validate(),
                Err(ModelError::InvalidCapacityFactor { .. })
            ));
        }
        assert!(RaesConfig::new(100, 4)
            .capacity_factor(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn adversary_validation_bounds_fraction_and_cohort() {
        use crate::behavior::{AdversaryModel, AttackKind};
        let base = |adv| RaesConfig::new(100, 4).adversary(adv);
        assert_eq!(RaesConfig::new(100, 4).adversary, AdversaryModel::None);
        assert!(base(AdversaryModel::Uniform {
            fraction: 0.0,
            attack: AttackKind::RefuseAll,
        })
        .validate()
        .is_ok());
        assert!(base(AdversaryModel::Eclipse {
            fraction: 0.2,
            attack: AttackKind::CapSaturator,
        })
        .validate()
        .is_ok());
        for bad in [-0.1, 1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                base(AdversaryModel::Uniform {
                    fraction: bad,
                    attack: AttackKind::SilentOnFlood,
                })
                .validate(),
                Err(ModelError::InvalidRate { .. })
            ));
        }
        assert!(matches!(
            base(AdversaryModel::JoinFlood {
                fraction: 0.1,
                cohort: 0,
                attack: AttackKind::AcceptThenDrop,
            })
            .validate(),
            Err(ModelError::InvalidRate { .. })
        ));
        assert!(base(AdversaryModel::JoinFlood {
            fraction: 0.1,
            cohort: 4,
            attack: AttackKind::AcceptThenDrop,
        })
        .validate()
        .is_ok());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SaturationPolicy::RejectRetry.to_string(), "reject-retry");
        assert_eq!(SaturationPolicy::EvictOldest.to_string(), "evict-oldest");
        assert_eq!(ChurnDriver::Streaming.to_string(), "streaming");
        assert_eq!(ChurnDriver::Poisson.to_string(), "poisson");
    }
}
