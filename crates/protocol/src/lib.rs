//! # churn-protocol
//!
//! A *local maintenance protocol* layered on the churn processes of
//! *"Expansion and Flooding in Dynamic Random Networks with Node Churn"*
//! (Becchetti, Clementi, Pasquale, Trevisan, Ziccardi — ICDCS 2021).
//!
//! The paper's SDGR/PDGR models resample a dangling request *instantaneously*
//! and let in-degrees float freely. The natural follow-up question — posed by
//! the RAES line of work (Becchetti et al., "Finding a Bounded-Degree Expander
//! Inside a Dense One"; Cruciani, "Maintaining a Bounded Degree Expander in
//! Dynamic Peer-to-Peer Networks", 2025) — is whether a *protocol of local
//! rules* can keep the topology an expander with **bounded in-degree** while
//! nodes churn:
//!
//! * every alive node maintains exactly `d` out-links, re-requesting any link
//!   severed by churn;
//! * a contacted node **accepts** a link only while its in-degree is below
//!   `c·d`; otherwise it rejects (the requester retries next round) or, under
//!   the [`SaturationPolicy::EvictOldest`] knob, sheds its oldest in-link to
//!   make room;
//! * repairs are not instantaneous: an unfilled slot waits in a pending queue
//!   and is retried once per round, so churn shows up as measurable *repair
//!   latency* instead of being papered over.
//!
//! [`RaesModel`] implements `churn-core`'s `DynamicNetwork` trait, so
//! flooding, expansion and isolation analyses, `run_sweep` grids and the
//! experiment binaries in `churn-bench` treat it exactly like the four
//! baseline models (`exp_raes_flooding` runs the side-by-side comparison).
//! Internally it drives the slab graph through the dense `*_at` API and keeps
//! its pending queue as generation-tagged `DenseHandle`s, so steady-state
//! rounds perform no hashing on the repair path and, under the streaming
//! driver, no heap allocation at all.
//!
//! ## Quick start
//!
//! ```
//! use churn_core::DynamicNetwork;
//! use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
//! use churn_protocol::{RaesConfig, RaesModel};
//!
//! # fn main() -> Result<(), churn_core::ModelError> {
//! let mut model = RaesModel::new(RaesConfig::new(256, 8).seed(42))?;
//! model.warm_up();
//! let record = run_flooding(
//!     &mut model,
//!     FloodingSource::NextToJoin,
//!     &FloodingConfig::default(),
//! );
//! assert!(record.outcome.is_complete(), "RAES topologies flood quickly");
//! println!(
//!     "rejection rate {:.3}, mean repair latency {:.3} rounds",
//!     model.stats().rejection_rate(),
//!     model.stats().mean_repair_latency(),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod behavior;
mod config;
mod raes;

pub use behavior::{AdversaryModel, AttackKind, Behavior};
pub use config::{ChurnDriver, RaesConfig, SaturationPolicy};
pub use raes::{PendingRequest, RaesModel, RaesRoundStats, RaesStats};

// Re-export the handle type pending requests are keyed by.
pub use churn_graph::DenseHandle;
