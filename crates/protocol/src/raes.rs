//! The RAES maintenance model: request, accept (if enough space), resample.

use std::collections::VecDeque;

use churn_graph::hashing::IdHashMap;
use churn_graph::{DenseHandle, DynamicGraph, NodeId, NodeIdAllocator, RemovedNode};
use churn_stochastic::process::{BirthDeathChain, Jump};
use churn_stochastic::rng::{derive_seed, seeded_rng, SimRng};
use serde::{Deserialize, Serialize};

use churn_core::driver::{self, ChurnHost, JumpClock, PoissonChurnHost, VictimPolicy};
use churn_core::{ChurnSummary, DynamicNetwork, EdgePolicy, ModelEvent, ModelKind, Result};

use crate::{AdversaryModel, Behavior, ChurnDriver, RaesConfig, SaturationPolicy};

/// Seed-derivation stream tag of the adversary substream: behavior
/// assignment and victim selection draw from `derive_seed(seed, this)`, so
/// the main simulation stream is untouched even while an adversary is
/// configured.
const ADVERSARY_STREAM: u64 = 0xB12A_7A6E;

/// One unfilled out-slot waiting to be connected: the protocol's unit of work.
///
/// The owner is referenced through a generation-tagged [`DenseHandle`], so a
/// request whose owner has meanwhile died (or whose slab cell was recycled by
/// a newborn) is detected in O(1) during the repair sweep, with no identifier
/// lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingRequest {
    /// The node that owns the unfilled out-slot.
    pub owner: DenseHandle,
    /// The out-slot index in `0..d`.
    pub slot: u32,
    /// Value of [`RaesModel::rounds`] when the slot became unfilled; the
    /// repair latency of a request is the number of rounds it spent pending.
    pub since_round: u64,
}

/// Protocol activity of one round (one message-delay unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RaesRoundStats {
    /// The round these stats describe.
    pub round: u64,
    /// Pending requests at the start of the repair sweep (after this round's
    /// churn enqueued the newborn's slots and the dangling slots of
    /// survivors).
    pub pending_before: usize,
    /// Pending requests left after the sweep (unfilled deficits carried into
    /// the next round).
    pub pending_after: usize,
    /// Requests actually sent (one per pending slot with an alive owner and at
    /// least one other alive node to contact).
    pub requests_sent: usize,
    /// Requests accepted (the slot is now connected).
    pub accepted: usize,
    /// Requests rejected by a saturated target (reject-and-retry policy).
    pub rejected: usize,
    /// Links evicted by saturated targets (evict-oldest policy); every
    /// eviction re-enqueues the evicted owner's slot.
    pub evicted: usize,
    /// Requests dropped because their owner died before they were served.
    pub dropped: usize,
    /// Total rounds the requests accepted this round spent pending (0 for a
    /// newborn's slot filled in its birth round).
    pub repair_latency_sum: u64,
    /// Requests refused by a [`crate::Behavior::RefuseAll`] node this round
    /// (each is also counted in `rejected` — the requester cannot tell a
    /// refusal from genuine saturation). Always 0 without an adversary.
    pub byz_refused: usize,
    /// Phantom accepts by [`crate::Behavior::AcceptThenDrop`] nodes: the
    /// handshake "succeeded" but the slot stays unfilled and the request
    /// silently re-enters the queue. Not counted in `accepted` or `rejected`.
    pub byz_accept_drops: usize,
    /// Requests sent by Byzantine owners this round (cap-saturator victim
    /// presses; also counted in `requests_sent`).
    pub byz_requests_sent: usize,
    /// Requests accepted whose owner is honest (untagged). Equals `accepted`
    /// without an adversary.
    pub honest_accepted: usize,
    /// Rounds the honest-owned requests accepted this round spent pending.
    /// Equals `repair_latency_sum` without an adversary.
    pub honest_repair_latency_sum: u64,
    /// Largest in-degree observed on a cap-saturator victim right after a
    /// saturator press this round (0 when no saturator pressed).
    pub victim_cap_occupancy: usize,
}

/// Cumulative protocol counters since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RaesStats {
    /// Protocol rounds executed.
    pub rounds: u64,
    /// Total requests sent.
    pub requests_sent: u64,
    /// Total requests accepted.
    pub accepted: u64,
    /// Total requests rejected by saturated targets.
    pub rejected: u64,
    /// Total links evicted (evict-oldest policy only).
    pub evicted: u64,
    /// Total requests dropped because their owner died first.
    pub dropped: u64,
    /// Total rounds accepted requests spent pending before being served.
    pub repair_latency_sum: u64,
    /// Total requests refused by `RefuseAll` nodes (subset of `rejected`).
    pub byz_refused: u64,
    /// Total phantom accepts by `AcceptThenDrop` nodes.
    pub byz_accept_drops: u64,
    /// Total requests sent by Byzantine owners (subset of `requests_sent`).
    pub byz_requests_sent: u64,
    /// Total requests accepted for honest owners (subset of `accepted`;
    /// equal without an adversary).
    pub honest_accepted: u64,
    /// Total pending rounds of honest-owned accepted requests (subset of
    /// `repair_latency_sum`; equal without an adversary).
    pub honest_repair_latency_sum: u64,
    /// Largest cap-saturator victim in-degree ever observed after a press.
    pub max_victim_cap_occupancy: u64,
}

impl RaesStats {
    fn absorb(&mut self, round: &RaesRoundStats) {
        self.rounds += 1;
        self.requests_sent += round.requests_sent as u64;
        self.accepted += round.accepted as u64;
        self.rejected += round.rejected as u64;
        self.evicted += round.evicted as u64;
        self.dropped += round.dropped as u64;
        self.repair_latency_sum += round.repair_latency_sum;
        self.byz_refused += round.byz_refused as u64;
        self.byz_accept_drops += round.byz_accept_drops as u64;
        self.byz_requests_sent += round.byz_requests_sent as u64;
        self.honest_accepted += round.honest_accepted as u64;
        self.honest_repair_latency_sum += round.honest_repair_latency_sum;
        self.max_victim_cap_occupancy = self
            .max_victim_cap_occupancy
            .max(round.victim_cap_occupancy as u64);
    }

    /// Mean number of rounds an eventually-served *honest* request waited
    /// (0 when none was served yet). Equals [`Self::mean_repair_latency`]
    /// without an adversary.
    #[must_use]
    pub fn mean_honest_repair_latency(&self) -> f64 {
        if self.honest_accepted == 0 {
            0.0
        } else {
            self.honest_repair_latency_sum as f64 / self.honest_accepted as f64
        }
    }

    /// Mean number of rounds an eventually-served request waited (0 when no
    /// request was served yet). Newborn slots filled in their birth round wait
    /// 0 rounds.
    #[must_use]
    pub fn mean_repair_latency(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.repair_latency_sum as f64 / self.accepted as f64
        }
    }

    /// Fraction of sent requests that were rejected.
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.requests_sent == 0 {
            0.0
        } else {
            self.rejected as f64 / self.requests_sent as f64
        }
    }
}

/// The RAES maintenance model: a dynamic network whose topology is kept by a
/// *local protocol* instead of the paper's instantaneous resampling.
///
/// Every alive node maintains `d` out-links. Each round (one message-delay
/// unit):
///
/// 1. **Churn.** The underlying process (streaming or Poisson, exactly as in
///    the paper's models) kills and spawns nodes. A newborn starts with `d`
///    unfilled slots; an out-slot of a survivor whose target died becomes
///    unfilled. Unfilled slots join the pending-request queue.
/// 2. **Repair.** Every pending request contacts one uniformly random alive
///    node. The contact *accepts* while its in-degree (requests pointing at
///    it, with multiplicity) is below the cap `⌊c·d⌋`; otherwise it reacts
///    according to the [`SaturationPolicy`] — reject (the request retries next
///    round) or accept-and-evict its oldest in-link (the evicted owner
///    re-enters the queue).
///
/// With `c > 1` the accept capacity exceeds demand, so deficits are repaired
/// in O(1) expected rounds and the realized topology stays, like SDGR/PDGR, a
/// `d`-regular-out-degree graph — but with the in-degree *bounded by `c·d`*
/// instead of merely concentrated around `d`, which is what makes the graph a
/// bounded-degree expander (Cruciani 2025; Becchetti et al., RAES).
///
/// The model implements [`DynamicNetwork`], so flooding, expansion and
/// isolation analyses, `run_sweep`, and the experiment binaries drive it
/// exactly like the four baseline models. The hot path works entirely on the
/// dense `*_at` slab API: steady-state rounds perform no hashing (beyond the
/// one identifier-map update per churn event that the baselines also pay),
/// and with the streaming driver no heap allocation at all (see
/// [`Self::step_round_into`]). Poisson populations fluctuate by ~√n, so there
/// container regrowth is rare (several deviations of headroom are reserved)
/// but not impossible.
///
/// # Example
///
/// ```
/// use churn_core::DynamicNetwork;
/// use churn_protocol::{RaesConfig, RaesModel};
///
/// # fn main() -> Result<(), churn_core::ModelError> {
/// let mut model = RaesModel::new(RaesConfig::new(200, 8).seed(1))?;
/// model.warm_up();
/// assert_eq!(model.alive_count(), 200);
/// let cap = model.in_degree_cap();
/// for id in model.alive_ids() {
///     assert!(model.graph().in_request_count(id).unwrap() <= cap);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RaesModel {
    config: RaesConfig,
    in_cap: usize,
    graph: DynamicGraph,
    rng: SimRng,
    /// Rounds (message-delay units) executed; drives repair-latency
    /// accounting for both churn drivers.
    rounds: u64,
    /// Continuous model time (streaming: equal to `rounds`).
    time: f64,
    /// Churn steps: rounds for streaming, jump-chain events for Poisson.
    churn_steps: u64,
    /// Streaming driver state: birth order of alive nodes, front = oldest.
    order: VecDeque<(NodeId, u32)>,
    /// Poisson driver state.
    chain: Option<BirthDeathChain>,
    birth_time: IdHashMap<NodeId, f64>,
    alloc: NodeIdAllocator,
    newest: Option<NodeId>,
    /// The protocol's work queue. Compacted in place every round; evictions
    /// are staged in `overflow` so the sweep never reallocates mid-iteration.
    pending: Vec<PendingRequest>,
    overflow: Vec<PendingRequest>,
    /// Per-sweep target batch, aligned with the queue (sentinel-coded for
    /// dead owners / missing candidates). Drawing every target before any
    /// record is touched lets the out-of-order core overlap the per-target
    /// cache misses, the same trick the baseline models use on spawn.
    sample_scratch: Vec<u32>,
    /// Per-sweep exclusion batch feeding the graph's bulk
    /// `sample_members_each_excluding_into` draw: one entry per pending
    /// request (the owner's index, or the skip sentinel for dead owners).
    exclude_scratch: Vec<u32>,
    removal_scratch: RemovedNode,
    stats: RaesStats,
    last_round: RaesRoundStats,
    /// Dedicated adversary substream (behavior assignment, victim picks).
    /// Never interleaved with `rng`, so `AdversaryModel::None` and any
    /// zero-fraction adversary leave the main stream bit-identical.
    adv_rng: SimRng,
    /// Join-flood burst state: corrupted spawns still owed by the current
    /// cohort.
    joinflood_remaining: u32,
    /// Per-saturator victim handles, indexed by the saturator's slab cell
    /// (empty while no saturator ever pressed). Entries are revalidated
    /// lazily: a dead victim is re-picked on the next press.
    saturator_victims: Vec<Option<DenseHandle>>,
    /// The shared victim of an [`AdversaryModel::Eclipse`] adversary,
    /// (re-)picked lazily like the per-saturator victims.
    eclipse_victim: Option<DenseHandle>,
}

/// Outcome of one contact attempt against a chosen target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Contact {
    /// The target accepted (possibly after shedding its oldest in-link
    /// under [`SaturationPolicy::EvictOldest`]) and the out-slot was filled.
    Connected,
    /// The target rejected the request: genuine saturation under
    /// [`SaturationPolicy::RejectRetry`], or a Byzantine refusal.
    Refused,
    /// A Byzantine target accepted the handshake but never holds the link:
    /// the slot stays severed and re-enters the queue.
    Phantom,
}

impl RaesModel {
    /// Builds an empty (time 0) RAES model.
    ///
    /// # Errors
    ///
    /// Returns the validation error of [`RaesConfig::validate`].
    pub fn new(config: RaesConfig) -> Result<Self> {
        config.validate()?;
        let rng = seeded_rng(config.seed);
        // Streaming populations are exactly n (+1 transiently). Poisson
        // populations fluctuate with standard deviation ~√n around n, so
        // reserve several deviations of headroom to keep steady-state
        // regrowth of the slab and identifier maps rare.
        let headroom = match config.churn {
            ChurnDriver::Streaming => 16,
            ChurnDriver::Poisson => 16 + 6 * (config.n as f64).sqrt().ceil() as usize,
        };
        let capacity = config.n + headroom;
        let chain = match config.churn {
            ChurnDriver::Streaming => None,
            ChurnDriver::Poisson => Some(BirthDeathChain::new(1.0, 1.0 / config.n as f64)),
        };
        let mut graph = DynamicGraph::with_capacity(capacity);
        if config.victim_policy == VictimPolicy::HighestDegree {
            // Degree-targeted adversarial deaths read the hub through the
            // bucketed index instead of scanning all members per death.
            graph.set_degree_index(true);
        }
        Ok(RaesModel {
            in_cap: config.in_degree_cap(),
            graph,
            rng,
            rounds: 0,
            time: 0.0,
            churn_steps: 0,
            order: VecDeque::with_capacity(capacity),
            chain,
            birth_time: IdHashMap::with_capacity_and_hasher(capacity, Default::default()),
            alloc: NodeIdAllocator::new(),
            newest: None,
            pending: Vec::new(),
            overflow: Vec::new(),
            sample_scratch: Vec::new(),
            exclude_scratch: Vec::new(),
            removal_scratch: RemovedNode::default(),
            stats: RaesStats::default(),
            last_round: RaesRoundStats::default(),
            adv_rng: seeded_rng(derive_seed(config.seed, ADVERSARY_STREAM)),
            joinflood_remaining: 0,
            saturator_victims: Vec::new(),
            eclipse_victim: None,
            config,
        })
    }

    /// The configuration the model was built from.
    #[must_use]
    pub fn config(&self) -> &RaesConfig {
        &self.config
    }

    /// The absolute in-degree cap `⌊c·d⌋`.
    #[must_use]
    pub fn in_degree_cap(&self) -> usize {
        self.in_cap
    }

    /// Number of protocol rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The currently unfilled out-slots waiting for repair. Every entry's
    /// owner was alive at the end of the last round (dead owners are dropped
    /// during the repair sweep), and each `(owner, slot)` appears at most
    /// once.
    #[must_use]
    pub fn pending_requests(&self) -> &[PendingRequest] {
        &self.pending
    }

    /// Cumulative protocol counters.
    #[must_use]
    pub fn stats(&self) -> &RaesStats {
        &self.stats
    }

    /// Protocol activity of the most recent round.
    #[must_use]
    pub fn last_round_stats(&self) -> &RaesRoundStats {
        &self.last_round
    }

    /// Largest current in-degree (requests with multiplicity) over the alive
    /// nodes; by the protocol invariant this never exceeds
    /// [`Self::in_degree_cap`]. O(n) scan, meant for measurements.
    #[must_use]
    pub fn max_in_degree(&self) -> usize {
        self.graph
            .member_indices()
            .iter()
            .map(|&idx| {
                self.graph
                    .in_request_count_at(idx)
                    .expect("member cells are occupied")
            })
            .max()
            .unwrap_or(0)
    }

    /// Executes one round: churn, then one repair sweep over the pending
    /// queue. Equivalent to [`DynamicNetwork::advance_time_unit`].
    pub fn step_round(&mut self) -> ChurnSummary {
        let mut summary = ChurnSummary::new();
        self.step_round_into(&mut summary);
        summary
    }

    /// Like [`Self::step_round`], but accumulates the churn summary into a
    /// caller-owned buffer (cleared first). With a reused summary every
    /// internal buffer (pending queue, target batch, removal scratch) is
    /// recycled, so steady-state rounds under the *streaming* driver never
    /// touch the heap — `crates/protocol/tests/alloc_free.rs` pins this with
    /// a counting allocator, and the `raes_step` bench drives this entry
    /// point. (Poisson populations fluctuate by ~√n; generous headroom makes
    /// steady-state container regrowth rare there, but a sufficiently large
    /// excursion can still allocate.)
    pub fn step_round_into(&mut self, summary: &mut ChurnSummary) {
        let _round = tracing::span("raes-round");
        summary.clear();
        self.rounds += 1;
        match self.config.churn {
            ChurnDriver::Streaming => self.churn_streaming(summary),
            ChurnDriver::Poisson => self.churn_poisson(summary),
        }
        self.repair();
    }

    /// One streaming churn round, through the shared
    /// [`churn_core::driver::streaming_round`] loop (death first, then birth,
    /// exactly like the streaming baselines — the loop *is* the baselines').
    fn churn_streaming(&mut self, summary: &mut ChurnSummary) {
        self.time = self.rounds as f64;
        self.churn_steps = self.rounds;
        let mut order = std::mem::take(&mut self.order);
        driver::streaming_round(self, &mut order, self.config.n, self.time, summary);
        self.order = order;
    }

    /// One message-delay unit of Poisson churn, through the shared
    /// [`churn_core::driver::poisson_advance_until`] jump-chain loop.
    fn churn_poisson(&mut self, summary: &mut ChurnSummary) {
        let chain = self.chain.expect("poisson driver has a jump chain");
        let target = self.time.floor() + 1.0;
        let mut clock = JumpClock {
            time: self.time,
            jumps: self.churn_steps,
        };
        driver::poisson_advance_until(self, &chain, &mut clock, target, summary);
        self.time = clock.time;
        self.churn_steps = clock.jumps;
    }

    /// A node joins with `d` unfilled slots; the slots enter the queue and
    /// are (typically) served in this round's repair sweep.
    fn spawn_node_at(&mut self, time: f64) -> (NodeId, u32) {
        let id = self.alloc.next_id();
        let idx = self
            .graph
            .add_node_indexed(id, self.config.d)
            .expect("allocator never reuses identifiers");
        let handle = self
            .graph
            .handle_at(idx)
            .expect("freshly added node is alive");
        for slot in 0..self.config.d as u32 {
            self.pending.push(PendingRequest {
                owner: handle,
                slot,
                since_round: self.rounds,
            });
        }
        if self.config.adversary.is_active() {
            let behavior = self.draw_behavior();
            if behavior != Behavior::Honest {
                self.graph
                    .set_tag_at(idx, behavior.tag())
                    .expect("freshly added node is alive");
            }
        }
        self.birth_time.insert(id, time);
        self.newest = Some(id);
        // The streaming driver maintains the birth-order queue itself; under
        // Poisson churn the queue is only needed (and only maintained) for
        // the oldest-first adversarial victim policy.
        if self.config.churn == ChurnDriver::Poisson
            && self.config.victim_policy == VictimPolicy::OldestFirst
        {
            self.order.push_back((id, idx));
        }
        (id, idx)
    }

    fn kill_node(&mut self, victim: NodeId, victim_idx: u32) {
        self.birth_time.remove(&victim);
        if self.newest == Some(victim) {
            self.newest = None;
        }
        let mut removed = std::mem::take(&mut self.removal_scratch);
        self.graph
            .remove_node_into(victim_idx, &mut removed)
            .expect("victim is alive");
        // Out-slots of survivors that pointed at the victim are now unfilled:
        // they become protocol work, *not* instantly resampled edges.
        // dangling_dense is sorted by (owner id, slot), so the enqueue order —
        // and with it the whole trajectory — is deterministic.
        for &(owner_idx, slot) in &removed.dangling_dense {
            let owner = self
                .graph
                .handle_at(owner_idx)
                .expect("dangling-slot owners survive the removal");
            self.pending.push(PendingRequest {
                owner,
                slot: slot as u32,
                since_round: self.rounds,
            });
        }
        self.removal_scratch = removed;
        // Pending requests the victim owned are dropped lazily: their handles
        // fail `is_current` in the next repair sweep.
    }

    /// Draws the behavior of a newborn from the adversary substream (the
    /// main stream is never touched). One `f64` draw per spawn for the
    /// fraction-based models; [`AdversaryModel::None`] never calls this.
    fn draw_behavior(&mut self) -> Behavior {
        use rand::Rng;
        match self.config.adversary {
            AdversaryModel::None => Behavior::Honest,
            AdversaryModel::Uniform { fraction, attack }
            | AdversaryModel::Eclipse { fraction, attack } => {
                if self.adv_rng.gen::<f64>() < fraction {
                    attack.behavior()
                } else {
                    Behavior::Honest
                }
            }
            AdversaryModel::JoinFlood {
                fraction,
                cohort,
                attack,
            } => {
                if self.joinflood_remaining > 0 {
                    self.joinflood_remaining -= 1;
                    attack.behavior()
                } else if self.adv_rng.gen::<f64>() < fraction / f64::from(cohort) {
                    self.joinflood_remaining = cohort - 1;
                    attack.behavior()
                } else {
                    Behavior::Honest
                }
            }
        }
    }

    /// Sentinel in the target batch: the request's owner died. Aliases the
    /// graph's bulk-sampling skip sentinel, so the exclusion batch and the
    /// target batch share one coding. An alive [`Behavior::CapSaturator`]
    /// owner is coded with the same sentinel (it never samples a uniform
    /// target — it presses its victim instead); the sweep disambiguates the
    /// two cases with one generation probe.
    const DEAD_OWNER: u32 = churn_graph::SAMPLE_SKIP;
    /// Sentinel in the target batch: no other alive node exists to contact.
    const NO_CANDIDATE: u32 = churn_graph::SAMPLE_NONE;

    /// One repair sweep: every pending request contacts one uniform alive
    /// node. The sweep runs in two phases folded around one bulk graph call:
    /// first the exclusion batch (dead owners coded as skips) is built and
    /// handed to [`DynamicGraph::sample_members_each_excluding_into`], which
    /// draws every first-attempt target inside a single member-table walk —
    /// the draws depend only on the member table, never on earlier accepts,
    /// so this is behaviour-preserving (bit-identical RNG stream) and lets
    /// the per-target cache misses overlap. The queue is then compacted in
    /// place; evictions are staged in `overflow` and appended afterwards, so
    /// the sweep itself never moves the buffer.
    ///
    /// With `attempts_per_round > 1` (reject-and-retry only), a rejected
    /// request resamples inline up to the budget before being carried over;
    /// the default of 1 performs exactly the classic sweep.
    fn repair(&mut self) {
        let mut round = RaesRoundStats {
            round: self.rounds,
            pending_before: self.pending.len(),
            ..RaesRoundStats::default()
        };

        // Tags exist only once an adversary actually corrupted a node, so an
        // honest run (including a configured adversary with fraction 0) takes
        // every pre-existing branch unchanged.
        let byz = self.graph.tags_enabled();

        // Under streaming churn, entries enqueued *this* round (newborn
        // slots, dangling slots of survivors) cannot have dead owners — the
        // round's single death precedes every enqueue — so only carried-over
        // entries pay the generation probe. A Poisson round interleaves many
        // deaths, so there the probe is unconditional.
        let fresh_implies_alive = self.config.churn == ChurnDriver::Streaming;
        self.exclude_scratch.clear();
        for request in &self.pending {
            let alive = (fresh_implies_alive && request.since_round == self.rounds)
                || self.graph.is_current(request.owner);
            self.exclude_scratch.push(if !alive {
                Self::DEAD_OWNER
            } else if byz && self.graph.tag_at(request.owner.index) == Behavior::CapSaturator.tag()
            {
                // Alive saturators never draw a uniform target: the skip
                // sentinel is echoed through the bulk sampler *without*
                // consuming a draw, so honest requests in the same batch see
                // the exact RNG stream they would without the saturator.
                Self::DEAD_OWNER
            } else {
                request.owner.index
            });
        }
        self.sample_scratch.clear();
        self.graph.sample_members_each_excluding_into(
            &mut self.rng,
            &self.exclude_scratch,
            &mut self.sample_scratch,
        );

        let attempts = self.config.attempts_per_round;
        let mut write = 0usize;
        for read in 0..self.pending.len() {
            let request = self.pending[read];
            let target = self.sample_scratch[read];
            if target == Self::DEAD_OWNER {
                if byz
                    && self.graph.is_current(request.owner)
                    && self.graph.tag_at(request.owner.index) == Behavior::CapSaturator.tag()
                {
                    // An alive saturator was coded as a skip: it spends this
                    // slot pressing its victim's cap instead of repairing.
                    round.byz_requests_sent += 1;
                    if !self.press_victim(request, &mut round) {
                        self.pending[write] = request;
                        write += 1;
                    }
                    continue;
                }
                round.dropped += 1;
                continue;
            }
            if target == Self::NO_CANDIDATE {
                // The owner is the only alive node; keep the deficit.
                self.pending[write] = request;
                write += 1;
                continue;
            }
            match self.contact_once(request, target, byz, &mut round) {
                Contact::Connected => {}
                Contact::Phantom => {
                    // AcceptThenDrop: the handshake "succeeded" but the link
                    // is never held — the slot re-enters the queue with its
                    // original age, so its latency keeps accruing.
                    self.pending[write] = request;
                    write += 1;
                }
                Contact::Refused => match self.config.saturation {
                    SaturationPolicy::RejectRetry => {
                        // Remaining attempts: resample inline. The alive set
                        // does not change during a sweep, so the retry draws
                        // stay uniform over the same population.
                        let mut served = false;
                        for _ in 1..attempts {
                            let Some(retry) = self
                                .graph
                                .sample_member_excluding(&mut self.rng, request.owner.index)
                            else {
                                break;
                            };
                            match self.contact_once(request, retry, byz, &mut round) {
                                Contact::Connected => {
                                    served = true;
                                    break;
                                }
                                Contact::Phantom => break,
                                Contact::Refused => {}
                            }
                        }
                        if !served {
                            self.pending[write] = request;
                            write += 1;
                        }
                    }
                    SaturationPolicy::EvictOldest => {
                        // Only a Byzantine refusal reaches here — honest
                        // saturation always evicts-and-connects under this
                        // policy. Keep the deficit.
                        self.pending[write] = request;
                        write += 1;
                    }
                },
            }
        }
        self.pending.truncate(write);
        self.pending.append(&mut self.overflow);
        round.pending_after = self.pending.len();
        self.stats.absorb(&round);
        self.last_round = round;
    }

    /// One contact attempt against `target`: the Byzantine accept/reject
    /// hooks fire first (a refusal is indistinguishable from saturation to
    /// the requester), then the unchanged honest cap check. `byz` is hoisted
    /// from [`DynamicGraph::tags_enabled`] so the honest-only run pays a
    /// single predictable branch and consumes no extra randomness.
    fn contact_once(
        &mut self,
        request: PendingRequest,
        target: u32,
        byz: bool,
        round: &mut RaesRoundStats,
    ) -> Contact {
        round.requests_sent += 1;
        if byz {
            let tag = self.graph.tag_at(target);
            if tag == Behavior::RefuseAll.tag() {
                round.rejected += 1;
                round.byz_refused += 1;
                return Contact::Refused;
            }
            if tag == Behavior::AcceptThenDrop.tag() {
                round.byz_accept_drops += 1;
                return Contact::Phantom;
            }
        }
        let in_degree = self
            .graph
            .in_request_count_at(target)
            .expect("contacted member is alive");
        if in_degree < self.in_cap {
            self.connect(request, target, round);
            return Contact::Connected;
        }
        match self.config.saturation {
            SaturationPolicy::RejectRetry => {
                round.rejected += 1;
                Contact::Refused
            }
            SaturationPolicy::EvictOldest => {
                self.evict_oldest_in_link(target);
                round.evicted += 1;
                self.connect(request, target, round);
                Contact::Connected
            }
        }
    }

    /// One cap-saturator press: resolve (or re-pick) this saturator's victim
    /// and spend the pending slot on the victim's in-degree cap. Returns
    /// `true` when the out-link was filled (the request leaves the queue);
    /// a refused or phantom press keeps the deficit so the saturator presses
    /// again next round.
    fn press_victim(&mut self, request: PendingRequest, round: &mut RaesRoundStats) -> bool {
        let Some(victim) = self.saturator_victim_for(request.owner.index) else {
            return false;
        };
        debug_assert_ne!(victim.index, request.owner.index);
        let served = matches!(
            self.contact_once(request, victim.index, true, round),
            Contact::Connected
        );
        if let Some(occupancy) = self.graph.in_request_count_at(victim.index) {
            round.victim_cap_occupancy = round.victim_cap_occupancy.max(occupancy);
        }
        served
    }

    /// The victim an alive [`Behavior::CapSaturator`] at slab index
    /// `owner_idx` presses this round. Under [`AdversaryModel::Eclipse`] all
    /// saturators share one victim (re-picked from the adversary substream
    /// when it dies); otherwise each saturator keeps its own, cached per slab
    /// index. Returns `None` when no distinct victim exists this round.
    fn saturator_victim_for(&mut self, owner_idx: u32) -> Option<DenseHandle> {
        if matches!(self.config.adversary, AdversaryModel::Eclipse { .. }) {
            if let Some(victim) = self.eclipse_victim {
                if self.graph.is_current(victim) {
                    // The shared victim may be this very saturator; it then
                    // sits the round out rather than re-target everyone.
                    return (victim.index != owner_idx).then_some(victim);
                }
            }
            let victim = self.pick_victim(owner_idx)?;
            self.eclipse_victim = Some(victim);
            return Some(victim);
        }
        let slot = owner_idx as usize;
        if self.saturator_victims.len() <= slot {
            self.saturator_victims.resize(slot + 1, None);
        }
        if let Some(victim) = self.saturator_victims[slot] {
            if self.graph.is_current(victim) && victim.index != owner_idx {
                return Some(victim);
            }
        }
        let victim = self.pick_victim(owner_idx)?;
        self.saturator_victims[slot] = Some(victim);
        Some(victim)
    }

    /// Picks a fresh victim from the adversary substream: up to 8 uniform
    /// draws, preferring an honest (untagged) node; falls back to the last
    /// tagged candidate rather than give up.
    fn pick_victim(&mut self, owner_idx: u32) -> Option<DenseHandle> {
        let mut fallback = None;
        for _ in 0..8 {
            let idx = self
                .graph
                .sample_member_excluding(&mut self.adv_rng, owner_idx)?;
            let handle = self.graph.handle_at(idx).expect("sampled member is alive");
            if self.graph.tag_at(idx) == 0 {
                return Some(handle);
            }
            fallback = Some(handle);
        }
        fallback
    }

    fn connect(&mut self, request: PendingRequest, target: u32, round: &mut RaesRoundStats) {
        self.graph
            .set_out_slot_at(request.owner.index, request.slot as usize, target)
            .expect("owner alive, slot in range, target alive and distinct");
        round.accepted += 1;
        round.repair_latency_sum += self.rounds - request.since_round;
        // Honest split: an empty tag array reads 0 for every index, so at
        // f = 0 the honest counters equal the aggregates identically.
        if self.graph.tag_at(request.owner.index) == 0 {
            round.honest_accepted += 1;
            round.honest_repair_latency_sum += self.rounds - request.since_round;
        }
    }

    /// Sheds the (approximately) oldest in-link of the saturated `target`:
    /// the pointing slot is cleared and its owner re-enters the queue.
    fn evict_oldest_in_link(&mut self, target: u32) {
        let (victim_owner, victim_slot) = self
            .graph
            .shed_oldest_in_ref(target)
            .expect("a saturated node has in-references");
        let owner = self
            .graph
            .handle_at(victim_owner)
            .expect("victim owner is alive");
        self.overflow.push(PendingRequest {
            owner,
            slot: victim_slot as u32,
            since_round: self.rounds,
        });
    }
}

/// Driver hooks (see [`churn_core::driver`]): the churn loops are the shared
/// ones the baseline models run — by construction, not by convention — and
/// RAES contributes only its protocol-specific spawn (slots enter the pending
/// queue) and kill (dangling slots become protocol work).
impl ChurnHost for RaesModel {
    fn spawn(&mut self, time: f64) -> (NodeId, u32) {
        self.spawn_node_at(time)
    }

    fn kill(&mut self, victim: NodeId, victim_idx: u32, _time: f64) {
        self.kill_node(victim, victim_idx);
    }
}

impl PoissonChurnHost for RaesModel {
    fn draw_jump(&mut self, chain: &BirthDeathChain) -> Jump {
        chain.next_jump(self.graph.len() as u64, &mut self.rng)
    }

    fn sample_victim(&mut self) -> (NodeId, u32) {
        match self.config.victim_policy {
            VictimPolicy::Uniform => {
                let victim_idx = self
                    .graph
                    .sample_member(&mut self.rng)
                    .expect("a death event implies at least one alive node");
                let victim = self
                    .graph
                    .id_at(victim_idx)
                    .expect("sampled member is alive");
                (victim, victim_idx)
            }
            VictimPolicy::OldestFirst => driver::oldest_alive_victim(&self.graph, &mut self.order),
            VictimPolicy::HighestDegree => driver::highest_degree_victim_indexed(&mut self.graph),
        }
    }
}

impl DynamicNetwork for RaesModel {
    fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    fn degree_parameter(&self) -> usize {
        self.config.d
    }

    fn expected_size(&self) -> usize {
        self.config.n
    }

    /// RAES repairs severed links (through the protocol rather than instant
    /// resampling), so it reports [`EdgePolicy::Regenerate`].
    fn edge_policy(&self) -> EdgePolicy {
        EdgePolicy::Regenerate
    }

    fn model_kind(&self) -> ModelKind {
        ModelKind::Raes
    }

    /// `ModelKind::Raes` does not encode the churn driver, so this reports
    /// the configured one — analyses branching on the churn process (e.g.
    /// isolation horizons) then pick the right constants automatically.
    fn has_streaming_churn(&self) -> bool {
        self.config.churn == ChurnDriver::Streaming
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn churn_steps(&self) -> u64 {
        self.churn_steps
    }

    fn birth_time(&self, id: NodeId) -> Option<f64> {
        self.birth_time.get(&id).copied()
    }

    fn newest_node(&self) -> Option<NodeId> {
        self.newest.filter(|id| self.graph.contains(*id))
    }

    fn advance_time_unit(&mut self) -> ChurnSummary {
        self.step_round()
    }

    fn warm_up(&mut self) {
        while !self.is_warm() {
            self.step_round();
        }
    }

    fn is_warm(&self) -> bool {
        match self.config.churn {
            // Same reasoning as the streaming baselines: full size at round n,
            // stationary edge structure once every alive node was born after
            // deaths started, i.e. from round 2n.
            ChurnDriver::Streaming => self.rounds >= 2 * self.config.n as u64,
            ChurnDriver::Poisson => self.time >= 3.0 * self.config.n as f64,
        }
    }

    /// RAES has no event recording; the protocol counters in
    /// [`RaesModel::stats`] are the instrumentation surface.
    fn drain_events(&mut self) -> Vec<ModelEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackKind;

    fn model(n: usize, d: usize, seed: u64) -> RaesModel {
        RaesModel::new(RaesConfig::new(n, d).seed(seed)).expect("valid configuration")
    }

    /// Out-degree plus pending deficit must equal `d` for every alive node,
    /// and the in-degree cap must hold. This is the protocol's core
    /// invariant; the proptest suite exercises it over random parameters.
    fn assert_protocol_invariants(m: &RaesModel) {
        m.graph().assert_invariants();
        let mut deficit: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for request in m.pending_requests() {
            assert!(
                m.graph().is_current(request.owner),
                "pending owners are alive after a full round"
            );
            *deficit.entry(request.owner.index).or_insert(0) += 1;
        }
        for &idx in m.graph().member_indices() {
            let id = m.graph().id_at(idx).unwrap();
            let out = m.graph().out_degree(id).unwrap();
            let pending = deficit.get(&idx).copied().unwrap_or(0);
            assert_eq!(
                out + pending,
                m.degree_parameter(),
                "node {id}: out-degree {out} + pending {pending} must equal d"
            );
            assert!(
                m.graph().in_request_count(id).unwrap() <= m.in_degree_cap(),
                "node {id} exceeds the in-degree cap"
            );
        }
    }

    #[test]
    fn construction_rejects_invalid_configuration() {
        assert!(RaesModel::new(RaesConfig::new(1, 3)).is_err());
        assert!(RaesModel::new(RaesConfig::new(10, 0)).is_err());
        assert!(RaesModel::new(RaesConfig::new(10, 3).capacity_factor(0.5)).is_err());
    }

    #[test]
    fn streaming_population_is_exactly_n_after_warm_up() {
        let mut m = model(50, 3, 0);
        m.warm_up();
        assert!(m.is_warm());
        assert_eq!(m.alive_count(), 50);
        for _ in 0..100 {
            m.step_round();
            assert_eq!(m.alive_count(), 50);
        }
    }

    #[test]
    fn poisson_population_concentrates_near_n() {
        let mut m =
            RaesModel::new(RaesConfig::new(300, 4).churn(ChurnDriver::Poisson).seed(5)).unwrap();
        m.warm_up();
        assert!(m.is_warm());
        let size = m.alive_count() as f64;
        assert!(size > 0.7 * 300.0 && size < 1.3 * 300.0);
    }

    #[test]
    fn invariants_hold_throughout_evolution_on_both_drivers() {
        for churn in [ChurnDriver::Streaming, ChurnDriver::Poisson] {
            for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
                let mut m = RaesModel::new(
                    RaesConfig::new(40, 3)
                        .churn(churn)
                        .saturation(policy)
                        .seed(7),
                )
                .unwrap();
                for _ in 0..150 {
                    m.step_round();
                    assert_protocol_invariants(&m);
                }
            }
        }
    }

    #[test]
    fn deficits_are_repaired_quickly_with_slack_capacity() {
        let mut m = model(100, 4, 3);
        m.warm_up();
        // With c = 1.5 the accept capacity has 50% slack, so the pending
        // backlog stays tiny: after any round at most a few requests wait.
        let mut max_pending = 0;
        for _ in 0..200 {
            m.step_round();
            max_pending = max_pending.max(m.pending_requests().len());
        }
        assert!(
            max_pending <= 3 * 4,
            "pending backlog {max_pending} should stay near zero with slack capacity"
        );
        let stats = m.stats();
        assert!(stats.requests_sent > 0 && stats.accepted > 0);
        assert!(
            stats.mean_repair_latency() < 1.0,
            "mean repair latency {} should be well below one round",
            stats.mean_repair_latency()
        );
    }

    #[test]
    fn in_degree_never_exceeds_cap_even_at_tight_capacity() {
        // c = 1: capacity exactly equals demand, so saturation is common and
        // the cap is genuinely exercised.
        for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
            let mut m = RaesModel::new(
                RaesConfig::new(60, 4)
                    .capacity_factor(1.0)
                    .saturation(policy)
                    .seed(11),
            )
            .unwrap();
            let mut saw_saturation = false;
            for _ in 0..240 {
                m.step_round();
                assert!(m.max_in_degree() <= m.in_degree_cap());
                let last = m.last_round_stats();
                saw_saturation |= last.rejected > 0 || last.evicted > 0;
            }
            assert!(
                saw_saturation,
                "{policy}: tight capacity must trigger the saturation path"
            );
            assert_protocol_invariants(&m);
        }
    }

    #[test]
    fn evict_oldest_keeps_out_degree_accounting_consistent() {
        let mut m = RaesModel::new(
            RaesConfig::new(40, 4)
                .capacity_factor(1.0)
                .saturation(SaturationPolicy::EvictOldest)
                .seed(2),
        )
        .unwrap();
        for _ in 0..200 {
            m.step_round();
        }
        assert!(m.stats().evicted > 0, "evictions must actually happen");
        assert_eq!(m.stats().rejected, 0, "evict-oldest never rejects");
        assert_protocol_invariants(&m);
    }

    #[test]
    fn same_seed_gives_identical_evolution() {
        for churn in [ChurnDriver::Streaming, ChurnDriver::Poisson] {
            let config = RaesConfig::new(50, 3).churn(churn).seed(99);
            let mut a = RaesModel::new(config.clone()).unwrap();
            let mut b = RaesModel::new(config).unwrap();
            for _ in 0..150 {
                assert_eq!(a.step_round(), b.step_round());
            }
            assert_eq!(a.alive_ids(), b.alive_ids());
            assert_eq!(a.pending_requests(), b.pending_requests());
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.snapshot(), b.snapshot());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = model(50, 3, 1);
        let mut b = model(50, 3, 2);
        for _ in 0..120 {
            a.step_round();
            b.step_round();
        }
        assert_ne!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn adversarial_victim_policies_keep_protocol_invariants() {
        // The robustness claim of the RAES line of work: the bounded-degree
        // structure survives an adaptive adversary spending the same death
        // budget on chosen victims.
        for policy in [VictimPolicy::OldestFirst, VictimPolicy::HighestDegree] {
            let mut m = RaesModel::new(
                RaesConfig::new(60, 4)
                    .churn(ChurnDriver::Poisson)
                    .victim_policy(policy)
                    .seed(31),
            )
            .unwrap();
            for _ in 0..200 {
                m.step_round();
                assert!(m.max_in_degree() <= m.in_degree_cap(), "{policy}");
            }
            assert_protocol_invariants(&m);
        }
        // Oldest-first deaths hit the oldest alive node: every victim is
        // older than all survivors at its death instant, which over a run
        // means victims die in birth order.
        let mut m = RaesModel::new(
            RaesConfig::new(50, 3)
                .churn(ChurnDriver::Poisson)
                .victim_policy(VictimPolicy::OldestFirst)
                .seed(32),
        )
        .unwrap();
        let mut died = Vec::new();
        for _ in 0..200 {
            died.extend(m.step_round().deaths);
        }
        assert!(!died.is_empty());
        let mut sorted = died.clone();
        sorted.sort_unstable();
        assert_eq!(died, sorted, "victims must die oldest-first");

        // Streaming churn rejects degree-targeted deaths at validation.
        assert!(matches!(
            RaesModel::new(RaesConfig::new(50, 3).victim_policy(VictimPolicy::HighestDegree)),
            Err(churn_core::ModelError::UnsupportedVictimPolicy { .. })
        ));
        // …but accepts oldest-first as a no-op (that is what streaming does).
        assert!(
            RaesModel::new(RaesConfig::new(50, 3).victim_policy(VictimPolicy::OldestFirst)).is_ok()
        );
    }

    #[test]
    fn attempts_per_round_retries_rejections_within_the_round() {
        // attempts = 0 is rejected at validation.
        assert!(matches!(
            RaesModel::new(RaesConfig::new(50, 3).attempts_per_round(0)),
            Err(churn_core::ModelError::InvalidAttempts { requested: 0 })
        ));
        // At c = 1.0 capacity exactly equals demand, so rejections are
        // common; a retry budget must actually spend extra contacts inside
        // the round while every protocol invariant keeps holding.
        let mut m = RaesModel::new(
            RaesConfig::new(60, 4)
                .capacity_factor(1.0)
                .attempts_per_round(4)
                .seed(13),
        )
        .unwrap();
        let mut saw_retry = false;
        for _ in 0..240 {
            m.step_round();
            let last = m.last_round_stats();
            // More contacts than queue entries in one sweep proves an
            // in-round retry happened (a single-attempt sweep never exceeds
            // its queue length).
            saw_retry |= last.requests_sent > last.pending_before;
            assert!(m.max_in_degree() <= m.in_degree_cap());
            assert_eq!(
                last.accepted + last.dropped,
                last.pending_before + last.evicted - last.pending_after,
                "queue accounting must balance with retries"
            );
        }
        assert!(saw_retry, "tight capacity with a retry budget must retry");
        assert_protocol_invariants(&m);
        // The default budget of 1 performs the classic sweep: the request
        // count per round never exceeds the queue length.
        let mut classic = RaesModel::new(RaesConfig::new(60, 4).capacity_factor(1.0).seed(13))
            .expect("valid configuration");
        for _ in 0..240 {
            classic.step_round();
            let last = classic.last_round_stats();
            assert!(last.requests_sent <= last.pending_before);
        }
    }

    #[test]
    fn flooding_completes_over_raes_topologies() {
        use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
        let mut m = model(256, 8, 4);
        m.warm_up();
        let record = run_flooding(
            &mut m,
            FloodingSource::NextToJoin,
            &FloodingConfig::default(),
        );
        assert!(
            record.outcome.is_complete(),
            "RAES keeps the network connected: {:?}",
            record.outcome
        );
        assert!(record.outcome.rounds().unwrap() <= 40);
    }

    #[test]
    fn churn_process_analyses_pick_the_configured_driver() {
        // ModelKind::Raes is neither is_streaming nor is_poisson; the
        // churn-process hook must report the configured driver so analyses
        // like the isolation horizon use the right constants.
        let streaming = model(30, 3, 0);
        assert!(streaming.has_streaming_churn());
        assert_eq!(
            churn_core::isolated::default_isolation_horizon(&streaming),
            30
        );
        let poisson = RaesModel::new(RaesConfig::new(30, 3).churn(ChurnDriver::Poisson)).unwrap();
        assert!(!poisson.has_streaming_churn());
        assert_eq!(
            churn_core::isolated::default_isolation_horizon(&poisson),
            150
        );
    }

    #[test]
    fn dynamic_network_surface_is_consistent() {
        let mut m = model(30, 3, 6);
        assert_eq!(m.model_kind(), ModelKind::Raes);
        assert_eq!(m.degree_parameter(), 3);
        assert_eq!(m.expected_size(), 30);
        assert!(m.edge_policy().regenerates());
        assert!(m.drain_events().is_empty());
        m.warm_up();
        let newest = m.newest_node().unwrap();
        assert_eq!(m.age(newest), Some(0.0));
        for id in m.alive_ids() {
            let birth = m.birth_time(id).unwrap();
            assert!(birth >= 0.0 && birth <= m.time());
        }
        assert!(m.birth_time(NodeId::new(u64::MAX)).is_none());
        let before = m.churn_steps();
        m.advance_time_unit();
        assert!(m.churn_steps() > before);
    }

    #[test]
    fn round_stats_are_self_consistent() {
        let mut m = model(80, 4, 8);
        m.warm_up();
        for _ in 0..50 {
            m.step_round();
            let last = m.last_round_stats();
            assert_eq!(last.round, m.rounds());
            // Accepted and dropped entries leave the queue, evictions add
            // one entry each, rejections stay.
            assert_eq!(
                last.accepted + last.dropped,
                last.pending_before + last.evicted - last.pending_after,
                "queue length accounting must balance"
            );
            assert!(last.requests_sent <= last.pending_before);
        }
    }

    #[test]
    fn zero_fraction_adversary_is_stream_identical_to_none() {
        // The ISSUE's hard requirement: f = 0 must be RNG-stream-identical to
        // the un-adversarial model, for every adversary shape, on both churn
        // drivers and both saturation policies. The adversary substream is
        // drawn at every spawn, but with fraction 0 it never corrupts, so no
        // tag is written and every hot-path branch stays on its honest arm.
        let zeroes = [
            AdversaryModel::Uniform {
                fraction: 0.0,
                attack: AttackKind::RefuseAll,
            },
            AdversaryModel::Eclipse {
                fraction: 0.0,
                attack: AttackKind::CapSaturator,
            },
            AdversaryModel::JoinFlood {
                fraction: 0.0,
                cohort: 4,
                attack: AttackKind::AcceptThenDrop,
            },
        ];
        for churn in [ChurnDriver::Streaming, ChurnDriver::Poisson] {
            for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
                let base = RaesConfig::new(50, 3)
                    .churn(churn)
                    .saturation(policy)
                    .seed(99);
                let mut honest = RaesModel::new(base.clone()).unwrap();
                let mut adversarial: Vec<RaesModel> = zeroes
                    .iter()
                    .map(|&adv| RaesModel::new(base.clone().adversary(adv)).unwrap())
                    .collect();
                for _ in 0..150 {
                    let step = honest.step_round();
                    for m in &mut adversarial {
                        assert_eq!(m.step_round(), step, "{churn:?}/{policy:?}");
                    }
                }
                for m in &adversarial {
                    assert_eq!(m.alive_ids(), honest.alive_ids());
                    assert_eq!(m.pending_requests(), honest.pending_requests());
                    assert_eq!(m.stats(), honest.stats());
                    assert_eq!(m.snapshot(), honest.snapshot());
                    assert_eq!(m.graph().tagged_member_count(), 0);
                }
            }
        }
    }

    #[test]
    fn honest_counters_mirror_aggregates_without_corruption() {
        // Satellite invariant: with no corrupted node the per-behavior
        // counters must sum to the existing aggregates — exactly, per round
        // and cumulatively — for all saturation policies × both drivers.
        for churn in [ChurnDriver::Streaming, ChurnDriver::Poisson] {
            for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
                let mut m = RaesModel::new(
                    RaesConfig::new(60, 4)
                        .churn(churn)
                        .saturation(policy)
                        .capacity_factor(1.0)
                        .seed(21),
                )
                .unwrap();
                for _ in 0..150 {
                    m.step_round();
                    let last = m.last_round_stats();
                    assert_eq!(last.honest_accepted, last.accepted);
                    assert_eq!(last.honest_repair_latency_sum, last.repair_latency_sum);
                    assert_eq!(last.byz_refused, 0);
                    assert_eq!(last.byz_accept_drops, 0);
                    assert_eq!(last.byz_requests_sent, 0);
                    assert_eq!(last.victim_cap_occupancy, 0);
                }
                let stats = m.stats();
                assert_eq!(stats.honest_accepted, stats.accepted);
                assert_eq!(stats.honest_repair_latency_sum, stats.repair_latency_sum);
                assert_eq!(stats.max_victim_cap_occupancy, 0);
                assert_eq!(
                    stats.mean_honest_repair_latency(),
                    stats.mean_repair_latency()
                );
            }
        }
    }

    #[test]
    fn refuse_all_burns_retries_and_is_counted() {
        let adv = AdversaryModel::Uniform {
            fraction: 0.3,
            attack: AttackKind::RefuseAll,
        };
        for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
            let base = RaesConfig::new(60, 4).saturation(policy).seed(17);
            let mut baseline = RaesModel::new(base.clone()).unwrap();
            let mut m = RaesModel::new(base.adversary(adv)).unwrap();
            for _ in 0..200 {
                baseline.step_round();
                m.step_round();
            }
            assert_protocol_invariants(&m);
            assert!(m.graph().tagged_member_count() > 0);
            let stats = m.stats();
            assert!(stats.byz_refused > 0, "refusals must be counted");
            assert!(
                stats.byz_refused <= stats.rejected,
                "Byzantine refusals are a subset of rejections"
            );
            assert!(stats.rejected > baseline.stats().rejected);
            // Refusals push honest repairs into later rounds: latency rises
            // above the (near-zero) slack-capacity baseline.
            assert!(stats.mean_repair_latency() > baseline.stats().mean_repair_latency());
        }
    }

    #[test]
    fn accept_then_drop_keeps_phantom_requests_queued_and_aging() {
        let adv = AdversaryModel::Uniform {
            fraction: 0.3,
            attack: AttackKind::AcceptThenDrop,
        };
        let base = RaesConfig::new(60, 4).seed(23);
        let mut baseline = RaesModel::new(base.clone()).unwrap();
        let mut m = RaesModel::new(base.adversary(adv)).unwrap();
        for _ in 0..200 {
            baseline.step_round();
            m.step_round();
            let last = m.last_round_stats();
            // A phantom handshake keeps its entry in place, so the queue
            // balance identity must hold without any new term.
            assert_eq!(
                last.accepted + last.dropped,
                last.pending_before + last.evicted - last.pending_after,
                "queue accounting must balance under phantom accepts"
            );
        }
        assert_protocol_invariants(&m);
        let stats = m.stats();
        assert!(
            stats.byz_accept_drops > 0,
            "phantom accepts must be counted"
        );
        // The requester never sees a rejection, yet its slot keeps aging:
        // latency rises above baseline while the rejection counter does not.
        assert!(stats.mean_repair_latency() > baseline.stats().mean_repair_latency());
    }

    #[test]
    fn cap_saturator_presses_a_victim_to_its_cap() {
        for adv in [
            AdversaryModel::Uniform {
                fraction: 0.25,
                attack: AttackKind::CapSaturator,
            },
            AdversaryModel::Eclipse {
                fraction: 0.25,
                attack: AttackKind::CapSaturator,
            },
        ] {
            let mut m = RaesModel::new(RaesConfig::new(60, 4).adversary(adv).seed(29)).unwrap();
            for _ in 0..300 {
                m.step_round();
            }
            assert_protocol_invariants(&m);
            let stats = m.stats();
            assert!(
                stats.byz_requests_sent > 0,
                "saturators must press: {adv:?}"
            );
            assert_eq!(
                stats.max_victim_cap_occupancy,
                m.in_degree_cap() as u64,
                "sustained pressing must fill the victim's cap exactly: {adv:?}"
            );
            if matches!(adv, AdversaryModel::Eclipse { .. }) {
                assert!(m.eclipse_victim.is_some(), "eclipse shares one victim");
            }
        }
    }

    #[test]
    fn silent_on_flood_is_protocol_honest_but_tagged() {
        // SilentOnFlood only poisons the flooding overlay (covered by the
        // churn-core engine tests); on the repair path it is bit-for-bit the
        // honest protocol even though tags are set and the Byzantine branches
        // are live.
        let adv = AdversaryModel::Uniform {
            fraction: 0.3,
            attack: AttackKind::SilentOnFlood,
        };
        let base = RaesConfig::new(60, 4).seed(31);
        let mut honest = RaesModel::new(base.clone()).unwrap();
        let mut silent = RaesModel::new(base.adversary(adv)).unwrap();
        for _ in 0..200 {
            assert_eq!(silent.step_round(), honest.step_round());
        }
        assert_eq!(silent.alive_ids(), honest.alive_ids());
        assert_eq!(silent.snapshot(), honest.snapshot());
        assert!(silent.graph().tagged_member_count() > 0);
        let stats = silent.stats();
        assert_eq!(stats.byz_refused, 0);
        assert_eq!(stats.byz_accept_drops, 0);
        assert_eq!(stats.byz_requests_sent, 0);
        assert_eq!(stats.accepted, honest.stats().accepted);
        assert!(
            stats.honest_accepted < stats.accepted,
            "repairs owned by corrupted nodes are not honest accepts"
        );
    }

    #[test]
    fn join_flood_corrupts_in_cohort_bursts() {
        let adv = AdversaryModel::JoinFlood {
            fraction: 0.2,
            cohort: 5,
            attack: AttackKind::RefuseAll,
        };
        let mut m = RaesModel::new(RaesConfig::new(60, 4).adversary(adv).seed(37)).unwrap();
        let mut run = 0usize;
        let mut max_run = 0usize;
        for _ in 0..600 {
            let step = m.step_round();
            for &id in &step.births {
                let idx = m.graph().dense_index_of(id).expect("newborn is alive");
                if m.graph().tag_at(idx) != 0 {
                    run += 1;
                    max_run = max_run.max(run);
                } else {
                    run = 0;
                }
            }
        }
        assert!(
            max_run >= 5,
            "a fired burst corrupts a whole cohort of consecutive spawns (max run {max_run})"
        );
        assert!(m.stats().byz_refused > 0);
        assert_protocol_invariants(&m);
    }
}
