//! Model-based property test: the calendar-queue [`EventQueue`] against a
//! straightforward sorted-scan reference over arbitrary interleavings of
//! schedule / cancel / pop — including same-timestamp ties (FIFO contract),
//! cancellations of live, popped and already-cancelled tokens, and slot
//! reuse across generations (a stale token must never cancel the event that
//! inherited its slot).

use churn_stochastic::events::EventToken;
use churn_stochastic::EventQueue;
use proptest::prelude::*;

/// One step of the interpreted operation sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + DELTAS[i]`; small quantized offsets force plenty
    /// of exact timestamp collisions.
    Schedule(usize),
    /// Cancel the `i`-th token issued so far (any lifecycle state).
    Cancel(usize),
    Pop,
}

const DELTAS: [f64; 5] = [0.0, 0.0, 0.5, 0.5, 1.25];

/// Reference entry: the total order is (time, seq); `alive` tracks whether
/// the event is still cancellable/poppable.
#[derive(Debug, Clone)]
struct ModelEntry {
    time: f64,
    seq: u64,
    alive: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Uniform union; schedule is listed twice so runs trend queue-filling.
    prop_oneof![
        (0usize..DELTAS.len()).prop_map(Op::Schedule),
        (0usize..DELTAS.len()).prop_map(Op::Schedule),
        (0usize..256).prop_map(Op::Cancel),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_queue_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut tokens: Vec<EventToken> = Vec::new();
        let mut now = 0.0f64;

        for op in ops {
            match op {
                Op::Schedule(delta) => {
                    let time = now + DELTAS[delta];
                    let token = queue.schedule(time, tokens.len());
                    tokens.push(token);
                    model.push(ModelEntry { time, seq: model.len() as u64, alive: true });
                }
                Op::Cancel(i) => {
                    if tokens.is_empty() {
                        continue;
                    }
                    let i = i % tokens.len();
                    let expected = model[i].alive;
                    if expected {
                        model[i].alive = false;
                    }
                    prop_assert_eq!(queue.cancel(tokens[i]), expected);
                }
                Op::Pop => {
                    let best = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.alive)
                        .min_by(|(_, a), (_, b)| {
                            (a.time, a.seq).partial_cmp(&(b.time, b.seq)).expect("finite")
                        })
                        .map(|(idx, e)| (e.time, idx));
                    let peeked = queue.peek_time();
                    prop_assert_eq!(peeked.map(f64::to_bits), best.map(|(t, _)| t.to_bits()));
                    let popped = queue.pop();
                    match best {
                        Some((time, idx)) => {
                            model[idx].alive = false;
                            now = time;
                            let (pop_time, payload) =
                                popped.expect("model has a live event, queue must too");
                            prop_assert_eq!(pop_time.to_bits(), time.to_bits());
                            prop_assert_eq!(payload, idx);
                            prop_assert_eq!(queue.now().to_bits(), time.to_bits());
                        }
                        None => prop_assert!(popped.is_none()),
                    }
                }
            }
            let live = model.iter().filter(|e| e.alive).count();
            prop_assert_eq!(queue.len(), live);
        }

        // Drain: the survivors must surface in exact (time, seq) order.
        let mut survivors: Vec<(u64, u64, usize)> = model
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(idx, e)| (e.time.to_bits(), e.seq, idx))
            .collect();
        survivors.sort_unstable();
        for &(time_bits, _, idx) in &survivors {
            let (time, payload) = queue.pop().expect("survivor still queued");
            prop_assert_eq!(time.to_bits(), time_bits);
            prop_assert_eq!(payload, idx);
        }
        prop_assert!(queue.pop().is_none());
        prop_assert!(queue.is_empty());
    }
}
