//! Property-based tests for the stochastic substrate.

use churn_stochastic::distributions::{Exponential, Geometric, Poisson};
use churn_stochastic::process::BirthDeathChain;
use churn_stochastic::rng::{derive_seed, seeded_rng};
use churn_stochastic::stats::{entropy, kl_divergence, linear_fit, quantile, OnlineStats};
use churn_stochastic::EventQueue;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford accumulation matches the two-pass mean and variance formulas for
    /// arbitrary inputs.
    #[test]
    fn online_stats_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let stats: OnlineStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(stats.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.min(), min);
        prop_assert_eq!(stats.max(), max);
    }

    /// Merging accumulators over any split equals accumulating the whole slice.
    #[test]
    fn online_stats_merge_is_associative_with_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let pooled: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..split].iter().copied().collect();
        let right: OnlineStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), pooled.count());
        prop_assert!((left.mean() - pooled.mean()).abs() < 1e-8);
        prop_assert!((left.variance() - pooled.variance()).abs() < 1e-6);
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_are_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let q25 = quantile(&xs, 0.25).unwrap();
        let q50 = quantile(&xs, 0.5).unwrap();
        let q75 = quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q75 + 1e-12);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q25 >= min - 1e-12 && q75 <= max + 1e-12);
    }

    /// KL divergence between valid distributions is non-negative (Theorem A.3)
    /// and zero exactly for identical distributions.
    #[test]
    fn kl_divergence_is_nonnegative(weights in proptest::collection::vec(0.01f64..10.0, 2..20),
                                    other in proptest::collection::vec(0.01f64..10.0, 2..20)) {
        let len = weights.len().min(other.len());
        let normalize = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect()
        };
        let p = normalize(&weights[..len]);
        let q = normalize(&other[..len]);
        let d = kl_divergence(&p, &q).unwrap();
        prop_assert!(d >= -1e-12, "KL divergence must be non-negative, got {d}");
        prop_assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
        // Entropy of a valid pmf is within [0, log2(len)].
        let h = entropy(&p).unwrap();
        prop_assert!(h >= -1e-12 && h <= (len as f64).log2() + 1e-9);
    }

    /// The least-squares fit exactly recovers data generated from a line.
    #[test]
    fn linear_fit_recovers_planted_line(slope in -100.0f64..100.0, intercept in -100.0f64..100.0,
                                        xs in proptest::collection::hash_set(-1000i32..1000, 2..30)) {
        let points: Vec<(f64, f64)> = xs.iter().map(|&x| (x as f64, slope * x as f64 + intercept)).collect();
        let fit = linear_fit(&points).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    /// Exponential samples are positive and their CDF is a valid distribution
    /// function.
    #[test]
    fn exponential_samples_positive(rate in 0.001f64..1000.0, seed in any::<u64>()) {
        let dist = Exponential::new(rate).unwrap();
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
        prop_assert!(dist.cdf(0.0) <= dist.cdf(1.0));
        prop_assert!(dist.cdf(1.0) <= dist.cdf(10.0));
        prop_assert!((dist.cdf(f64::MAX) - 1.0).abs() < 1e-9);
    }

    /// Poisson PMFs sum to (nearly) one for moderate means.
    #[test]
    fn poisson_pmf_is_a_distribution(mean in 0.1f64..20.0) {
        let dist = Poisson::new(mean).unwrap();
        let total: f64 = (0..200).map(|k| dist.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Geometric samples are at least 1.
    #[test]
    fn geometric_samples_at_least_one(p in 0.01f64..1.0, seed in any::<u64>()) {
        let dist = Geometric::new(p).unwrap();
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            prop_assert!(dist.sample(&mut rng) >= 1);
        }
    }

    /// The jump chain's birth and death probabilities always sum to one and the
    /// specific-node death probability is at most the total death probability.
    #[test]
    fn jump_chain_probabilities_are_consistent(
        n in 1.0f64..1e6,
        alive in 0u64..2_000_000,
    ) {
        let chain = BirthDeathChain::new(1.0, 1.0 / n);
        let birth = chain.birth_probability(alive);
        let death = chain.death_probability(alive);
        prop_assert!((birth + death - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&birth));
        prop_assert!((0.0..=1.0).contains(&death));
        if alive > 0 {
            prop_assert!(chain.specific_death_probability(alive) <= death + 1e-15);
        }
    }

    /// The event queue releases events in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_orders_events(times in proptest::collection::vec(0.0f64..1e6, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Seed derivation is deterministic and sensitive to both base and stream.
    #[test]
    fn seed_derivation_is_a_function(base in any::<u64>(), stream in any::<u64>()) {
        prop_assert_eq!(derive_seed(base, stream), derive_seed(base, stream));
        prop_assert_eq!(seeded_rng(base).gen::<u64>(), seeded_rng(base).gen::<u64>());
    }
}

use rand::Rng;
