//! A generic future-event queue for discrete-event simulation.
//!
//! The Poisson models schedule two kinds of future events — node arrivals and
//! node deaths — and always process the earliest one next (Definition 4.5's jump
//! chain is exactly the sequence of these processing instants). [`EventQueue`]
//! provides that primitive: a binary heap keyed by `f64` time with stable FIFO
//! tie-breaking and O(log n) cancellation by token.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// Token identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventToken(u64);

impl EventToken {
    /// Raw value of the token (mostly useful for logging).
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct HeapEntry<E> {
    time: f64,
    sequence: u64,
    token: EventToken,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want earliest time first, then FIFO.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// A future-event list ordered by event time.
///
/// Events are scheduled with [`schedule`](Self::schedule) and retrieved in
/// non-decreasing time order with [`pop`](Self::pop). Cancellation is lazy: a
/// cancelled token is remembered and its event silently skipped when it
/// surfaces.
///
/// # Example
///
/// ```
/// use churn_stochastic::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(3.0, "death of v1");
/// let arrival = queue.schedule(1.0, "arrival of v2");
/// queue.schedule(2.0, "death of v0");
/// queue.cancel(arrival);
/// let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!["death of v0", "death of v1"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: std::collections::HashSet<EventToken>,
    next_sequence: u64,
    next_token: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_sequence: 0,
            next_token: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event (0 before the first pop).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of scheduled (not yet popped, not cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Returns `true` when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at absolute time `time` and returns a cancellation
    /// token.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies in the past (before [`Self::now`]).
    pub fn schedule(&mut self, time: f64, payload: E) -> EventToken {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {}",
            self.now
        );
        let token = EventToken(self.next_token);
        self.next_token += 1;
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(HeapEntry {
            time,
            sequence,
            token,
            payload,
        });
        token
    }

    /// Cancels a scheduled event. Returns `true` if the token was live (not
    /// already popped or cancelled). Cancelling an unknown token is a no-op.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_token {
            return false;
        }
        self.cancelled.insert(token)
    }

    /// Pops the earliest live event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.token) {
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<f64> {
        // Lazily discard cancelled entries from the top of the heap.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.token) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.token);
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_returns_events_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 5);
        q.schedule(1.0, 1);
        q.schedule(3.0, 3);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancellation_removes_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancellation reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventToken(99)));
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn scheduling_nan_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn peek_time_skips_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
