//! A generic future-event queue for discrete-event simulation.
//!
//! The Poisson models schedule two kinds of future events — node arrivals and
//! node deaths — and always process the earliest one next (Definition 4.5's jump
//! chain is exactly the sequence of these processing instants). [`EventQueue`]
//! provides that primitive as a calendar queue: events hash into day-wide time
//! buckets, a persistent cursor walks the calendar forward, and cancellation
//! resolves through generation-stamped payload slots — O(1) amortized
//! schedule, pop and cancel, against the O(log n) of the binary heap this
//! replaced.
//!
//! # Ordering contract
//!
//! The total order is ascending `(time, sequence)` where `sequence` is a
//! monotone per-queue counter stamped at [`schedule`](EventQueue::schedule)
//! time: earliest time first, FIFO among equal times. No two events compare
//! equal, so the pop order is unique — the determinism suites pin it bit for
//! bit across implementations.
//!
//! # Calendar layout
//!
//! The calendar keeps `nbuckets` (a power of two) sorted deques. An event at
//! time `t` lives on day `⌊t / width⌋` in bucket `day & (nbuckets − 1)`; all
//! events of one day share one bucket, and each bucket holds every
//! `nbuckets`-th day. Buckets stay sorted by `(time, sequence)`: the common
//! monotone-schedule case appends at the back in O(1), out-of-order inserts
//! binary-search their position. The pop cursor (`current_day`) only moves
//! forward past days proven empty; when a whole rotation of the calendar
//! finds nothing (sparse far-future events), a direct scan of the bucket
//! fronts jumps the cursor to the next occupied day. The calendar resizes
//! (and re-derives `width` from the live span) when the population strays
//! past twice or below a quarter of the bucket count — deterministically,
//! since the trigger depends only on the operation sequence.

use std::cell::RefCell;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Token identifying a scheduled event, usable to cancel it.
///
/// The low 32 bits index the event's payload slot; the high 32 bits carry
/// the slot's generation, so a token goes stale the moment its event is
/// popped or its cancellation is reclaimed — cancelling a stale token is a
/// detected no-op, never a corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventToken(u64);

impl EventToken {
    /// Raw value of the token (mostly useful for logging).
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One calendar entry: the ordering key plus the payload's slot index.
/// Payloads live out-of-line in the slot arena so entries stay `Copy` and
/// bucket moves never touch them.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    sequence: u64,
    slot: u32,
}

impl Entry {
    fn key(&self) -> (f64, u64) {
        (self.time, self.sequence)
    }
}

/// Payload slot state. `Cancelled` keeps the slot reserved until the
/// matching calendar entry surfaces at a bucket front and is reclaimed.
#[derive(Debug)]
enum SlotState<E> {
    Occupied(E),
    Cancelled,
    Free,
}

#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    state: SlotState<E>,
}

/// Fewest buckets a calendar ever holds.
const MIN_BUCKETS: usize = 4;

/// Most recycled bucket vectors kept per thread.
const BUCKET_POOL_CAP: usize = 8;

thread_local! {
    /// Bucket storage recycled across queue instances on this thread. Grid
    /// sweeps build one engine (one queue) per cell, and the deque
    /// capacities are the dominant per-cell allocation — reusing them makes
    /// steady-state cell setup allocation-free.
    static BUCKET_POOL: RefCell<Vec<Vec<VecDeque<Entry>>>> = const { RefCell::new(Vec::new()) };
}

/// A future-event list ordered by event time.
///
/// Events are scheduled with [`schedule`](Self::schedule) and retrieved in
/// non-decreasing time order with [`pop`](Self::pop). Cancellation is lazy: a
/// cancelled event's slot is marked and its calendar entry silently skipped
/// (and the slot reclaimed) when it surfaces.
///
/// # Example
///
/// ```
/// use churn_stochastic::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(3.0, "death of v1");
/// let arrival = queue.schedule(1.0, "arrival of v2");
/// queue.schedule(2.0, "death of v0");
/// queue.cancel(arrival);
/// let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!["death of v0", "death of v1"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<VecDeque<Entry>>,
    /// Day width in simulated time units (see the module docs).
    width: f64,
    /// The pop cursor: no stored entry lives on an earlier day.
    current_day: u64,
    /// Entries in the calendar, including cancelled ones awaiting reclaim.
    stored: usize,
    /// Entries neither popped nor cancelled — the queue's logical length.
    live: usize,
    slots: Vec<Slot<E>>,
    free_slots: Vec<u32>,
    next_sequence: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time 0.
    #[must_use]
    pub fn new() -> Self {
        let buckets = BUCKET_POOL
            .try_with(|pool| pool.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_else(|| (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect());
        EventQueue {
            buckets,
            width: 1.0,
            current_day: 0,
            stored: 0,
            live: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_sequence: 0,
            now: 0.0,
        }
    }

    /// The time of the most recently popped event (0 before the first pop).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of scheduled (not yet popped, not cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn day_of(&self, time: f64) -> u64 {
        // The as-cast saturates at u64::MAX for out-of-range days, which
        // preserves monotonicity — all that bucket selection needs.
        (time / self.width) as u64
    }

    fn bucket_of(&self, day: u64) -> usize {
        (day & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedules `payload` at absolute time `time` and returns a cancellation
    /// token.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies in the past (before [`Self::now`]).
    pub fn schedule(&mut self, time: f64, payload: E) -> EventToken {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {}",
            self.now
        );
        let slot = match self.free_slots.pop() {
            Some(idx) => {
                self.slots[idx as usize].state = SlotState::Occupied(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("fewer than 2^32 pending events");
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Occupied(payload),
                });
                idx
            }
        };
        let token =
            EventToken((u64::from(self.slots[slot as usize].generation) << 32) | u64::from(slot));
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.insert_entry(Entry {
            time,
            sequence,
            slot,
        });
        self.live += 1;
        if self.stored > 2 * self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        }
        token
    }

    /// Places an entry in its day's bucket, keeping the bucket sorted by
    /// `(time, sequence)`. Monotone schedules (the hot path — every latency
    /// draw lands at or after `now`, and sequences only grow) append at the
    /// back without a search.
    fn insert_entry(&mut self, entry: Entry) {
        let day = self.day_of(entry.time);
        if day < self.current_day {
            self.current_day = day;
        }
        let index = self.bucket_of(day);
        let bucket = &mut self.buckets[index];
        match bucket.back() {
            Some(back) if back.key() > entry.key() => {
                let pos = bucket.partition_point(|e| e.key() < entry.key());
                bucket.insert(pos, entry);
            }
            _ => bucket.push_back(entry),
        }
        self.stored += 1;
    }

    /// Cancels a scheduled event. Returns `true` if the token was live (not
    /// already popped or cancelled). Cancelling an unknown or stale token is
    /// a detected no-op.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.slot()) else {
            return false;
        };
        if slot.generation != token.generation() {
            return false;
        }
        match slot.state {
            SlotState::Occupied(_) => {
                slot.state = SlotState::Cancelled;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Retires a slot whose calendar entry has been removed, bumping the
    /// generation so outstanding tokens for it go stale.
    fn retire_slot(&mut self, slot: u32) -> SlotState<E> {
        let cell = &mut self.slots[slot as usize];
        let state = std::mem::replace(&mut cell.state, SlotState::Free);
        cell.generation = cell.generation.wrapping_add(1);
        self.free_slots.push(slot);
        state
    }

    /// Advances the cursor and reclaims cancelled fronts until the earliest
    /// live entry sits at the front of its day's bucket; returns that bucket
    /// index, or `None` when no live events remain.
    fn settle(&mut self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        loop {
            // Walk at most one full rotation of the calendar day by day.
            for _ in 0..self.buckets.len() {
                let bucket = self.bucket_of(self.current_day);
                while let Some(front) = self.buckets[bucket].front() {
                    if self.day_of(front.time) != self.current_day {
                        break;
                    }
                    let slot = front.slot;
                    if matches!(self.slots[slot as usize].state, SlotState::Occupied(_)) {
                        return Some(bucket);
                    }
                    self.buckets[bucket].pop_front();
                    self.stored -= 1;
                    self.retire_slot(slot);
                }
                self.current_day += 1;
            }
            // A whole rotation was empty: the next event is more than
            // `nbuckets` days out. Jump the cursor straight to the earliest
            // occupied day by scanning the bucket fronts.
            let mut earliest: Option<(f64, u64)> = None;
            for bucket in 0..self.buckets.len() {
                while let Some(front) = self.buckets[bucket].front() {
                    let slot = front.slot;
                    if matches!(self.slots[slot as usize].state, SlotState::Occupied(_)) {
                        if earliest.is_none_or(|best| front.key() < best) {
                            earliest = Some(front.key());
                        }
                        break;
                    }
                    self.buckets[bucket].pop_front();
                    self.stored -= 1;
                    self.retire_slot(slot);
                }
            }
            let (time, _) = earliest.expect("live > 0 implies an occupied entry");
            self.current_day = self.day_of(time);
        }
    }

    /// Pops the earliest live event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let bucket = self.settle()?;
        let entry = self.buckets[bucket].pop_front().expect("settled front");
        self.stored -= 1;
        self.live -= 1;
        self.now = entry.time;
        let SlotState::Occupied(payload) = self.retire_slot(entry.slot) else {
            unreachable!("settle() leaves an occupied entry at the front");
        };
        if self.stored < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        Some((entry.time, payload))
    }

    /// Time of the earliest live event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<f64> {
        let bucket = self.settle()?;
        self.buckets[bucket].front().map(|entry| entry.time)
    }

    /// Resizes the calendar to `nbuckets` buckets, re-deriving the day width
    /// from the span of the stored entries. Deterministic: the width depends
    /// only on what is stored, which depends only on the operation sequence.
    fn rebuild(&mut self, nbuckets: usize) {
        let mut entries: Vec<Entry> = Vec::with_capacity(self.stored);
        for bucket in &mut self.buckets {
            entries.extend(bucket.drain(..));
        }
        let mut min_time = f64::INFINITY;
        let mut max_time = f64::NEG_INFINITY;
        for entry in &entries {
            min_time = min_time.min(entry.time);
            max_time = max_time.max(entry.time);
        }
        let span = max_time - min_time;
        // ~3 events per day on average; clamped so equal-time bursts and
        // astronomic spans both stay usable.
        self.width = if entries.is_empty() || !span.is_finite() || span <= 0.0 {
            1.0
        } else {
            (3.0 * span / entries.len() as f64).max(1e-9)
        };
        if nbuckets > self.buckets.len() {
            self.buckets.resize_with(nbuckets, VecDeque::new);
        } else {
            self.buckets.truncate(nbuckets);
        }
        self.current_day = self.day_of(self.now);
        self.stored = 0;
        for entry in entries {
            self.insert_entry(entry);
        }
    }
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        let mut buckets = std::mem::take(&mut self.buckets);
        for bucket in &mut buckets {
            bucket.clear();
        }
        let _ = BUCKET_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < BUCKET_POOL_CAP {
                pool.push(buckets);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_returns_events_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 5);
        q.schedule(1.0, 1);
        q.schedule(3.0, 3);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancellation_removes_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancellation reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventToken(99)));
    }

    #[test]
    fn cancel_after_pop_is_stale() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(!q.cancel(a), "a popped event's token is stale");
        assert_eq!(q.len(), 1, "stale cancellation must not corrupt the count");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn tokens_go_stale_across_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        let b = q.schedule(2.0, "b");
        assert_eq!(b.raw() & 0xFFFF_FFFF, a.raw() & 0xFFFF_FFFF, "slot reused");
        assert_ne!(b.raw(), a.raw(), "but under a fresh generation");
        assert!(!q.cancel(a), "the old generation no longer matches");
        assert!(q.cancel(b), "the current generation still cancels");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn scheduling_nan_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn peek_time_skips_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn grows_and_shrinks_through_resize_thresholds() {
        let mut q = EventQueue::new();
        // Push far past the grow threshold, with ties and out-of-order times.
        for i in 0..4096u64 {
            let time = ((i * 2_654_435_761) % 97) as f64 / 7.0;
            q.schedule(time, i);
        }
        let mut popped = Vec::with_capacity(4096);
        let mut last = (f64::NEG_INFINITY, 0u64);
        while let Some((t, payload)) = q.pop() {
            assert!(t >= last.0, "times nondecreasing");
            popped.push(payload);
            last = (t, payload);
        }
        assert_eq!(popped.len(), 4096, "every event surfaces exactly once");
        popped.sort_unstable();
        assert!(popped.iter().copied().eq(0..4096));
    }

    #[test]
    fn sparse_far_future_events_surface_after_cursor_jump() {
        let mut q = EventQueue::new();
        q.schedule(0.25, "near");
        q.schedule(1.0e9, "far");
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        assert_eq!(q.peek_time(), Some(1.0e9));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert!(q.pop().is_none());
    }
}
