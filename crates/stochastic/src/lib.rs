//! # churn-stochastic
//!
//! Stochastic substrate for the reproduction of *"Expansion and Flooding in
//! Dynamic Random Networks with Node Churn"* (ICDCS 2021).
//!
//! The Poisson models of the paper (Definitions 4.1, 4.9, 4.14) need a small
//! continuous-time simulation toolkit: exponential and Poisson sampling, the
//! birth–death *jump chain* of Definition 4.5 / Lemma 4.6, and an event queue.
//! The experiments additionally need descriptive statistics (means, confidence
//! intervals, histograms), the KL divergence of Theorem A.3, and simple
//! regression to fit the `O(log n)` flooding-time scalings. All of that lives
//! here, implemented on top of nothing but the `rand` crate.
//!
//! ## Modules
//!
//! * [`rng`] — deterministic seeding and independent sub-streams,
//! * [`distributions`] — exponential, Poisson, geometric and Bernoulli samplers
//!   with exact moments exposed for testing,
//! * [`process`] — the homogeneous Poisson process and the birth–death jump
//!   chain used by the Poisson churn,
//! * [`events`] — a generic future-event queue for discrete-event simulation,
//! * [`stats`] — online statistics, histograms, confidence intervals, KL
//!   divergence and least-squares fits.
//!
//! ## Example: the jump chain of Definition 4.5
//!
//! ```
//! use churn_stochastic::process::{BirthDeathChain, JumpKind};
//! use churn_stochastic::rng::seeded_rng;
//!
//! let mut rng = seeded_rng(42);
//! // λ = 1, µ = 1/n with n = 100.
//! let chain = BirthDeathChain::new(1.0, 0.01);
//! let mut population = 0u64;
//! let mut time = 0.0;
//! for _ in 0..1_000 {
//!     let jump = chain.next_jump(population, &mut rng);
//!     time += jump.waiting_time;
//!     match jump.kind {
//!         JumpKind::Birth => population += 1,
//!         JumpKind::Death => population -= 1,
//!     }
//! }
//! assert!(population > 0, "after 1000 jumps the population is near n = 100");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributions;
pub mod events;
pub mod process;
pub mod rng;
pub mod stats;

pub use distributions::{
    Bernoulli, Exponential, Geometric, GilbertElliott, GilbertElliottState, LogNormal, Poisson,
};
pub use events::EventQueue;
pub use process::{BirthDeathChain, Jump, JumpKind, PoissonProcess};
pub use rng::{seeded_rng, SimRng};
pub use stats::{Histogram, LinearFit, OnlineStats};
