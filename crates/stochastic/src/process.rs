//! Point processes: the homogeneous Poisson process and the birth–death jump
//! chain behind the paper's Poisson churn (Definitions 4.1 and 4.5, Lemma 4.6).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::distributions::{Exponential, Poisson};

/// A homogeneous Poisson process with rate `lambda` events per unit time.
///
/// Provides both views the paper uses: the exponential waiting time until the
/// next event, and the Poisson-distributed number of events in a window
/// (Lemma 7.4 bounds arrivals in logarithmic windows this way).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a process with the given event rate.
    ///
    /// Returns `None` unless `rate` is finite and strictly positive.
    #[must_use]
    pub fn new(rate: f64) -> Option<Self> {
        (rate.is_finite() && rate > 0.0).then_some(PoissonProcess { rate })
    }

    /// The event rate λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples the waiting time until the next event.
    pub fn next_arrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Exponential::new(self.rate)
            .expect("rate validated at construction")
            .sample(rng)
    }

    /// Samples the number of events falling in a window of length `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or not finite.
    pub fn events_in_window<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> u64 {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "window duration must be finite and non-negative"
        );
        Poisson::new(self.rate * duration)
            .expect("finite non-negative mean")
            .sample(rng)
    }

    /// Samples the arrival times of all events in `[0, duration)`, sorted.
    ///
    /// Uses the standard conditioning property (Theorem C.3 of the paper's
    /// appendix): given the count, arrival times are i.i.d. uniform.
    pub fn arrivals_in_window<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Vec<f64> {
        let count = self.events_in_window(duration, rng);
        let mut times: Vec<f64> = (0..count).map(|_| rng.gen::<f64>() * duration).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times
    }
}

/// The kind of transition taken by the birth–death jump chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JumpKind {
    /// A new node joins the network.
    Birth,
    /// An existing node dies (the caller picks *which* node uniformly — every
    /// alive node is equally likely, by exchangeability of i.i.d. exponential
    /// residual lifetimes).
    Death,
}

/// One transition of the jump chain: how long the chain waited and what happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jump {
    /// Exponential waiting time until this event, with rate `N·µ + λ`
    /// (Lemma 4.6).
    pub waiting_time: f64,
    /// Whether the event is a birth or a death.
    pub kind: JumpKind,
}

/// The birth–death jump chain of Definition 4.5 / Lemma 4.6.
///
/// With `N` nodes alive, the time to the next event is `Exp(N·µ + λ)`; the event
/// is a birth with probability `λ / (N·µ + λ)` and a death with probability
/// `N·µ / (N·µ + λ)`, in which case the dying node is uniform among the alive
/// ones.
///
/// # Example
///
/// ```
/// use churn_stochastic::process::{BirthDeathChain, JumpKind};
/// use churn_stochastic::rng::seeded_rng;
///
/// let chain = BirthDeathChain::new(1.0, 0.001); // n = λ/µ = 1000
/// let mut rng = seeded_rng(0);
/// let jump = chain.next_jump(0, &mut rng);
/// // With zero nodes alive only a birth can happen.
/// assert_eq!(jump.kind, JumpKind::Birth);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BirthDeathChain {
    lambda: f64,
    mu: f64,
}

impl BirthDeathChain {
    /// Creates a chain with birth rate `lambda` and per-node death rate `mu`.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are finite and strictly positive.
    #[must_use]
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "birth rate must be positive"
        );
        assert!(mu.is_finite() && mu > 0.0, "death rate must be positive");
        BirthDeathChain { lambda, mu }
    }

    /// The birth rate λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The per-node death rate µ.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The stationary expected population `n = λ / µ`.
    #[must_use]
    pub fn expected_population(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Probability that the next event is a death, given `alive` nodes
    /// (Lemma 4.6).
    #[must_use]
    pub fn death_probability(&self, alive: u64) -> f64 {
        let total = alive as f64 * self.mu + self.lambda;
        alive as f64 * self.mu / total
    }

    /// Probability that the next event is a birth, given `alive` nodes.
    #[must_use]
    pub fn birth_probability(&self, alive: u64) -> f64 {
        1.0 - self.death_probability(alive)
    }

    /// Probability that a *specific* alive node is the one that dies at the next
    /// event, given `alive` nodes (Lemma 4.6: `µ / (N·µ + λ)`).
    #[must_use]
    pub fn specific_death_probability(&self, alive: u64) -> f64 {
        let total = alive as f64 * self.mu + self.lambda;
        self.mu / total
    }

    /// Samples the next transition of the chain given the current population.
    pub fn next_jump<R: Rng + ?Sized>(&self, alive: u64, rng: &mut R) -> Jump {
        let total_rate = alive as f64 * self.mu + self.lambda;
        let waiting_time = Exponential::new(total_rate)
            .expect("total rate is positive")
            .sample(rng);
        let kind = if rng.gen::<f64>() < self.death_probability(alive) {
            JumpKind::Death
        } else {
            JumpKind::Birth
        };
        Jump { waiting_time, kind }
    }

    /// Simulates `steps` jumps starting from population `initial`, returning the
    /// population trajectory (one entry per jump, after the jump is applied).
    pub fn simulate_population<R: Rng + ?Sized>(
        &self,
        initial: u64,
        steps: usize,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut population = initial;
        let mut trajectory = Vec::with_capacity(steps);
        for _ in 0..steps {
            let jump = self.next_jump(population, rng);
            match jump.kind {
                JumpKind::Birth => population += 1,
                JumpKind::Death => population = population.saturating_sub(1),
            }
            trajectory.push(population);
        }
        trajectory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::stats::OnlineStats;

    #[test]
    fn poisson_process_validates_rate() {
        assert!(PoissonProcess::new(0.0).is_none());
        assert!(PoissonProcess::new(-3.0).is_none());
        assert!(PoissonProcess::new(2.0).is_some());
    }

    #[test]
    fn poisson_process_interarrival_mean() {
        let p = PoissonProcess::new(4.0).unwrap();
        let mut rng = seeded_rng(20);
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            stats.push(p.next_arrival(&mut rng));
        }
        assert!((stats.mean() - 0.25).abs() < 0.01);
    }

    #[test]
    fn poisson_process_window_counts() {
        let p = PoissonProcess::new(2.0).unwrap();
        let mut rng = seeded_rng(21);
        let mut stats = OnlineStats::new();
        for _ in 0..20_000 {
            stats.push(p.events_in_window(3.0, &mut rng) as f64);
        }
        assert!((stats.mean() - 6.0).abs() < 0.15);
        assert_eq!(p.events_in_window(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_process_arrivals_are_sorted_and_in_range() {
        let p = PoissonProcess::new(5.0).unwrap();
        let mut rng = seeded_rng(22);
        for _ in 0..100 {
            let arrivals = p.arrivals_in_window(2.0, &mut rng);
            for w in arrivals.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for &t in &arrivals {
                assert!((0.0..2.0).contains(&t));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn poisson_process_rejects_negative_window() {
        let p = PoissonProcess::new(1.0).unwrap();
        let mut rng = seeded_rng(23);
        let _ = p.events_in_window(-1.0, &mut rng);
    }

    #[test]
    fn chain_probabilities_match_lemma_4_6() {
        // λ = 1, µ = 1/n.
        let n = 1000.0;
        let chain = BirthDeathChain::new(1.0, 1.0 / n);
        // At the stationary population N = n the death probability is 1/2.
        assert!((chain.death_probability(1000) - 0.5).abs() < 1e-12);
        assert!((chain.birth_probability(1000) - 0.5).abs() < 1e-12);
        // Lemma 4.7: with N in [0.9n, 1.1n] both probabilities are in [0.47, 0.53].
        for alive in [900u64, 1000, 1100] {
            let p = chain.death_probability(alive);
            assert!((0.47..=0.53).contains(&p), "death prob {p} out of range");
        }
        // Lemma 4.6: specific node death probability is µ/(Nµ + λ).
        let p = chain.specific_death_probability(1000);
        assert!((p - (1.0 / n) / (1000.0 / n + 1.0)).abs() < 1e-15);
        // Lemma 4.7 equation (4): bounds 1/(2.2 n) <= p <= 1/(1.8 n) near N = n.
        assert!(p >= 1.0 / (2.2 * n) && p <= 1.0 / (1.8 * n));
    }

    #[test]
    fn chain_with_zero_population_only_births() {
        let chain = BirthDeathChain::new(1.0, 0.01);
        assert_eq!(chain.death_probability(0), 0.0);
        let mut rng = seeded_rng(24);
        for _ in 0..50 {
            assert_eq!(chain.next_jump(0, &mut rng).kind, JumpKind::Birth);
        }
    }

    #[test]
    fn chain_population_concentrates_around_lambda_over_mu() {
        // Lemma 4.4: after enough steps the population is Θ(n), concretely within
        // [0.9n, 1.1n] with overwhelming probability.
        let n = 500.0;
        let chain = BirthDeathChain::new(1.0, 1.0 / n);
        assert_eq!(chain.expected_population(), 500.0);
        let mut rng = seeded_rng(25);
        let trajectory = chain.simulate_population(0, 40_000, &mut rng);
        let late = &trajectory[20_000..];
        let mean: f64 = late.iter().map(|&x| x as f64).sum::<f64>() / late.len() as f64;
        assert!(
            (mean - n).abs() < 0.1 * n,
            "late population mean {mean} should be near {n}"
        );
        let in_band = late
            .iter()
            .filter(|&&x| (x as f64) >= 0.9 * n && (x as f64) <= 1.1 * n)
            .count() as f64
            / late.len() as f64;
        assert!(
            in_band > 0.9,
            "population stays in [0.9n, 1.1n] most of the time"
        );
    }

    #[test]
    fn chain_waiting_times_shrink_with_population() {
        let chain = BirthDeathChain::new(1.0, 0.01);
        let mut rng = seeded_rng(26);
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for _ in 0..20_000 {
            small.push(chain.next_jump(10, &mut rng).waiting_time);
            large.push(chain.next_jump(1000, &mut rng).waiting_time);
        }
        // Expected waiting times are 1/(λ+Nµ): 1/1.1 vs 1/11.
        assert!((small.mean() - 1.0 / 1.1).abs() < 0.03);
        assert!((large.mean() - 1.0 / 11.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "birth rate")]
    fn chain_rejects_non_positive_lambda() {
        let _ = BirthDeathChain::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "death rate")]
    fn chain_rejects_non_positive_mu() {
        let _ = BirthDeathChain::new(1.0, 0.0);
    }
}
