//! Descriptive statistics, confidence intervals, histograms, divergences and
//! least-squares fits used to analyse experiment output.

use serde::{Deserialize, Serialize};

/// Welford online accumulator of mean and variance.
///
/// Numerically stable, O(1) memory, suitable for streaming millions of samples
/// from long simulation runs.
///
/// # Example
///
/// ```
/// use churn_stochastic::OnlineStats;
///
/// let mut stats = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 8);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (0 when fewer than 2 samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation (population).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval `(low, high)` around the mean at
    /// the given z-score (1.96 ≈ 95%).
    #[must_use]
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut stats = OnlineStats::new();
        for x in iter {
            stats.push(x);
        }
        stats
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// The empirical `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
#[must_use]
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// The empirical median of a sample (`None` for an empty slice).
#[must_use]
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// Fixed-width histogram over a closed interval.
///
/// Samples below the range are clamped to the first bin and samples above to the
/// last bin, so no observations are silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `low >= high` or either bound is not finite.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "histogram range must be finite and non-empty"
        );
        Histogram {
            low,
            high,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let width = (self.high - self.low) / bins as f64;
        let idx = ((x - self.low) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `[low, high)` boundaries of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.high - self.low) / self.counts.len() as f64;
        (
            self.low + i as f64 * width,
            self.low + (i + 1) as f64 * width,
        )
    }

    /// The fraction of samples falling in bin `i` (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// The normalised probability mass function over the bins (empty if no
    /// samples were added).
    #[must_use]
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Kullback–Leibler divergence `D(p ‖ q) = Σ p_i log2(p_i / q_i)` in bits.
///
/// This is the quantity the paper's Theorem A.3 lower-bounds by zero; the
/// middle-size-subset expansion proof (Lemma 4.18) hinges on it. Terms with
/// `p_i = 0` contribute zero.
///
/// Returns `None` if the distributions have different lengths, contain negative
/// entries, or if some `q_i = 0` while `p_i > 0` (the divergence is infinite).
#[must_use]
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Option<f64> {
    if p.len() != q.len() {
        return None;
    }
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi < 0.0 || qi < 0.0 {
            return None;
        }
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return None;
        }
        total += pi * (pi / qi).log2();
    }
    Some(total)
}

/// Shannon entropy of a probability mass function, in bits. Entries equal to
/// zero contribute nothing; negative entries yield `None`.
#[must_use]
pub fn entropy(p: &[f64]) -> Option<f64> {
    let mut total = 0.0;
    for &pi in p {
        if pi < 0.0 {
            return None;
        }
        if pi > 0.0 {
            total -= pi * pi.log2();
        }
    }
    Some(total)
}

/// Result of an ordinary least-squares fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; 0 when `y` is
    /// constant and perfectly predicted by its mean).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs. Returns `None` with fewer than
/// two points or when all `x` coincide.
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits `y ≈ a + b · log2(x)`, the shape of every `O(log n)` bound in the paper.
/// Returns `None` if any `x <= 0` or the fit is degenerate.
#[must_use]
pub fn log_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.iter().any(|&(x, _)| x <= 0.0) {
        return None;
    }
    let transformed: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.log2(), y)).collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn online_stats_single_sample() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn online_stats_matches_direct_formulas() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let s: OnlineStats = data.iter().copied().collect();
        assert!((s.mean() - 5.5).abs() < 1e-12);
        assert!((s.variance() - 8.25).abs() < 1e-12);
        assert!((s.sample_variance() - 9.166_666_666_666_666).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn online_stats_merge_equals_pooled() {
        let all = [2.0, 3.0, 5.0, 7.0, 11.0, 13.0, 17.0];
        let pooled: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..3].iter().copied().collect();
        let b: OnlineStats = all[3..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert!((a.mean() - pooled.mean()).abs() < 1e-12);
        assert!((a.variance() - pooled.variance()).abs() < 1e-12);
        // Merging an empty accumulator changes nothing.
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&pooled);
        assert!((empty.mean() - pooled.mean()).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let s: OnlineStats = (0..100).map(|i| i as f64).collect();
        let (lo, hi) = s.confidence_interval(1.96);
        assert!(lo < s.mean() && s.mean() < hi);
        assert!(hi - lo > 0.0);
    }

    #[test]
    fn quantiles_and_median() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(median(&data), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 3.5, 9.9, -4.0, 25.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bins(), 5);
        assert_eq!(h.counts()[0], 3, "0.5, 1.5 and clamped -4.0");
        assert_eq!(h.counts()[4], 2, "9.9 and clamped 25.0");
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert!((h.fraction(0) - 3.0 / 7.0).abs() < 1e-12);
        let pmf = h.pmf();
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        // D(p||p) = 0, D(p||q) > 0 (Theorem A.3), and it is asymmetric.
        assert_eq!(kl_divergence(&p, &p), Some(0.0));
        let d_pq = kl_divergence(&p, &q).unwrap();
        let d_qp = kl_divergence(&q, &p).unwrap();
        assert!(d_pq > 0.0);
        assert!(d_qp > 0.0);
        assert!((d_pq - d_qp).abs() > 1e-6);
        // Mismatched lengths, negative entries or infinite divergence yield None.
        assert_eq!(kl_divergence(&p, &[1.0]), None);
        assert_eq!(kl_divergence(&[-0.1, 1.1], &p), None);
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), None);
        // p_i = 0 terms are fine.
        assert!(kl_divergence(&[1.0, 0.0], &[0.5, 0.5]).unwrap() > 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log_bits() {
        let uniform = [0.25; 4];
        assert!((entropy(&uniform).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(entropy(&[1.0]), Some(0.0));
        assert_eq!(entropy(&[-0.2, 1.2]), None);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&points).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 3.0)]).is_none());
        // Constant y: slope 0, perfect fit.
        let fit = linear_fit(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log_fit_recovers_logarithmic_scaling() {
        // y = 4 + 2 log2(x): the shape of the paper's flooding-time bounds.
        let points: Vec<(f64, f64)> = [64.0, 128.0, 256.0, 512.0, 1024.0]
            .iter()
            .map(|&x: &f64| (x, 4.0 + 2.0 * x.log2()))
            .collect();
        let fit = log_fit(&points).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 4.0).abs() < 1e-9);
        assert!(log_fit(&[(0.0, 1.0), (2.0, 2.0)]).is_none());
    }
}
