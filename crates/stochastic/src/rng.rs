//! Deterministic random number generation helpers.
//!
//! Every experiment in the workspace is seeded so that results are exactly
//! reproducible. Trials, models and analysis passes each receive an
//! *independent sub-stream* derived from a base seed and a stream label, so that
//! adding instrumentation (which consumes extra randomness) in one component
//! never perturbs another component's draws.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used throughout the workspace.
///
/// `StdRng` is a cryptographically strong, splittable-by-reseeding generator
/// with a stable algorithm within a `rand` major version, which is enough for
/// reproducible simulations.
pub type SimRng = StdRng;

/// Creates a deterministically seeded RNG.
///
/// # Example
///
/// ```
/// use churn_stochastic::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> SimRng {
    StdRng::seed_from_u64(seed)
}

/// Derives the seed of an independent sub-stream from a base seed and a stream
/// label, using the SplitMix64 finalizer so that nearby labels yield unrelated
/// seeds.
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates an RNG for the sub-stream `stream` of the base seed `base`.
///
/// Different `(base, stream)` pairs give statistically independent generators;
/// identical pairs give identical generators.
#[must_use]
pub fn substream_rng(base: u64, stream: u64) -> SimRng {
    seeded_rng(derive_seed(base, stream))
}

/// A small factory handing out independent sub-streams of a base seed, keeping
/// track of how many were created.
///
/// # Example
///
/// ```
/// use churn_stochastic::rng::SeedSequence;
/// use rand::Rng;
///
/// let mut seq = SeedSequence::new(99);
/// let mut model_rng = seq.next_rng();
/// let mut noise_rng = seq.next_rng();
/// // The two streams are decorrelated:
/// let _ = model_rng.gen::<u64>();
/// let _ = noise_rng.gen::<u64>();
/// assert_eq!(seq.issued(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
    next_stream: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        SeedSequence {
            base,
            next_stream: 0,
        }
    }

    /// The base seed this sequence was created with.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of sub-streams issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next_stream
    }

    /// Returns the seed of the next sub-stream.
    pub fn next_seed(&mut self) -> u64 {
        let seed = derive_seed(self.base, self.next_stream);
        self.next_stream += 1;
        seed
    }

    /// Returns an RNG for the next sub-stream.
    pub fn next_rng(&mut self) -> SimRng {
        seeded_rng(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a: Vec<u64> = {
            let mut rng = seeded_rng(123);
            (0..16).map(|_| rng.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = seeded_rng(123);
            (0..16).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_depends_on_both_arguments() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_eq!(derive_seed(5, 9), derive_seed(5, 9));
    }

    #[test]
    fn substreams_are_decorrelated_even_for_adjacent_labels() {
        let mut a = substream_rng(7, 0);
        let mut b = substream_rng(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn seed_sequence_is_deterministic_and_counts_streams() {
        let mut s1 = SeedSequence::new(11);
        let mut s2 = SeedSequence::new(11);
        assert_eq!(s1.next_seed(), s2.next_seed());
        assert_eq!(s1.next_seed(), s2.next_seed());
        assert_eq!(s1.issued(), 2);
        assert_eq!(s1.base(), 11);
    }
}
