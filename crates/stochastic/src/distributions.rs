//! Probability distributions used by the Poisson churn models.
//!
//! The paper needs three distributions (Definition 4.1 and the analysis around
//! it): the exponential distribution (inter-arrival times and node lifetimes),
//! the Poisson distribution (number of arrivals in a fixed window, Lemma 7.4)
//! and the geometric/Bernoulli family (coin-toss arguments such as the node
//! removal step of the extended onion-skin process, Section 7.2.4). They are
//! implemented here directly on top of `rand`'s uniform primitives so the crate
//! has no further dependencies and the sampling algorithms are auditable.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
///
/// Sampled by inversion: `-ln(U) / λ` with `U ~ Uniform(0, 1]`.
///
/// # Example
///
/// ```
/// use churn_stochastic::Exponential;
/// use churn_stochastic::rng::seeded_rng;
///
/// let lifetime = Exponential::new(0.01).unwrap(); // mean 100
/// let mut rng = seeded_rng(1);
/// let sample = lifetime.sample(&mut rng);
/// assert!(sample > 0.0);
/// assert_eq!(lifetime.mean(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// Returns `None` unless `rate` is finite and strictly positive.
    #[must_use]
    pub fn new(rate: f64) -> Option<Self> {
        (rate.is_finite() && rate > 0.0).then_some(Exponential { rate })
    }

    /// The rate parameter λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1 / λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// The variance `1 / λ²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - gen::<f64>() lies in (0, 1], avoiding ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }

    /// Cumulative distribution function `P(X <= x)`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    /// Survival function `P(X > x)`.
    #[must_use]
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Log-normal distribution: `exp(μ + σ·Z)` for a standard normal `Z`.
///
/// The heavy-tailed latency model of the event-driven simulator (a few
/// messages take much longer than the median, as wide-area links do).
///
/// # Example
///
/// ```
/// use churn_stochastic::distributions::LogNormal;
/// use churn_stochastic::rng::seeded_rng;
///
/// let latency = LogNormal::new(0.0, 0.5).unwrap();
/// let mut rng = seeded_rng(1);
/// assert!(latency.sample(&mut rng) > 0.0);
/// assert_eq!(latency.median(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-scale location `mu` and
    /// log-scale shape `sigma`.
    ///
    /// Returns `None` unless `mu` is finite and `sigma` is finite and
    /// strictly positive.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (mu.is_finite() && sigma.is_finite() && sigma > 0.0).then_some(LogNormal { mu, sigma })
    }

    /// The log-scale location μ.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The log-scale shape σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The mean `exp(μ + σ²/2)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// The median `exp(μ)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample (always strictly positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Small means use Knuth's product-of-uniforms method; large means (> 30) use
/// the normal approximation with continuity correction, which is accurate to
/// well below the statistical noise of any experiment in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Threshold above which the normal approximation is used for sampling.
    const NORMAL_APPROX_THRESHOLD: f64 = 30.0;

    /// Creates a Poisson distribution with the given mean.
    ///
    /// Returns `None` unless `mean` is finite and non-negative.
    #[must_use]
    pub fn new(mean: f64) -> Option<Self> {
        (mean.is_finite() && mean >= 0.0).then_some(Poisson { mean })
    }

    /// The mean (and variance) λ.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean == 0.0 {
            return 0;
        }
        if self.mean > Self::NORMAL_APPROX_THRESHOLD {
            let std = self.mean.sqrt();
            let z = standard_normal(rng);
            let value = (self.mean + std * z + 0.5).floor();
            return value.max(0.0) as u64;
        }
        // Knuth: count uniforms until their product drops below e^{-λ}.
        let limit = (-self.mean).exp();
        let mut count = 0u64;
        let mut product: f64 = 1.0;
        loop {
            product *= rng.gen::<f64>();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }

    /// Probability mass function `P(X = k)`.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        if self.mean == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        // exp(k ln λ - λ - ln k!) for numerical stability.
        let k_f = k as f64;
        (k_f * self.mean.ln() - self.mean - ln_factorial(k)).exp()
    }

    /// Cumulative distribution function `P(X <= k)`.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }
}

/// Geometric distribution on `{1, 2, 3, …}`: the number of Bernoulli(`p`) trials
/// up to and including the first success.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// Returns `None` unless `0 < p <= 1`.
    #[must_use]
    pub fn new(p: f64) -> Option<Self> {
        (p > 0.0 && p <= 1.0).then_some(Geometric { p })
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `1 / p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let trials = (u.ln() / (1.0 - self.p).ln()).ceil();
        trials.max(1.0) as u64
    }
}

/// Bernoulli distribution returning `true` with probability `p`.
///
/// Thin wrapper over [`Rng::gen_bool`] that validates its argument once at
/// construction instead of at every draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// Returns `None` unless `0 <= p <= 1`.
    #[must_use]
    pub fn new(p: f64) -> Option<Self> {
        ((0.0..=1.0).contains(&p)).then_some(Bernoulli { p })
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p <= 0.0 {
            false
        } else if self.p >= 1.0 {
            true
        } else {
            rng.gen_bool(self.p)
        }
    }
}

/// Gilbert–Elliott two-state loss channel: a Markov chain alternating
/// between a *good* state (loss probability `loss_good`, usually ≈ 0) and a
/// *bad* burst state (loss probability `loss_bad`, usually near 1). Each
/// step first moves the state (`p_gb` = good→bad, `p_bg` = bad→good), then
/// draws the loss coin for the current state — so losses cluster into
/// bursts of mean length `1 / p_bg` instead of falling i.i.d.
///
/// # Example
///
/// ```
/// use churn_stochastic::distributions::GilbertElliott;
/// use churn_stochastic::rng::seeded_rng;
///
/// let chan = GilbertElliott::new(0.05, 0.5, 0.0, 1.0).unwrap();
/// let mut rng = seeded_rng(1);
/// let mut state = chan.initial_state();
/// let _lost: bool = chan.step(&mut state, &mut rng);
/// assert!((chan.stationary_loss() - 0.0909).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    p_gb: f64,
    p_bg: f64,
    loss_good: f64,
    loss_bad: f64,
}

/// The per-link channel state of a [`GilbertElliott`] chain: `true` while
/// the link is in the bad (burst) state.
pub type GilbertElliottState = bool;

impl GilbertElliott {
    /// Creates a channel with transition probabilities `p_gb` (good→bad) and
    /// `p_bg` (bad→good) and per-state loss probabilities.
    ///
    /// Returns `None` unless every probability lies in `[0, 1]` and at least
    /// one transition probability is positive (so the chain is not stuck in
    /// an arbitrary initial state forever).
    #[must_use]
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Option<Self> {
        let in_unit = |p: f64| (0.0..=1.0).contains(&p);
        (in_unit(p_gb)
            && in_unit(p_bg)
            && in_unit(loss_good)
            && in_unit(loss_bad)
            && p_gb + p_bg > 0.0)
            .then_some(GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            })
    }

    /// The good→bad transition probability.
    #[must_use]
    pub fn p_gb(&self) -> f64 {
        self.p_gb
    }

    /// The bad→good transition probability.
    #[must_use]
    pub fn p_bg(&self) -> f64 {
        self.p_bg
    }

    /// Stationary probability of being in the bad state,
    /// `p_gb / (p_gb + p_bg)`.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run loss rate: the stationary mixture of the two loss coins.
    #[must_use]
    pub fn stationary_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        (1.0 - bad) * self.loss_good + bad * self.loss_bad
    }

    /// Mean burst length `1 / p_bg` (steps spent in the bad state per
    /// visit); infinite when `p_bg == 0`.
    #[must_use]
    pub fn mean_burst_length(&self) -> f64 {
        1.0 / self.p_bg
    }

    /// Every chain starts in the good state, so a link's loss history is a
    /// pure function of its draw sequence.
    #[must_use]
    pub fn initial_state(&self) -> GilbertElliottState {
        false
    }

    /// Advances the state one step and draws the loss coin for the new
    /// state. Returns `true` when the message is lost. Always consumes
    /// exactly two `f64` draws, so the stream layout is state-independent.
    pub fn step<R: Rng + ?Sized>(&self, state: &mut GilbertElliottState, rng: &mut R) -> bool {
        let flip: f64 = rng.gen();
        *state = if *state {
            flip >= self.p_bg
        } else {
            flip < self.p_gb
        };
        let coin: f64 = rng.gen();
        coin < if *state {
            self.loss_bad
        } else {
            self.loss_good
        }
    }
}

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Natural logarithm of `k!`, via Stirling's series for large `k` and a direct
/// sum for small `k`.
#[must_use]
pub fn ln_factorial(k: u64) -> f64 {
    if k < 2 {
        return 0.0;
    }
    if k <= 20 {
        return (2..=k).map(|i| (i as f64).ln()).sum();
    }
    let n = k as f64;
    // Stirling series with the 1/(12n) correction term.
    n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::stats::OnlineStats;

    #[test]
    fn exponential_rejects_invalid_rates() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
        assert!(Exponential::new(2.0).is_some());
    }

    #[test]
    fn exponential_moments_match_samples() {
        let dist = Exponential::new(0.5).unwrap();
        let mut rng = seeded_rng(10);
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            stats.push(dist.sample(&mut rng));
        }
        assert!((stats.mean() - dist.mean()).abs() < 0.05 * dist.mean());
        assert!((stats.variance() - dist.variance()).abs() < 0.1 * dist.variance());
    }

    #[test]
    fn exponential_cdf_properties() {
        let dist = Exponential::new(1.0).unwrap();
        assert_eq!(dist.cdf(-1.0), 0.0);
        assert!((dist.cdf(0.0)).abs() < 1e-12);
        assert!((dist.cdf(f64::INFINITY) - 1.0).abs() < 1e-12);
        assert!((dist.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((dist.survival(1.0) + dist.cdf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_memorylessness_empirically() {
        // P(X > s + t | X > s) ≈ P(X > t): the property the paper leans on
        // throughout the Poisson analysis.
        let dist = Exponential::new(0.2).unwrap();
        let mut rng = seeded_rng(11);
        let (s, t) = (3.0, 2.0);
        let mut beyond_s = 0u32;
        let mut beyond_st = 0u32;
        let trials = 100_000;
        for _ in 0..trials {
            let x = dist.sample(&mut rng);
            if x > s {
                beyond_s += 1;
                if x > s + t {
                    beyond_st += 1;
                }
            }
        }
        let conditional = beyond_st as f64 / beyond_s as f64;
        assert!((conditional - dist.survival(t)).abs() < 0.02);
    }

    #[test]
    fn poisson_rejects_invalid_means() {
        assert!(Poisson::new(-0.1).is_none());
        assert!(Poisson::new(f64::INFINITY).is_none());
        assert!(Poisson::new(0.0).is_some());
    }

    #[test]
    fn poisson_zero_mean_always_zero() {
        let dist = Poisson::new(0.0).unwrap();
        let mut rng = seeded_rng(3);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 0);
        }
        assert_eq!(dist.pmf(0), 1.0);
        assert_eq!(dist.pmf(3), 0.0);
    }

    #[test]
    fn poisson_small_mean_sample_moments() {
        let dist = Poisson::new(2.5).unwrap();
        let mut rng = seeded_rng(4);
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            stats.push(dist.sample(&mut rng) as f64);
        }
        assert!((stats.mean() - 2.5).abs() < 0.05);
        assert!((stats.variance() - 2.5).abs() < 0.15);
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx_with_correct_moments() {
        let dist = Poisson::new(200.0).unwrap();
        let mut rng = seeded_rng(5);
        let mut stats = OnlineStats::new();
        for _ in 0..20_000 {
            stats.push(dist.sample(&mut rng) as f64);
        }
        assert!((stats.mean() - 200.0).abs() < 1.0);
        assert!((stats.variance() - 200.0).abs() < 15.0);
    }

    #[test]
    fn poisson_pmf_sums_to_one_and_matches_known_values() {
        let dist = Poisson::new(3.0).unwrap();
        let total: f64 = (0..60).map(|k| dist.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // P(X = 0) = e^{-3}
        assert!((dist.pmf(0) - (-3.0f64).exp()).abs() < 1e-12);
        assert!((dist.cdf(2) - (dist.pmf(0) + dist.pmf(1) + dist.pmf(2))).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_samples() {
        let dist = Geometric::new(0.2).unwrap();
        let mut rng = seeded_rng(6);
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            stats.push(dist.sample(&mut rng) as f64);
        }
        assert!((stats.mean() - 5.0).abs() < 0.1);
        assert!(Geometric::new(0.0).is_none());
        assert!(Geometric::new(1.2).is_none());
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut rng), 1);
    }

    #[test]
    fn bernoulli_extremes_and_frequency() {
        let mut rng = seeded_rng(7);
        assert!(!Bernoulli::new(0.0).unwrap().sample(&mut rng));
        assert!(Bernoulli::new(1.0).unwrap().sample(&mut rng));
        assert!(Bernoulli::new(1.5).is_none());
        let coin = Bernoulli::new(0.3).unwrap();
        let heads = (0..100_000).filter(|_| coin.sample(&mut rng)).count();
        assert!((heads as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn log_normal_rejects_invalid_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_none());
        assert!(LogNormal::new(0.0, 0.0).is_none());
        assert!(LogNormal::new(0.0, -1.0).is_none());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_none());
        assert!(LogNormal::new(-1.0, 0.25).is_some());
    }

    #[test]
    fn log_normal_moments_match_the_closed_form() {
        let dist = LogNormal::new(0.3, 0.6).unwrap();
        assert!((dist.mean() - (0.3f64 + 0.18).exp()).abs() < 1e-12);
        assert_eq!(dist.median(), 0.3f64.exp());
        let mut rng = seeded_rng(9);
        let mut stats = OnlineStats::new();
        let mut all_positive = true;
        for _ in 0..100_000 {
            let x = dist.sample(&mut rng);
            all_positive &= x > 0.0;
            stats.push(x);
        }
        assert!(all_positive);
        assert!((stats.mean() - dist.mean()).abs() / dist.mean() < 0.02);
    }

    #[test]
    fn gilbert_elliott_rejects_invalid_parameters() {
        assert!(GilbertElliott::new(-0.1, 0.5, 0.0, 1.0).is_none());
        assert!(GilbertElliott::new(0.1, 1.5, 0.0, 1.0).is_none());
        assert!(GilbertElliott::new(0.1, 0.5, 0.0, f64::NAN).is_none());
        assert!(GilbertElliott::new(0.0, 0.0, 0.0, 1.0).is_none());
        assert!(GilbertElliott::new(0.05, 0.5, 0.0, 1.0).is_some());
    }

    #[test]
    fn gilbert_elliott_long_run_loss_matches_the_stationary_mixture() {
        let chan = GilbertElliott::new(0.05, 0.25, 0.01, 0.8).unwrap();
        let mut rng = seeded_rng(12);
        let mut state = chan.initial_state();
        let trials = 200_000;
        let lost = (0..trials)
            .filter(|_| chan.step(&mut state, &mut rng))
            .count();
        let rate = lost as f64 / trials as f64;
        assert!(
            (rate - chan.stationary_loss()).abs() < 0.01,
            "empirical loss {rate} vs stationary {}",
            chan.stationary_loss()
        );
    }

    #[test]
    fn gilbert_elliott_losses_cluster_into_bursts() {
        // With a near-deterministic bad state, consecutive losses are far
        // more likely than the i.i.d. square of the marginal loss rate.
        let chan = GilbertElliott::new(0.02, 0.2, 0.0, 1.0).unwrap();
        let mut rng = seeded_rng(13);
        let mut state = chan.initial_state();
        let outcomes: Vec<bool> = (0..100_000)
            .map(|_| chan.step(&mut state, &mut rng))
            .collect();
        let loss = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64
            / (outcomes.len() - 1) as f64;
        assert!(
            pairs > 3.0 * loss * loss,
            "consecutive-loss rate {pairs} should exceed the i.i.d. square of {loss}"
        );
    }

    #[test]
    fn gilbert_elliott_step_consumes_exactly_two_draws() {
        let chan = GilbertElliott::new(0.05, 0.5, 0.0, 1.0).unwrap();
        let mut a = seeded_rng(14);
        let mut b = seeded_rng(14);
        let mut state = chan.initial_state();
        let _ = chan.step(&mut state, &mut a);
        let _: f64 = b.gen();
        let _: f64 = b.gen();
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(8);
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(standard_normal(&mut rng));
        }
        assert!(stats.mean().abs() < 0.02);
        assert!((stats.variance() - 1.0).abs() < 0.03);
    }

    #[test]
    fn ln_factorial_matches_direct_computation() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        let direct: f64 = (2..=25u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(25) - direct).abs() < 1e-6);
        // Stirling regime vs direct sum continuity at the boundary.
        let direct20: f64 = (2..=20u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(20) - direct20).abs() < 1e-9);
    }
}
