//! Configuration of the peer-to-peer overlay simulation.

use serde::{Deserialize, Serialize};

use churn_core::{ModelError, Result};

/// Configuration of a [`crate::P2pNetwork`].
///
/// Defaults follow the Bitcoin Core values cited by the paper: 8 outbound
/// connections, at most 125 inbound connections, a large address manager, and
/// moderate address gossip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2pConfig {
    /// Expected number of simultaneously online peers (the `n = λ/µ` of the
    /// underlying Poisson churn with λ = 1).
    pub expected_peers: usize,
    /// Target number of outbound connections every peer maintains.
    pub target_outbound: usize,
    /// Maximum number of inbound connections a peer accepts.
    pub max_inbound: usize,
    /// Maximum number of addresses a peer keeps in its address manager.
    pub addrman_capacity: usize,
    /// Number of addresses handed to a freshly joined peer by the DNS seeds.
    pub dns_seed_addresses: usize,
    /// Number of addresses exchanged with one random neighbour per maintenance
    /// round.
    pub gossip_addresses: usize,
    /// RNG seed.
    pub seed: u64,
}

impl P2pConfig {
    /// Creates a configuration with Bitcoin-Core-like defaults for the given
    /// expected overlay size.
    #[must_use]
    pub fn new(expected_peers: usize) -> Self {
        P2pConfig {
            expected_peers,
            target_outbound: 8,
            max_inbound: 125,
            addrman_capacity: 1_000,
            dns_seed_addresses: 64,
            gossip_addresses: 16,
            seed: 0,
        }
    }

    /// Sets the target outbound connection count.
    #[must_use]
    pub fn target_outbound(mut self, target: usize) -> Self {
        self.target_outbound = target;
        self
    }

    /// Sets the maximum inbound connection count.
    #[must_use]
    pub fn max_inbound(mut self, max: usize) -> Self {
        self.max_inbound = max;
        self
    }

    /// Sets the address-manager capacity.
    #[must_use]
    pub fn addrman_capacity(mut self, capacity: usize) -> Self {
        self.addrman_capacity = capacity;
        self
    }

    /// Sets the number of DNS-seed addresses a joining peer receives.
    #[must_use]
    pub fn dns_seed_addresses(mut self, count: usize) -> Self {
        self.dns_seed_addresses = count;
        self
    }

    /// Sets the number of addresses exchanged per gossip round.
    #[must_use]
    pub fn gossip_addresses(mut self, count: usize) -> Self {
        self.gossip_addresses = count;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NetworkTooSmall`] when fewer than 2 peers are
    /// expected and [`ModelError::InvalidDegree`] when the outbound target is 0
    /// or exceeds the address-manager capacity.
    pub fn validate(&self) -> Result<()> {
        if self.expected_peers < 2 {
            return Err(ModelError::NetworkTooSmall {
                requested: self.expected_peers,
                minimum: 2,
            });
        }
        if self.target_outbound == 0 || self.target_outbound > self.addrman_capacity {
            return Err(ModelError::InvalidDegree {
                requested: self.target_outbound,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_bitcoin_core_values() {
        let c = P2pConfig::new(1_000);
        assert_eq!(c.target_outbound, 8);
        assert_eq!(c.max_inbound, 125);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = P2pConfig::new(100)
            .target_outbound(4)
            .max_inbound(30)
            .addrman_capacity(200)
            .dns_seed_addresses(10)
            .gossip_addresses(5)
            .seed(9);
        assert_eq!(c.target_outbound, 4);
        assert_eq!(c.max_inbound, 30);
        assert_eq!(c.addrman_capacity, 200);
        assert_eq!(c.dns_seed_addresses, 10);
        assert_eq!(c.gossip_addresses, 5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validation_rejects_degenerate_configurations() {
        assert!(P2pConfig::new(1).validate().is_err());
        assert!(P2pConfig::new(100).target_outbound(0).validate().is_err());
        assert!(P2pConfig::new(100)
            .target_outbound(10)
            .addrman_capacity(5)
            .validate()
            .is_err());
    }
}
