//! # churn-p2p
//!
//! A Bitcoin-Core-flavoured unstructured peer-to-peer overlay built on top of
//! the `churn-core` dynamic-network machinery.
//!
//! The paper motivates its Poisson model with edge regeneration (PDGR) by the
//! way Bitcoin full nodes maintain their overlay (Section 1.1 and Section 2):
//! every node keeps a *target out-degree* (8 by default) and a *maximum
//! in-degree* (125), stores a large list of known peer addresses seeded by DNS
//! seeds and refreshed by address gossip, and opens a replacement connection to
//! a (nearly) random known address whenever one of its outbound connections is
//! lost. This crate implements exactly that protocol as an example application
//! of the library:
//!
//! * [`P2pNetwork`] — the overlay simulation: Poisson churn, DNS-seed bootstrap,
//!   address-manager gossip, outbound-connection maintenance under the
//!   in-degree cap. It implements [`churn_core::DynamicNetwork`], so all the
//!   library's analyses (flooding, expansion, isolation) run on it unchanged.
//! * [`gossip`] — block propagation over the overlay (or over any other
//!   [`churn_core::DynamicNetwork`], e.g. a RAES-maintained bounded-in-degree
//!   expander built with [`gossip::raes_overlay`]), reported in the same
//!   terms as the paper's flooding process; sizes past ~10^5 peers can relay
//!   through the sharded parallel frontier engine
//!   ([`gossip::propagate_block_parallel`]).
//! * [`health`] — overlay health metrics (degrees, connectivity, address
//!   staleness).
//!
//! ## Example
//!
//! ```
//! use churn_p2p::{P2pConfig, P2pNetwork};
//! use churn_core::DynamicNetwork;
//!
//! let mut overlay = P2pNetwork::new(P2pConfig::new(200).seed(7)).unwrap();
//! overlay.warm_up();
//! let health = churn_p2p::health::overlay_health(&overlay);
//! assert!(health.largest_component_fraction > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addrman;
mod config;
mod network;

pub mod gossip;
pub mod health;

pub use addrman::AddressManager;
pub use config::P2pConfig;
pub use network::P2pNetwork;
