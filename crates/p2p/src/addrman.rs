//! The per-peer address manager ("addrman").
//!
//! Bitcoin Core full nodes keep a large table of known peer addresses, seeded
//! from DNS seeds at first start and continuously refreshed by `addr` gossip.
//! When a node needs a new outbound connection it samples from this table —
//! which, as the paper observes, makes the chosen neighbour "essentially random
//! among all nodes of the network" and is what justifies the PDGR abstraction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use churn_core::NodeId;
use churn_graph::hashing::IdHashMap;

/// A bounded table of known peer addresses with uniform sampling and random
/// eviction.
///
/// Stored as a *dense member table*, the same layout `churn-graph` uses for
/// its alive set: the addresses live in a contiguous vector (the O(1) uniform
/// sampling surface) and a fast-hashed `address → position` map makes insert,
/// remove and eviction O(1) swap-removes — the former `HashSet` + linear
/// position scan made [`AddressManager::remove`] O(n) with SipHash on top,
/// which is the overlay's hottest maintenance call (every failed dial to a
/// dead peer goes through it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressManager {
    capacity: usize,
    addresses: Vec<NodeId>,
    /// Position of each known address inside `addresses` (dense, swap-remove
    /// maintained — the `member_pos` pattern of the graph's member table).
    position: IdHashMap<NodeId, u32>,
}

impl AddressManager {
    /// Creates an empty address manager with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "address manager capacity must be positive");
        AddressManager {
            capacity,
            addresses: Vec::with_capacity(capacity),
            position: IdHashMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Removes the entry at `pos` with a swap-remove, fixing the moved
    /// entry's position. O(1).
    fn swap_remove_at(&mut self, pos: u32) -> NodeId {
        let removed = self.addresses.swap_remove(pos as usize);
        self.position.remove(&removed);
        if let Some(&moved) = self.addresses.get(pos as usize) {
            *self
                .position
                .get_mut(&moved)
                .expect("table entries are indexed") = pos;
        }
        removed
    }

    /// Number of known addresses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Returns `true` when no addresses are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` when `addr` is known.
    #[must_use]
    pub fn knows(&self, addr: NodeId) -> bool {
        self.position.contains_key(&addr)
    }

    /// Inserts an address. When the table is full a uniformly random existing
    /// entry is evicted to make room (Bitcoin Core's addrman similarly
    /// overwrites buckets). Returns `true` if the address was new. O(1).
    pub fn insert<R: Rng + ?Sized>(&mut self, addr: NodeId, rng: &mut R) -> bool {
        if self.position.contains_key(&addr) {
            return false;
        }
        if self.addresses.len() >= self.capacity {
            let evict = rng.gen_range(0..self.addresses.len());
            self.swap_remove_at(evict as u32);
        }
        self.position.insert(addr, self.addresses.len() as u32);
        self.addresses.push(addr);
        true
    }

    /// Removes an address (e.g. after a failed connection attempt to a dead
    /// peer). Returns `true` if it was known. O(1) — one hash probe and a
    /// swap-remove, no position scan.
    pub fn remove(&mut self, addr: NodeId) -> bool {
        let Some(&pos) = self.position.get(&addr) else {
            return false;
        };
        self.swap_remove_at(pos);
        true
    }

    /// A uniformly random known address, or `None` when empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.addresses.is_empty() {
            None
        } else {
            Some(self.addresses[rng.gen_range(0..self.addresses.len())])
        }
    }

    /// Up to `count` distinct random addresses (for `addr` gossip).
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<NodeId> {
        if self.addresses.is_empty() || count == 0 {
            return Vec::new();
        }
        if count >= self.addresses.len() {
            return self.addresses.clone();
        }
        // Partial Fisher–Yates over a copy of the indices.
        let mut indices: Vec<usize> = (0..self.addresses.len()).collect();
        for i in 0..count {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..count]
            .iter()
            .map(|&i| self.addresses[i])
            .collect()
    }

    /// All known addresses (arbitrary order).
    #[must_use]
    pub fn addresses(&self) -> &[NodeId] {
        &self.addresses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn insert_remove_and_lookup() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = AddressManager::new(10);
        assert!(a.is_empty());
        assert!(a.insert(id(1), &mut rng));
        assert!(!a.insert(id(1), &mut rng), "duplicate insert reports false");
        assert!(a.knows(id(1)));
        assert_eq!(a.len(), 1);
        assert!(a.remove(id(1)));
        assert!(!a.remove(id(1)));
        assert!(a.is_empty());
    }

    #[test]
    fn capacity_is_enforced_by_random_eviction() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = AddressManager::new(5);
        for raw in 0..50 {
            a.insert(id(raw), &mut rng);
        }
        assert_eq!(a.len(), 5);
        assert_eq!(a.capacity(), 5);
        // Every stored address is one of the inserted ones and all are distinct.
        let mut seen = HashSet::new();
        for &addr in a.addresses() {
            assert!(addr.raw() < 50);
            assert!(seen.insert(addr));
        }
    }

    #[test]
    fn sampling_returns_known_addresses() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = AddressManager::new(100);
        for raw in 0..20 {
            a.insert(id(raw), &mut rng);
        }
        for _ in 0..100 {
            let s = a.sample(&mut rng).unwrap();
            assert!(a.knows(s));
        }
        let many = a.sample_many(7, &mut rng);
        assert_eq!(many.len(), 7);
        let distinct: HashSet<NodeId> = many.iter().copied().collect();
        assert_eq!(distinct.len(), 7, "sample_many returns distinct addresses");
        assert_eq!(
            a.sample_many(50, &mut rng).len(),
            20,
            "capped at table size"
        );
        assert!(a.sample_many(0, &mut rng).is_empty());
    }

    #[test]
    fn empty_manager_samples_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = AddressManager::new(4);
        assert!(a.sample(&mut rng).is_none());
        assert!(a.sample_many(3, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = AddressManager::new(0);
    }

    #[test]
    fn position_map_survives_churny_mixed_workload() {
        // The dense member table's position map must stay exact through long
        // interleavings of inserts, O(1) removes and full-table evictions.
        let mut rng = StdRng::seed_from_u64(9);
        let mut a = AddressManager::new(16);
        for step in 0..2000u64 {
            if step % 3 == 0 {
                a.remove(id(rng.gen_range(0..200)));
            } else {
                a.insert(id(rng.gen_range(0..200)), &mut rng);
            }
            assert!(a.len() <= a.capacity());
            // Invariant: the vector and the position map mirror each other.
            let mut seen = HashSet::new();
            for (pos, &addr) in a.addresses().iter().enumerate() {
                assert!(seen.insert(addr), "duplicate address in dense table");
                assert!(a.knows(addr));
                // Round-trip through remove/insert keeps positions coherent:
                // removing by address must remove exactly that address.
                let _ = pos;
            }
        }
        // Spot-check O(1) removal correctness on the final state.
        let addrs: Vec<NodeId> = a.addresses().to_vec();
        for addr in addrs {
            assert!(a.remove(addr));
            assert!(!a.knows(addr));
        }
        assert!(a.is_empty());
    }
}
