//! The peer-to-peer overlay simulation.

use std::collections::HashMap;

use rand::Rng;

use churn_core::driver::{self, ChurnHost, JumpClock, PoissonChurnHost};
use churn_core::{
    AliveSet, ChurnSummary, DynamicNetwork, EdgePolicy, ModelEvent, ModelKind, NodeId, Result,
};
use churn_graph::{DynamicGraph, NodeIdAllocator};
use churn_stochastic::process::{BirthDeathChain, Jump};
use churn_stochastic::rng::{seeded_rng, SimRng};

use crate::{AddressManager, P2pConfig};

/// A Bitcoin-Core-like unstructured overlay under Poisson node churn.
///
/// Peers arrive as a Poisson process (rate 1) and stay online for an
/// exponential time with mean `expected_peers`; a joining peer bootstraps its
/// [`AddressManager`] from "DNS seeds" (a random sample of currently online
/// peers) and opens outbound connections to addresses drawn from it; every
/// maintenance round peers re-fill missing outbound connections (respecting the
/// targets' inbound caps) and gossip addresses with a random neighbour.
///
/// The overlay implements [`DynamicNetwork`], so the flooding, expansion and
/// isolation analyses of `churn-core` run on it unchanged — this is the
/// workspace's "realistic" counterpart of the idealised PDGR model.
#[derive(Debug, Clone)]
pub struct P2pNetwork {
    config: P2pConfig,
    graph: DynamicGraph,
    rng: SimRng,
    chain: BirthDeathChain,
    time: f64,
    jumps: u64,
    alive: AliveSet,
    birth_time: HashMap<NodeId, f64>,
    addrmans: HashMap<NodeId, AddressManager>,
    alloc: NodeIdAllocator,
    newest: Option<NodeId>,
    /// Reused dense-neighbour buffer of the gossip relay loop.
    gossip_scratch: Vec<u32>,
    /// Reused empty-slot buffer of the outbound dialling loop.
    slot_scratch: Vec<usize>,
    /// Counters updated as the simulation runs, exposed via [`Self::stats`].
    connect_attempts: u64,
    connect_successes: u64,
    stale_addresses_pruned: u64,
}

/// Running operational counters of an overlay simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlayStats {
    /// Outbound connection attempts made during maintenance.
    pub connect_attempts: u64,
    /// Attempts that resulted in a new connection.
    pub connect_successes: u64,
    /// Dead addresses removed from address managers after failed attempts.
    pub stale_addresses_pruned: u64,
}

impl P2pNetwork {
    /// Builds an empty overlay (time 0, no peers).
    ///
    /// # Errors
    ///
    /// Returns the validation error of [`P2pConfig::validate`].
    pub fn new(config: P2pConfig) -> Result<Self> {
        config.validate()?;
        let rng = seeded_rng(config.seed);
        let chain = BirthDeathChain::new(1.0, 1.0 / config.expected_peers as f64);
        let capacity = config.expected_peers + 16;
        Ok(P2pNetwork {
            graph: DynamicGraph::with_capacity(capacity),
            rng,
            chain,
            time: 0.0,
            jumps: 0,
            alive: AliveSet::with_capacity(capacity),
            birth_time: HashMap::with_capacity(capacity),
            addrmans: HashMap::with_capacity(capacity),
            alloc: NodeIdAllocator::new(),
            newest: None,
            gossip_scratch: Vec::new(),
            slot_scratch: Vec::new(),
            connect_attempts: 0,
            connect_successes: 0,
            stale_addresses_pruned: 0,
            config,
        })
    }

    /// The configuration the overlay was built from.
    #[must_use]
    pub fn config(&self) -> &P2pConfig {
        &self.config
    }

    /// Running operational counters.
    #[must_use]
    pub fn stats(&self) -> OverlayStats {
        OverlayStats {
            connect_attempts: self.connect_attempts,
            connect_successes: self.connect_successes,
            stale_addresses_pruned: self.stale_addresses_pruned,
        }
    }

    /// The address manager of an online peer.
    #[must_use]
    pub fn addrman(&self, peer: NodeId) -> Option<&AddressManager> {
        self.addrmans.get(&peer)
    }

    /// Number of inbound connections a peer currently has.
    #[must_use]
    pub fn inbound_count(&self, peer: NodeId) -> Option<usize> {
        self.graph.in_request_count(peer)
    }

    /// Number of outbound connections a peer currently has.
    #[must_use]
    pub fn outbound_count(&self, peer: NodeId) -> Option<usize> {
        self.graph.out_degree(peer)
    }

    fn spawn_peer(&mut self, time: f64) -> (NodeId, u32) {
        let id = self.alloc.next_id();
        let idx = self
            .graph
            .add_node_indexed(id, self.config.target_outbound)
            .expect("allocator never reuses identifiers");
        let mut addrman = AddressManager::new(self.config.addrman_capacity);
        // DNS-seed bootstrap: a random sample of currently online peers.
        for _ in 0..self.config.dns_seed_addresses {
            if let Some(seed_addr) = self.alive.sample(&mut self.rng) {
                addrman.insert(seed_addr, &mut self.rng);
            }
        }
        self.addrmans.insert(id, addrman);
        self.alive.insert(id);
        self.birth_time.insert(id, time);
        self.newest = Some(id);
        // Open outbound connections right away, like a starting node would.
        self.fill_outbound(id);
        (id, idx)
    }

    fn kill_peer(&mut self, victim: NodeId, victim_idx: u32) {
        self.alive.remove(victim);
        self.birth_time.remove(&victim);
        self.addrmans.remove(&victim);
        if self.newest == Some(victim) {
            self.newest = None;
        }
        // Dangling out-slots of surviving peers are re-filled lazily during their
        // next maintenance round (a real node notices the disconnection and then
        // dials a new address).
        self.graph
            .remove_node_at(victim_idx)
            .expect("victim sampled from the alive set");
    }

    /// Tries to fill every empty outbound slot of `peer` with a connection to an
    /// address from its address manager, respecting the targets' inbound caps.
    ///
    /// Runs on the graph's dense slab indices (mirroring the PR 3 port of the
    /// gossip relay): the peer resolves through the identifier map once, the
    /// empty-slot scan walks the record's slot array directly into a reused
    /// buffer, and each dialled candidate pays exactly one identifier lookup
    /// (`dense_index_of`, which doubles as the liveness check) — the
    /// per-candidate `contains` / `has_edge` / `in_request_count` /
    /// `set_out_slot` hash resolutions of the identifier API are gone. The
    /// addrman sampling order is unchanged, so trajectories are identical.
    fn fill_outbound(&mut self, peer: NodeId) {
        let Some(peer_idx) = self.graph.dense_index_of(peer) else {
            return;
        };
        let Some(mut addrman) = self.addrmans.remove(&peer) else {
            return;
        };
        let mut empty_slots = std::mem::take(&mut self.slot_scratch);
        empty_slots.clear();
        empty_slots.extend(
            self.graph
                .out_slot_targets_at(peer_idx)
                .enumerate()
                .filter_map(|(slot, target)| target.is_none().then_some(slot)),
        );
        for &slot in &empty_slots {
            // A handful of attempts per slot, like a dialler working through its
            // address table.
            for _ in 0..8 {
                self.connect_attempts += 1;
                let Some(candidate) = addrman.sample(&mut self.rng) else {
                    break;
                };
                if candidate == peer {
                    continue;
                }
                let Some(candidate_idx) = self.graph.dense_index_of(candidate) else {
                    // Stale address: the peer has gone offline; prune it.
                    addrman.remove(candidate);
                    self.stale_addresses_pruned += 1;
                    continue;
                };
                if self.graph.has_edge_at(peer_idx, candidate_idx) {
                    continue; // already connected (either direction)
                }
                let inbound = self
                    .graph
                    .in_request_count_at(candidate_idx)
                    .expect("candidate is alive");
                if inbound >= self.config.max_inbound {
                    continue;
                }
                self.graph
                    .set_out_slot_at(peer_idx, slot, candidate_idx)
                    .expect("valid connection");
                self.connect_successes += 1;
                break;
            }
        }
        self.slot_scratch = empty_slots;
        self.addrmans.insert(peer, addrman);
    }

    /// Exchanges addresses between `peer` and one of its current neighbours.
    ///
    /// The relay partner is drawn through the dense slab adjacency (one
    /// neighbour-list walk into a reused scratch buffer, one identifier
    /// resolution for the chosen partner) instead of the identifier-based
    /// `neighbors()` query, which allocated and sorted the full
    /// distinct-neighbour set per call — this runs once per peer per
    /// maintenance round, making it the overlay's hottest relay loop.
    fn gossip_addresses(&mut self, peer: NodeId) {
        let Some(peer_idx) = self.graph.dense_index_of(peer) else {
            return;
        };
        let mut scratch = std::mem::take(&mut self.gossip_scratch);
        scratch.clear();
        self.graph.neighbors_dense_into(peer_idx, &mut scratch);
        let partner = if scratch.is_empty() {
            None
        } else {
            // The maintenance rules never create a duplicate link between a
            // pair (dials check `has_edge` in both directions), so the dense
            // incident-link list is duplicate-free and this is a uniform draw
            // over the distinct neighbours.
            let partner_idx = scratch[self.rng.gen_range(0..scratch.len())];
            self.graph.id_at(partner_idx)
        };
        self.gossip_scratch = scratch;
        let Some(partner) = partner else {
            return;
        };
        let Some(mut mine) = self.addrmans.remove(&peer) else {
            return;
        };
        let Some(mut theirs) = self.addrmans.remove(&partner) else {
            self.addrmans.insert(peer, mine);
            return;
        };
        let count = self.config.gossip_addresses;
        // Each side advertises a sample of its table plus its own address.
        let mut outgoing = mine.sample_many(count, &mut self.rng);
        outgoing.push(peer);
        let mut incoming = theirs.sample_many(count, &mut self.rng);
        incoming.push(partner);
        for addr in incoming {
            if addr != peer {
                mine.insert(addr, &mut self.rng);
            }
        }
        for addr in outgoing {
            if addr != partner {
                theirs.insert(addr, &mut self.rng);
            }
        }
        self.addrmans.insert(peer, mine);
        self.addrmans.insert(partner, theirs);
    }

    /// One maintenance pass over all online peers: re-fill missing outbound
    /// connections and gossip addresses.
    fn maintenance(&mut self) {
        let peers: Vec<NodeId> = self.alive.as_slice().to_vec();
        for peer in &peers {
            if self.graph.contains(*peer) {
                self.fill_outbound(*peer);
            }
        }
        for peer in peers {
            if self.graph.contains(peer) {
                self.gossip_addresses(peer);
            }
        }
    }

    /// Advances the underlying churn process until `target` through the
    /// shared [`churn_core::driver::poisson_advance_until`] jump-chain loop
    /// (the very loop the Poisson baselines run).
    fn advance_churn_until(&mut self, target: f64) -> ChurnSummary {
        let mut summary = ChurnSummary::new();
        let chain = self.chain;
        let mut clock = JumpClock {
            time: self.time,
            jumps: self.jumps,
        };
        driver::poisson_advance_until(self, &chain, &mut clock, target, &mut summary);
        self.time = clock.time;
        self.jumps = clock.jumps;
        summary
    }
}

/// Driver hooks (see [`churn_core::driver`]): the overlay contributes peer
/// bootstrap/teardown; deaths are sampled from its own alive-set (identical
/// distribution and draw order to the pre-extraction loop).
impl ChurnHost for P2pNetwork {
    fn spawn(&mut self, time: f64) -> (NodeId, u32) {
        self.spawn_peer(time)
    }

    fn kill(&mut self, victim: NodeId, victim_idx: u32, _time: f64) {
        self.kill_peer(victim, victim_idx);
    }
}

impl PoissonChurnHost for P2pNetwork {
    fn draw_jump(&mut self, chain: &BirthDeathChain) -> Jump {
        chain.next_jump(self.alive.len() as u64, &mut self.rng)
    }

    fn sample_victim(&mut self) -> (NodeId, u32) {
        let victim = self
            .alive
            .sample(&mut self.rng)
            .expect("death events require an alive peer");
        let victim_idx = self
            .graph
            .dense_index_of(victim)
            .expect("alive peers are in the graph");
        (victim, victim_idx)
    }
}

impl DynamicNetwork for P2pNetwork {
    fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    fn degree_parameter(&self) -> usize {
        self.config.target_outbound
    }

    fn expected_size(&self) -> usize {
        self.config.expected_peers
    }

    fn edge_policy(&self) -> EdgePolicy {
        // Outbound connections are continuously repaired, which is exactly the
        // regeneration rule of the paper's models.
        EdgePolicy::Regenerate
    }

    fn model_kind(&self) -> ModelKind {
        // The overlay is the realistic counterpart of the Poisson model with
        // edge regeneration; analyses treat it as such.
        ModelKind::Pdgr
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn churn_steps(&self) -> u64 {
        self.jumps
    }

    fn birth_time(&self, id: NodeId) -> Option<f64> {
        self.birth_time.get(&id).copied()
    }

    fn newest_node(&self) -> Option<NodeId> {
        self.newest.filter(|id| self.graph.contains(*id))
    }

    fn advance_time_unit(&mut self) -> ChurnSummary {
        let target = self.time + 1.0;
        let summary = self.advance_churn_until(target);
        self.maintenance();
        summary
    }

    fn warm_up(&mut self) {
        while !self.is_warm() {
            self.advance_time_unit();
        }
    }

    fn is_warm(&self) -> bool {
        self.time >= 3.0 * self.config.expected_peers as f64
    }

    fn drain_events(&mut self) -> Vec<ModelEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_graph::traversal::connected_components;
    use churn_graph::Snapshot;

    fn overlay(n: usize, seed: u64) -> P2pNetwork {
        let mut net = P2pNetwork::new(
            P2pConfig::new(n)
                .target_outbound(8)
                .dns_seed_addresses(32)
                .seed(seed),
        )
        .unwrap();
        net.warm_up();
        net
    }

    #[test]
    fn construction_rejects_invalid_config() {
        assert!(P2pNetwork::new(P2pConfig::new(1)).is_err());
        assert!(P2pNetwork::new(P2pConfig::new(100).target_outbound(0)).is_err());
    }

    #[test]
    fn population_concentrates_near_expected_peers() {
        let net = overlay(150, 1);
        let size = net.alive_count() as f64;
        assert!(
            size > 0.6 * 150.0 && size < 1.4 * 150.0,
            "overlay size {size} should be near 150"
        );
    }

    #[test]
    fn most_peers_hold_their_target_outbound_connections() {
        let net = overlay(150, 2);
        let peers = net.alive_ids();
        let full = peers
            .iter()
            .filter(|&&p| net.outbound_count(p) == Some(8))
            .count();
        assert!(
            full as f64 / peers.len() as f64 > 0.8,
            "only {full}/{} peers reached the outbound target",
            peers.len()
        );
        net.graph().assert_invariants();
    }

    #[test]
    fn inbound_caps_are_respected() {
        let mut net = P2pNetwork::new(
            P2pConfig::new(120)
                .target_outbound(6)
                .max_inbound(10)
                .seed(3),
        )
        .unwrap();
        net.warm_up();
        for peer in net.alive_ids() {
            assert!(
                net.inbound_count(peer).unwrap() <= 10,
                "peer {peer} exceeded the inbound cap"
            );
        }
    }

    #[test]
    fn overlay_stays_connected_under_churn() {
        let mut net = overlay(150, 4);
        for _ in 0..100 {
            net.advance_time_unit();
        }
        let comps = connected_components(&Snapshot::of(net.graph()));
        assert!(
            comps.largest_fraction() > 0.95,
            "overlay fragmentation: largest component only {:.2}",
            comps.largest_fraction()
        );
    }

    #[test]
    fn address_managers_learn_addresses_via_gossip() {
        let net = overlay(100, 5);
        let mut sizes: Vec<usize> = net
            .alive_ids()
            .into_iter()
            .filter_map(|p| net.addrman(p).map(AddressManager::len))
            .collect();
        sizes.sort_unstable();
        assert!(!sizes.is_empty());
        let median = sizes[sizes.len() / 2];
        assert!(
            median > 32,
            "gossip should grow address tables beyond the DNS bootstrap (median {median})"
        );
    }

    #[test]
    fn stats_reflect_activity() {
        let net = overlay(80, 6);
        let stats = net.stats();
        assert!(stats.connect_attempts > 0);
        assert!(stats.connect_successes > 0);
        assert!(stats.connect_successes <= stats.connect_attempts);
    }

    #[test]
    fn dynamic_network_impl_is_consistent() {
        let mut net = overlay(80, 7);
        assert_eq!(net.model_kind(), ModelKind::Pdgr);
        assert_eq!(net.degree_parameter(), 8);
        assert_eq!(net.expected_size(), 80);
        assert!(net.edge_policy().regenerates());
        assert!(net.is_warm());
        let before = net.time();
        let summary = net.advance_time_unit();
        assert!((net.time() - before - 1.0).abs() < 1e-9);
        let _ = summary;
        assert!(net.drain_events().is_empty());
        if let Some(newest) = net.newest_node() {
            assert!(net.contains(newest));
            assert!(net.birth_time(newest).is_some());
        }
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = overlay(60, 8);
        let b = overlay(60, 8);
        assert_eq!(a.alive_ids(), b.alive_ids());
        assert_eq!(a.stats(), b.stats());
    }
}
