//! Overlay health metrics.

use serde::{Deserialize, Serialize};

use churn_core::DynamicNetwork;
use churn_graph::traversal::connected_components;
use churn_graph::Snapshot;
use churn_stochastic::OnlineStats;

use crate::P2pNetwork;

/// A snapshot of the overlay's structural health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayHealth {
    /// Number of online peers.
    pub peers: usize,
    /// Mean number of outbound connections per peer.
    pub mean_outbound: f64,
    /// Mean number of inbound connections per peer.
    pub mean_inbound: f64,
    /// Largest number of inbound connections observed on any peer.
    pub max_inbound: usize,
    /// Number of peers with no connections at all.
    pub isolated_peers: usize,
    /// Fraction of peers in the largest connected component.
    pub largest_component_fraction: f64,
    /// Mean number of addresses known per peer.
    pub mean_addrman_size: f64,
    /// Fraction of known addresses that refer to peers no longer online.
    pub stale_address_fraction: f64,
}

/// Computes the current [`OverlayHealth`] of an overlay.
#[must_use]
pub fn overlay_health(overlay: &P2pNetwork) -> OverlayHealth {
    let graph = overlay.graph();
    let peers = overlay.alive_ids();
    let mut outbound = OnlineStats::new();
    let mut inbound = OnlineStats::new();
    let mut addrman_size = OnlineStats::new();
    let mut max_inbound = 0usize;
    let mut isolated = 0usize;
    let mut known_addresses = 0u64;
    let mut stale_addresses = 0u64;

    for &peer in &peers {
        let out = overlay.outbound_count(peer).unwrap_or(0);
        let inb = overlay.inbound_count(peer).unwrap_or(0);
        outbound.push(out as f64);
        inbound.push(inb as f64);
        max_inbound = max_inbound.max(inb);
        if graph.is_isolated(peer).unwrap_or(false) {
            isolated += 1;
        }
        if let Some(addrman) = overlay.addrman(peer) {
            addrman_size.push(addrman.len() as f64);
            for &addr in addrman.addresses() {
                known_addresses += 1;
                if !graph.contains(addr) {
                    stale_addresses += 1;
                }
            }
        }
    }

    let components = connected_components(&Snapshot::of(graph));

    OverlayHealth {
        peers: peers.len(),
        mean_outbound: outbound.mean(),
        mean_inbound: inbound.mean(),
        max_inbound,
        isolated_peers: isolated,
        largest_component_fraction: components.largest_fraction(),
        mean_addrman_size: addrman_size.mean(),
        stale_address_fraction: if known_addresses == 0 {
            0.0
        } else {
            stale_addresses as f64 / known_addresses as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::P2pConfig;

    #[test]
    fn healthy_overlay_metrics() {
        let mut net = P2pNetwork::new(P2pConfig::new(120).seed(11)).unwrap();
        net.warm_up();
        let health = overlay_health(&net);
        assert_eq!(health.peers, net.alive_count());
        assert!(
            health.mean_outbound > 6.0,
            "mean outbound {}",
            health.mean_outbound
        );
        assert!(
            health.mean_inbound > 6.0,
            "inbound mirrors outbound on average"
        );
        assert!(health.max_inbound <= 125);
        assert_eq!(health.isolated_peers, 0);
        assert!(health.largest_component_fraction > 0.95);
        assert!(health.mean_addrman_size > 10.0);
        assert!((0.0..=1.0).contains(&health.stale_address_fraction));
    }

    #[test]
    fn empty_overlay_health_is_zeroed() {
        let net = P2pNetwork::new(P2pConfig::new(50).seed(0)).unwrap();
        let health = overlay_health(&net);
        assert_eq!(health.peers, 0);
        assert_eq!(health.mean_outbound, 0.0);
        assert_eq!(health.stale_address_fraction, 0.0);
        assert_eq!(health.largest_component_fraction, 0.0);
    }
}
