//! Block propagation over the overlay.
//!
//! A new block announced by one peer reaches the rest of the network by
//! flooding: every peer forwards it to all of its current neighbours one
//! message delay after receiving it. This is exactly the paper's flooding
//! process, so the implementation simply drives
//! [`churn_core::flooding::run_flooding`] over the overlay and re-packages the
//! result in block-propagation terms.

use serde::{Deserialize, Serialize};

use churn_core::flooding::{run_flooding, FloodingConfig, FloodingRecord, FloodingSource};
use churn_core::{DynamicNetwork, NodeId};

use crate::P2pNetwork;

/// Summary of one block propagation over the overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// The peer that announced the block.
    pub origin: NodeId,
    /// Message delays until half of the online peers had the block.
    pub delays_to_half: Option<u64>,
    /// Message delays until 99% of the online peers had the block.
    pub delays_to_99: Option<u64>,
    /// Message delays until every peer (alive across the last delay) had the
    /// block, if that happened within the round cap.
    pub delays_to_full: Option<u64>,
    /// Fraction of online peers holding the block at the end of the run.
    pub final_coverage: f64,
    /// The underlying flooding record (per-round coverage trace).
    pub record: FloodingRecord,
}

impl PropagationReport {
    /// Returns `true` when the block reached (essentially) the whole overlay.
    #[must_use]
    pub fn is_full_coverage(&self) -> bool {
        self.delays_to_full.is_some()
    }
}

/// Propagates a block from a freshly joined peer (the paper's source
/// convention) and reports coverage milestones.
pub fn propagate_block(overlay: &mut P2pNetwork, max_delays: u64) -> PropagationReport {
    propagate_block_from(overlay, FloodingSource::NextToJoin, max_delays)
}

/// Propagates a block from a chosen origin.
pub fn propagate_block_from(
    overlay: &mut P2pNetwork,
    source: FloodingSource,
    max_delays: u64,
) -> PropagationReport {
    let record = run_flooding(
        overlay,
        source,
        &FloodingConfig::with_max_rounds(max_delays),
    );
    summarize(record)
}

fn summarize(record: FloodingRecord) -> PropagationReport {
    let delays_to_half = record.rounds_to_fraction(0.5);
    let delays_to_99 = record.rounds_to_fraction(0.99);
    let delays_to_full = match &record.outcome {
        churn_core::flooding::FloodingOutcome::Completed { rounds } => Some(*rounds),
        _ => None,
    };
    PropagationReport {
        origin: record.source,
        delays_to_half,
        delays_to_99,
        delays_to_full,
        final_coverage: record.final_fraction(),
        record,
    }
}

/// Propagates `blocks` consecutive blocks (each from a fresh joiner, separated
/// by `gap` time units of pure churn) and returns the reports.
pub fn propagate_block_series(
    overlay: &mut P2pNetwork,
    blocks: usize,
    gap: u64,
    max_delays: u64,
) -> Vec<PropagationReport> {
    let mut reports = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        reports.push(propagate_block(overlay, max_delays));
        overlay.advance_time_units(gap);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::P2pConfig;

    fn overlay(n: usize, seed: u64) -> P2pNetwork {
        let mut net = P2pNetwork::new(P2pConfig::new(n).seed(seed)).unwrap();
        net.warm_up();
        net
    }

    #[test]
    fn blocks_reach_nearly_every_peer_quickly() {
        let mut net = overlay(200, 1);
        let report = propagate_block(&mut net, 100);
        assert!(
            report.final_coverage > 0.95,
            "block coverage only {:.2}",
            report.final_coverage
        );
        let to_99 = report.delays_to_99.expect("99% coverage reached");
        assert!(
            to_99 <= 25,
            "99% coverage took {to_99} delays, far beyond O(log 200)"
        );
        assert!(report.delays_to_half.unwrap() <= to_99);
    }

    #[test]
    fn full_coverage_is_reported_when_complete() {
        let mut net = overlay(150, 2);
        let report = propagate_block(&mut net, 200);
        if report.is_full_coverage() {
            assert!(report.delays_to_full.unwrap() >= report.delays_to_99.unwrap_or(0));
            assert!(report.final_coverage > 0.99);
        } else {
            // Even without formal completion the coverage must be near-total.
            assert!(report.final_coverage > 0.9);
        }
    }

    #[test]
    fn block_series_produces_one_report_per_block() {
        let mut net = overlay(100, 3);
        let reports = propagate_block_series(&mut net, 3, 5, 100);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.final_coverage > 0.8);
            assert!(!r.record.rounds.is_empty());
        }
        // Origins are distinct freshly joined peers.
        assert_ne!(reports[0].origin, reports[1].origin);
    }
}
