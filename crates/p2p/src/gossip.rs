//! Block propagation over the overlay.
//!
//! A new block announced by one peer reaches the rest of the network by
//! flooding: every peer forwards it to all of its current neighbours one
//! message delay after receiving it. This is exactly the paper's flooding
//! process, so the implementation simply drives
//! [`churn_core::flooding::run_flooding`] over the overlay and re-packages the
//! result in block-propagation terms.
//!
//! The relay is generic over [`DynamicNetwork`]
//! ([`propagate_block_over`] / [`propagate_block_from_over`]), so blocks can
//! be relayed over any topology-maintenance substrate — the Bitcoin-Core-like
//! [`P2pNetwork`], or a [`RaesModel`]-maintained bounded-in-degree expander
//! built with [`raes_overlay`]. Under the hood everything runs on the dense
//! slab indices (the flooding bitset and, since the `AddressManager` /
//! relay-partner ports, the overlay's own maintenance loops), so no relay hot
//! path resolves identifiers through a hash table. At overlay sizes past
//! ~10^5 peers, [`propagate_block_parallel`] shards the per-delay frontier
//! expansion across the rayon pool.

use serde::{Deserialize, Serialize};

use churn_core::flooding::{
    run_flooding, run_flooding_parallel, FloodingConfig, FloodingRecord, FloodingSource,
};
use churn_core::{DynamicNetwork, NodeId, Result};
use churn_protocol::{ChurnDriver, RaesConfig, RaesModel};

use crate::{P2pConfig, P2pNetwork};

/// Summary of one block propagation over the overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// The peer that announced the block.
    pub origin: NodeId,
    /// Message delays until half of the online peers had the block.
    pub delays_to_half: Option<u64>,
    /// Message delays until 99% of the online peers had the block.
    pub delays_to_99: Option<u64>,
    /// Message delays until every peer (alive across the last delay) had the
    /// block, if that happened within the round cap.
    pub delays_to_full: Option<u64>,
    /// Fraction of online peers holding the block at the end of the run.
    pub final_coverage: f64,
    /// The underlying flooding record (per-round coverage trace).
    pub record: FloodingRecord,
}

impl PropagationReport {
    /// Returns `true` when the block reached (essentially) the whole overlay.
    #[must_use]
    pub fn is_full_coverage(&self) -> bool {
        self.delays_to_full.is_some()
    }
}

/// Propagates a block from a freshly joined peer (the paper's source
/// convention) and reports coverage milestones.
pub fn propagate_block(overlay: &mut P2pNetwork, max_delays: u64) -> PropagationReport {
    propagate_block_from(overlay, FloodingSource::NextToJoin, max_delays)
}

/// Propagates a block from a chosen origin.
pub fn propagate_block_from(
    overlay: &mut P2pNetwork,
    source: FloodingSource,
    max_delays: u64,
) -> PropagationReport {
    propagate_block_from_over(overlay, source, max_delays)
}

/// [`propagate_block`] over any dynamic-network substrate (the overlay, a
/// [`RaesModel`] built with [`raes_overlay`], or one of the paper models).
pub fn propagate_block_over<M: DynamicNetwork>(
    overlay: &mut M,
    max_delays: u64,
) -> PropagationReport {
    propagate_block_from_over(overlay, FloodingSource::NextToJoin, max_delays)
}

/// [`propagate_block_from`] over any dynamic-network substrate.
pub fn propagate_block_from_over<M: DynamicNetwork>(
    overlay: &mut M,
    source: FloodingSource,
    max_delays: u64,
) -> PropagationReport {
    let record = run_flooding(
        overlay,
        source,
        &FloodingConfig::with_max_rounds(max_delays),
    );
    summarize(record)
}

/// [`propagate_block_over`] with the sharded parallel frontier engine: same
/// report delay-for-delay, but each relay hop fans across `threads` workers
/// (`0` = one per pool thread). Worth it from roughly 10^5 online peers.
pub fn propagate_block_parallel<M: DynamicNetwork>(
    overlay: &mut M,
    max_delays: u64,
    threads: usize,
) -> PropagationReport {
    let record = run_flooding_parallel(
        overlay,
        FloodingSource::NextToJoin,
        &FloodingConfig::with_max_rounds(max_delays),
        threads,
    );
    summarize(record)
}

/// Builds a [`RaesModel`]-maintained overlay from Bitcoin-Core-style
/// parameters: a bounded-in-degree expander under the same Poisson churn as
/// [`P2pNetwork`], maintained by the RAES request/accept/reject protocol
/// instead of addrman dialling. The mapping is direct — `expected_peers → n`,
/// `target_outbound → d`, and the inbound cap becomes the RAES capacity
/// factor `c = max_inbound / target_outbound` (the defaults give
/// `c = 125/8`, i.e. an in-degree cap of exactly 125).
///
/// The result implements [`DynamicNetwork`], so [`propagate_block_over`] and
/// the `health`/analysis machinery drive it like the dialling overlay.
///
/// # Errors
///
/// Propagates `RaesConfig` validation errors (degenerate sizes, zero degree,
/// or `max_inbound < target_outbound`, which would mean a capacity factor
/// below 1).
pub fn raes_overlay(config: &P2pConfig) -> Result<RaesModel> {
    let capacity_factor = config.max_inbound as f64 / config.target_outbound.max(1) as f64;
    RaesModel::new(
        RaesConfig::new(config.expected_peers, config.target_outbound)
            .capacity_factor(capacity_factor)
            .churn(ChurnDriver::Poisson)
            .seed(config.seed),
    )
}

fn summarize(record: FloodingRecord) -> PropagationReport {
    let delays_to_half = record.rounds_to_fraction(0.5);
    let delays_to_99 = record.rounds_to_fraction(0.99);
    let delays_to_full = match &record.outcome {
        churn_core::flooding::FloodingOutcome::Completed { rounds } => Some(*rounds),
        _ => None,
    };
    PropagationReport {
        origin: record.source,
        delays_to_half,
        delays_to_99,
        delays_to_full,
        final_coverage: record.final_fraction(),
        record,
    }
}

/// Propagates `blocks` consecutive blocks (each from a fresh joiner, separated
/// by `gap` time units of pure churn) and returns the reports.
pub fn propagate_block_series(
    overlay: &mut P2pNetwork,
    blocks: usize,
    gap: u64,
    max_delays: u64,
) -> Vec<PropagationReport> {
    let mut reports = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        reports.push(propagate_block(overlay, max_delays));
        overlay.advance_time_units(gap);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::P2pConfig;

    fn overlay(n: usize, seed: u64) -> P2pNetwork {
        let mut net = P2pNetwork::new(P2pConfig::new(n).seed(seed)).unwrap();
        net.warm_up();
        net
    }

    #[test]
    fn blocks_reach_nearly_every_peer_quickly() {
        let mut net = overlay(200, 1);
        let report = propagate_block(&mut net, 100);
        assert!(
            report.final_coverage > 0.95,
            "block coverage only {:.2}",
            report.final_coverage
        );
        let to_99 = report.delays_to_99.expect("99% coverage reached");
        assert!(
            to_99 <= 25,
            "99% coverage took {to_99} delays, far beyond O(log 200)"
        );
        assert!(report.delays_to_half.unwrap() <= to_99);
    }

    #[test]
    fn full_coverage_is_reported_when_complete() {
        let mut net = overlay(150, 2);
        let report = propagate_block(&mut net, 200);
        if report.is_full_coverage() {
            assert!(report.delays_to_full.unwrap() >= report.delays_to_99.unwrap_or(0));
            assert!(report.final_coverage > 0.99);
        } else {
            // Even without formal completion the coverage must be near-total.
            assert!(report.final_coverage > 0.9);
        }
    }

    #[test]
    fn blocks_relay_over_a_raes_maintained_overlay() {
        let config = P2pConfig::new(200).seed(4);
        let mut overlay = raes_overlay(&config).unwrap();
        assert_eq!(overlay.in_degree_cap(), 125, "Bitcoin-Core inbound cap");
        assert_eq!(overlay.degree_parameter(), 8);
        overlay.warm_up();
        let report = propagate_block_over(&mut overlay, 100);
        assert!(
            report.final_coverage > 0.95,
            "block coverage only {:.2} over RAES",
            report.final_coverage
        );
        // The parallel relay produces the identical report on the same seed.
        let mut overlay2 = raes_overlay(&config).unwrap();
        overlay2.warm_up();
        let parallel = propagate_block_parallel(&mut overlay2, 100, 4);
        assert_eq!(report, parallel);
    }

    #[test]
    fn raes_overlay_rejects_sub_unit_capacity() {
        let config = P2pConfig::new(200).target_outbound(8).max_inbound(4);
        assert!(raes_overlay(&config).is_err(), "c = 0.5 must be rejected");
    }

    #[test]
    fn block_series_produces_one_report_per_block() {
        let mut net = overlay(100, 3);
        let reports = propagate_block_series(&mut net, 3, 5, 100);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.final_coverage > 0.8);
            assert!(!r.record.rounds.is_empty());
        }
        // Origins are distinct freshly joined peers.
        assert_ne!(reports[0].origin, reports[1].origin);
    }
}
