//! The unified scenario engine: declarative experiment specs, one runner,
//! checkpoint/resume.
//!
//! A [`Scenario`] declares an experiment as data — the grid axes (network
//! spec × size × degree × victim policy × trial), one [`Measurement`], and a
//! full plus a smoke preset — instead of a bespoke binary with hand-rolled
//! sweep loops. [`run_scenario`] executes the grid's cells through the same
//! thread budgeting as [`crate::run_sweep`] (batch-level parallelism shares
//! the pool with the sharded in-cell engines), streams one JSON record per
//! completed cell to `results/<name>.jsonl`, and **checkpoints**: a cell
//! whose deterministic seed already appears in the output file is skipped on
//! the next run, so an interrupted grid resumes where it stopped and the
//! resumed file is bit-identical to an uninterrupted run.
//!
//! Cell identity is the deterministic per-cell seed: it is derived from the
//! cell's *values* (network spec, `n`, `d`, victim policy, trial index,
//! scenario base seed) exactly like [`crate::Sweep::trial_seed`] — for the
//! baseline model kinds and the default RAES configuration the two schemes
//! coincide, so scenarios ported from `run_sweep`-based binaries reproduce
//! their recorded trajectories bit for bit (the golden-equivalence suite in
//! `churn-bench` pins this).
//!
//! [`ScenarioRegistry`] collects every registered scenario; the `exp` binary
//! in `churn-bench` is the single CLI over the registry
//! (`exp run <name>|--all [--smoke] [--resume]`).

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use rayon::prelude::*;

use churn_core::driver::VictimPolicy;
use churn_core::ModelKind;
use churn_event::{
    BandwidthModel, CrashRestart, FaultPlan, LatencyModel, LossModel, PartitionWindow,
};
use churn_protocol::{AdversaryModel, ChurnDriver, RaesConfig, SaturationPolicy};
use churn_stochastic::rng::derive_seed;
use churn_telemetry::PhaseProfiler;

use crate::minijson;
use crate::store::{escape_json, format_value};

mod measure;

pub use measure::AnyNet;

// ---------------------------------------------------------------------------
// Network specs (the model axis of the grid)
// ---------------------------------------------------------------------------

/// Parameters of a RAES protocol network on the grid (the protocol's
/// scenario axes: churn driver, saturation policy, capacity factor and the
/// attempts-per-round knob).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaesNet {
    /// Churn process underneath the protocol.
    pub churn: ChurnDriver,
    /// Saturation policy at the in-degree cap.
    pub saturation: SaturationPolicy,
    /// In-degree capacity factor `c` (cap = `⌊c·d⌋`).
    pub capacity: f64,
    /// Repair contacts per pending request per round (≥ 1).
    pub attempts: usize,
    /// Byzantine adversary corrupting a fraction of spawns
    /// ([`AdversaryModel::None`] leaves the honest protocol bit-identical).
    pub adversary: AdversaryModel,
}

impl Default for RaesNet {
    fn default() -> Self {
        RaesNet {
            churn: ChurnDriver::Streaming,
            saturation: SaturationPolicy::RejectRetry,
            capacity: RaesConfig::DEFAULT_CAPACITY_FACTOR,
            attempts: 1,
            adversary: AdversaryModel::None,
        }
    }
}

/// One point on the scenario's network axis: which dynamic network a cell
/// builds. This generalises `ModelKind` to everything the workspace can
/// measure — the paper's four baselines, the RAES maintenance protocol with
/// its knobs, the static no-churn baseline and the Bitcoin-like overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetSpec {
    /// One of the paper's four models (built via `ModelKind::build_with_victim`).
    Baseline(ModelKind),
    /// The RAES maintenance protocol with explicit knobs.
    Raes(RaesNet),
    /// A static `d`-out random graph (no churn; Lemma B.1's baseline).
    Static,
    /// The Bitcoin-like `churn-p2p` overlay (`d` = target outbound, max
    /// inbound 125).
    P2p,
}

impl NetSpec {
    /// The default RAES network (streaming churn, reject-and-retry, `c` =
    /// 1.5, one attempt) — seed-compatible with `ModelKind::Raes` sweeps.
    #[must_use]
    pub fn raes_default() -> Self {
        NetSpec::Raes(RaesNet::default())
    }

    /// A short, stable label for reports and stored records, e.g. `SDGR`,
    /// `RAES`, `RAES+poisson+evict-oldest`, `RAES+c1+a4`, `STATIC`, `P2P`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            NetSpec::Baseline(kind) => kind.label().to_string(),
            NetSpec::Raes(spec) => {
                let mut label = String::from("RAES");
                if spec.churn == ChurnDriver::Poisson {
                    label.push_str("+poisson");
                }
                if spec.saturation == SaturationPolicy::EvictOldest {
                    label.push_str("+evict-oldest");
                }
                if spec.capacity != RaesConfig::DEFAULT_CAPACITY_FACTOR {
                    label.push_str(&format!("+c{}", spec.capacity));
                }
                if spec.attempts != 1 {
                    label.push_str(&format!("+a{}", spec.attempts));
                }
                match spec.adversary {
                    AdversaryModel::None => {}
                    AdversaryModel::Uniform { fraction, attack } => {
                        label.push_str(&format!("+byz-{attack}-f{fraction}"));
                    }
                    AdversaryModel::Eclipse { fraction, attack } => {
                        label.push_str(&format!("+eclipse-{attack}-f{fraction}"));
                    }
                    AdversaryModel::JoinFlood {
                        fraction,
                        cohort,
                        attack,
                    } => {
                        label.push_str(&format!("+joinflood-{attack}-f{fraction}-k{cohort}"));
                    }
                }
                label
            }
            NetSpec::Static => "STATIC".to_string(),
            NetSpec::P2p => "P2P".to_string(),
        }
    }

    /// The seed tag of this network spec. Baseline kinds and the default
    /// RAES spec use exactly the tags of [`crate::Sweep::trial_seed`]
    /// (1–5), so ported scenarios keep their recorded seeds; every
    /// non-default RAES knob mixes a further tag, and the two new net kinds
    /// get fresh tags.
    fn seed_tag(&self) -> u64 {
        match self {
            NetSpec::Baseline(kind) => match kind {
                ModelKind::Sdg => 1,
                ModelKind::Sdgr => 2,
                ModelKind::Pdg => 3,
                ModelKind::Pdgr => 4,
                ModelKind::Raes => 5,
            },
            NetSpec::Raes(spec) => {
                let mut tag = 5;
                if spec.churn == ChurnDriver::Poisson {
                    tag = derive_seed(tag, 0x5AE5_0001);
                }
                if spec.saturation == SaturationPolicy::EvictOldest {
                    tag = derive_seed(tag, 0x5AE5_0002);
                }
                if spec.capacity != RaesConfig::DEFAULT_CAPACITY_FACTOR {
                    tag = derive_seed(tag, spec.capacity.to_bits());
                }
                if spec.attempts != 1 {
                    tag = derive_seed(tag, 0x5AE5_0100 ^ spec.attempts as u64);
                }
                // An active adversary mixes shape, attack and fraction; the
                // inactive default mixes nothing, keeping every recorded
                // honest-RAES cell seed exactly as before.
                // Shape constants live in disjoint low nibbles so
                // `shape ^ attack.seed_code()` (codes 1–4) never collides
                // across shapes.
                match spec.adversary {
                    AdversaryModel::None => {}
                    AdversaryModel::Uniform { fraction, attack } => {
                        tag = derive_seed(tag, 0xB12A_0010 ^ attack.seed_code());
                        tag = derive_seed(tag, fraction.to_bits());
                    }
                    AdversaryModel::Eclipse { fraction, attack } => {
                        tag = derive_seed(tag, 0xB12A_0020 ^ attack.seed_code());
                        tag = derive_seed(tag, fraction.to_bits());
                    }
                    AdversaryModel::JoinFlood {
                        fraction,
                        cohort,
                        attack,
                    } => {
                        tag = derive_seed(tag, 0xB12A_0030 ^ attack.seed_code());
                        tag = derive_seed(tag, fraction.to_bits());
                        tag = derive_seed(tag, u64::from(cohort));
                    }
                }
                tag
            }
            NetSpec::Static => 6,
            NetSpec::P2p => 7,
        }
    }
}

impl std::fmt::Display for NetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

// ---------------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------------

/// The round budget of a flooding measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundBudget {
    /// `factor · ⌈log₂ n⌉` rounds.
    Log2Times(u32),
    /// A fixed round cap.
    Fixed(u64),
    /// The flooding engine's default cap (4096 rounds).
    EngineDefault,
}

impl RoundBudget {
    fn resolve(self, n: usize) -> u64 {
        match self {
            RoundBudget::Log2Times(factor) => u64::from(factor) * (n as f64).log2().ceil() as u64,
            RoundBudget::Fixed(rounds) => rounds,
            RoundBudget::EngineDefault => {
                churn_core::flooding::FloodingConfig::default().max_rounds
            }
        }
    }
}

/// Knobs of the flooding measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodingSpec {
    /// Round budget of the run.
    pub budget: RoundBudget,
    /// Also record the isolated fraction of the warm topology before the
    /// broadcast starts (the failure mode regeneration/RAES repairs).
    pub record_isolation: bool,
}

/// Knobs of the incremental-snapshot expansion measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionSpec {
    /// Churn the model `n / initial_window_div` rounds (through the
    /// incremental snapshot) before the first sample; 0 = sample right after
    /// warm-up.
    pub initial_window_div: usize,
    /// Number of snapshots sampled per trial (the recorded value is the
    /// worst sample — the theorems quantify over *every* snapshot).
    pub samples: usize,
    /// Rounds between samples, as `n / interval_div` (ignored for a single
    /// sample).
    pub interval_div: usize,
    /// Also measure the large-set range (Lemmas 3.6 / 4.11) alongside the
    /// full range.
    pub large_sets: bool,
    /// Use the fast estimator budget (`ExpansionConfig::fast()`), as the
    /// `n = 10⁶` rows do.
    pub fast: bool,
}

/// Knobs of the event-driven asynchronous flooding measurement
/// (`churn-event`): per-message latency, per-node bandwidth, and the
/// simulated-time horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncFloodingSpec {
    /// Per-message latency model.
    pub latency: LatencyModel,
    /// Per-node bandwidth model (FIFO egress queues).
    pub bandwidth: BandwidthModel,
    /// Simulated-time horizon, resolved against `n` like a round budget
    /// (one churn round per unit of simulated time).
    pub horizon: RoundBudget,
}

/// Knobs of the event-driven asynchronous RAES load measurement: repair
/// requests and accepts are messages that queue behind flood traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncRaesSpec {
    /// Per-message latency model.
    pub latency: LatencyModel,
    /// Per-node bandwidth model, shared by repair and flood traffic.
    pub bandwidth: BandwidthModel,
    /// Simulated-time horizon (= churn rounds), resolved against `n`.
    pub horizon: RoundBudget,
    /// Inject a flood from the newest node a quarter into the horizon, so
    /// repair latency is measured *under load*.
    pub flood: bool,
}

/// The asynchronous RAES retry policy of one fault-axis point: exponential
/// backoff with optional jitter and a bounded retransmit budget. It rides
/// the *fault axis* rather than [`AsyncRaesSpec`] because a non-identity
/// policy changes even fault-free trajectories (baseline retransmits exist
/// whenever a reply outwaits the timeout, and jitter draws randomness) — on
/// the fault axis the `none` point keeps the recorded E17 cells bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Exponential-backoff factor (`≥ 1`; the `k`-th retransmission waits
    /// `retry_timeout · factor^k`).
    pub factor: f64,
    /// Jitter fraction on each backoff timeout, in `[0, 1)`.
    pub jitter: f64,
    /// Retransmissions per repair before it is shed (graceful degradation).
    pub budget: u32,
}

impl RetryPolicy {
    /// The engine's identity policy: constant timeout, no jitter, unbounded
    /// budget — bit-identical to PR 7's fixed-timeout behaviour.
    pub const IDENTITY: RetryPolicy = RetryPolicy {
        factor: 1.0,
        jitter: 0.0,
        budget: u32::MAX,
    };
}

/// One point on a scenario's fault axis: a [`FaultPlan`] in `Copy` spec form
/// (at most one partition window) plus the optional RAES retry policy.
///
/// A spec whose every axis is inactive — including one with explicit zero
/// rates — resolves to [`FaultPlan::none`] and mixes *no* seed tag, so
/// fault-rate-0 rows of a fault scenario share their cell seeds (and hence
/// their records, bit for bit) with a fault-free sibling scenario on the
/// same base seed. This is the same anchor trick the Byzantine scenarios
/// use with the default RAES net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-link loss model (`Iid { p: 0.0 }` normalises to `None`).
    pub loss: LossModel,
    /// Duplication probability per delivered message.
    pub duplicate_p: f64,
    /// Reordering probability per delivered copy.
    pub reorder_p: f64,
    /// Maximum holding delay of a reordered copy.
    pub reorder_max: f64,
    /// At most one scheduled partition window.
    pub partition: Option<PartitionWindow>,
    /// Crash–restart process (rate 0 normalises to `None`).
    pub crash: Option<CrashRestart>,
    /// Anti-entropy pull period (async flooding only).
    pub anti_entropy: Option<f64>,
    /// RAES retry policy (async RAES only; `None` = identity).
    pub retry: Option<RetryPolicy>,
}

impl FaultSpec {
    /// The fault-free point of the axis — the default when a scenario never
    /// calls [`Scenario::faults`].
    #[must_use]
    pub fn none() -> Self {
        FaultSpec {
            loss: LossModel::None,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            reorder_max: 0.0,
            partition: None,
            crash: None,
            anti_entropy: None,
            retry: None,
        }
    }

    /// An i.i.d.-loss-only spec (the `lossy-flooding` axis).
    #[must_use]
    pub fn iid_loss(p: f64) -> Self {
        FaultSpec {
            loss: LossModel::Iid { p },
            ..FaultSpec::none()
        }
    }

    /// Resolves the spec into the engine-layer [`FaultPlan`], normalising
    /// inactive axes (zero-rate loss and crash) away so explicit zero-rate
    /// specs resolve to exactly [`FaultPlan::none`].
    #[must_use]
    pub fn resolve(&self) -> FaultPlan {
        let loss = match self.loss {
            LossModel::Iid { p: 0.0 } => LossModel::None,
            other => other,
        };
        FaultPlan {
            loss,
            duplicate_p: self.duplicate_p,
            reorder_p: self.reorder_p,
            reorder_max: if self.reorder_p > 0.0 {
                self.reorder_max
            } else {
                0.0
            },
            partitions: self.partition.into_iter().collect(),
            crash: self.crash.filter(|c| c.rate > 0.0),
            anti_entropy: self.anti_entropy,
        }
    }

    /// `true` when the resolved plan is empty and the retry policy is the
    /// identity — the point whose cells are bit-identical to a fault-free
    /// sibling scenario.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.resolve().is_none() && self.effective_retry() == RetryPolicy::IDENTITY
    }

    /// The retry policy with `None` resolved to the identity.
    #[must_use]
    pub fn effective_retry(&self) -> RetryPolicy {
        self.retry.unwrap_or(RetryPolicy::IDENTITY)
    }

    /// Short label for records, reports and the `exp list` fault column:
    /// the resolved plan's label plus a `retry<budget>x<factor>j<jitter>`
    /// part when a non-identity retry policy is set.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = self.resolve().label();
        let retry = self.effective_retry();
        if retry != RetryPolicy::IDENTITY {
            let part = format!("retry{}x{}j{}", retry.budget, retry.factor, retry.jitter);
            if label == "none" {
                label = part;
            } else {
                label.push('+');
                label.push_str(&part);
            }
        }
        label
    }

    /// The seed tag a non-none spec mixes into the cell seed: a fold of the
    /// label bytes, so distinct fault points get distinct streams and equal
    /// specs written differently (e.g. `Iid { p: 0.0 }` vs. `None`) agree.
    fn seed_tag(&self) -> u64 {
        self.label()
            .bytes()
            .fold(0xFA17_0000_u64, |acc, b| derive_seed(acc, u64::from(b)))
    }

    /// Validates the resolved plan and the retry policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.resolve().validate()?;
        let retry = self.effective_retry();
        if !(retry.factor >= 1.0 && retry.factor.is_finite()) {
            return Err(format!("retry backoff factor {} must be ≥ 1", retry.factor));
        }
        if !(0.0..1.0).contains(&retry.jitter) {
            return Err(format!("retry jitter {} outside [0, 1)", retry.jitter));
        }
        if retry.budget == 0 {
            return Err("retry budget must be at least 1".to_string());
        }
        Ok(())
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// What one cell measures. Every variant runs against the cell's network
/// spec and returns a flat list of named scalar metrics — the record schema
/// is uniform across scenarios, so analysis tooling needs one loader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measurement {
    /// Sequential single-frontier flooding.
    Flooding(FloodingSpec),
    /// Sharded parallel flooding with the `churn-observe` pipeline attached:
    /// the informed-alive overlap is tracked per round through the graph's
    /// change feed, and the *uninformed* population is classified
    /// structurally (isolated / below-`d` degree) at the end of the run.
    ParallelFlooding(FloodingSpec),
    /// Partial-flooding coverage within the `O(log n / log d)` budget of
    /// Theorems 3.8 / 4.13.
    PartialFlooding,
    /// Isolated-now census plus the Lemma 3.5 / 4.10 lifetime-isolation
    /// follow-up over the change feed.
    Isolation,
    /// Vertex expansion of incrementally maintained snapshots.
    Expansion(ExpansionSpec),
    /// RAES realized-graph tracking over time: per-round cap occupancy and
    /// isolation plus periodic full-range expansion (requires RAES nets).
    RaesTracking {
        /// Number of expansion samples.
        samples: u64,
        /// Rounds between samples, as `n / interval_div`.
        interval_div: usize,
    },
    /// Onion-skin replay (Claim 3.10 / Lemma 3.9; requires `Baseline(Sdg)`).
    OnionSkin,
    /// Poisson churn demographics (Lemmas 4.4–4.8; requires a Poisson
    /// baseline).
    PoissonDemographics {
        /// Unit-time observations after the settle-in window (full preset).
        units: u64,
        /// Observations on the smoke preset.
        smoke_units: u64,
    },
    /// Static `d`-out random graph baseline (Lemma B.1; requires
    /// [`NetSpec::Static`]).
    StaticBaseline,
    /// Overlay health and block propagation (requires [`NetSpec::P2p`]).
    P2pPropagation {
        /// Blocks propagated per cell (full preset).
        blocks: usize,
        /// Blocks on the smoke preset.
        smoke_blocks: usize,
    },
    /// Event-driven asynchronous flooding over a churning network: forward
    /// on message arrival, per-message latency, per-node bandwidth; rounds
    /// emerge from the timing. Runs on any dynamic net (baselines, RAES).
    AsyncFlooding(AsyncFloodingSpec),
    /// Event-driven asynchronous RAES repair under message load (requires a
    /// [`NetSpec::Raes`] net with streaming churn and no adversary; the
    /// saturation/attempts knobs do not apply to the message-level model).
    AsyncRaes(AsyncRaesSpec),
}

impl Measurement {
    /// Short kind label (shown by `exp list` next to each scenario).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Measurement::Flooding(_) => "flooding",
            Measurement::ParallelFlooding(_) => "parallel-flooding",
            Measurement::PartialFlooding => "partial-flooding",
            Measurement::Isolation => "isolation",
            Measurement::Expansion(_) => "expansion",
            Measurement::RaesTracking { .. } => "raes-tracking",
            Measurement::OnionSkin => "onion-skin",
            Measurement::PoissonDemographics { .. } => "poisson-demographics",
            Measurement::StaticBaseline => "static-baseline",
            Measurement::P2pPropagation { .. } => "p2p-propagation",
            Measurement::AsyncFlooding(_) => "async-flooding",
            Measurement::AsyncRaes(_) => "async-raes",
        }
    }

    /// Whether this measurement can emit a per-round time series
    /// ([`SeriesRecord`]) when the runner is invoked with
    /// [`RunOptions::series`]: the round-iterating measurements record one
    /// row per round (sync engines) or per unit of simulated time (async
    /// engines, via the scheduler's event trace). The scalar census
    /// measurements have no round structure to record.
    #[must_use]
    pub fn supports_series(&self) -> bool {
        matches!(
            self,
            Measurement::Flooding(_)
                | Measurement::ParallelFlooding(_)
                | Measurement::RaesTracking { .. }
                | Measurement::AsyncFlooding(_)
                | Measurement::AsyncRaes(_)
        )
    }
}

// ---------------------------------------------------------------------------
// Scenario spec
// ---------------------------------------------------------------------------

/// Which grid a scenario run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPreset {
    /// The full grid recorded in the scenario (minutes per scenario).
    Full,
    /// The tiny-`n` smoke grid (seconds for the whole registry; CI runs
    /// `exp run --all --smoke` on every PR).
    Smoke,
}

impl GridPreset {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GridPreset::Full => "full",
            GridPreset::Smoke => "smoke",
        }
    }
}

/// One preset's grid: sizes × degrees, with a trial count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Network sizes.
    pub sizes: Vec<usize>,
    /// Degree parameters.
    pub degrees: Vec<usize>,
    /// Independent trials per point.
    pub trials: usize,
}

impl Grid {
    /// A grid from explicit axes (trials clamped to at least 1).
    #[must_use]
    pub fn new(
        sizes: impl IntoIterator<Item = usize>,
        degrees: impl IntoIterator<Item = usize>,
        trials: usize,
    ) -> Self {
        Grid {
            sizes: sizes.into_iter().collect(),
            degrees: degrees.into_iter().collect(),
            trials: trials.max(1),
        }
    }
}

/// One fully resolved grid cell (a single trial).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The network spec.
    pub net: NetSpec,
    /// Network size.
    pub n: usize,
    /// Degree parameter.
    pub d: usize,
    /// Death-victim policy.
    pub victim: VictimPolicy,
    /// Fault-axis point (the default [`FaultSpec::none`] on scenarios
    /// without a fault axis).
    pub fault: FaultSpec,
    /// Trial index within the point.
    pub trial: usize,
}

/// A declarative experiment: grid axes plus one measurement. Built with a
/// consuming builder:
///
/// ```
/// use churn_core::ModelKind;
/// use churn_sim::scenario::{
///     FloodingSpec, Grid, Measurement, NetSpec, RoundBudget, Scenario,
/// };
///
/// let scenario = Scenario::new(
///     "demo-flooding",
///     "Flooding over the regeneration models",
///     Measurement::ParallelFlooding(FloodingSpec {
///         budget: RoundBudget::EngineDefault,
///         record_isolation: false,
///     }),
/// )
/// .nets([
///     NetSpec::Baseline(ModelKind::Sdgr),
///     NetSpec::Baseline(ModelKind::Pdgr),
/// ])
/// .full_grid(Grid::new([1024, 4096], [8], 5))
/// .smoke_grid(Grid::new([128], [4], 1))
/// .base_seed(0xE6);
/// assert_eq!(scenario.cells(churn_sim::scenario::GridPreset::Smoke).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    title: String,
    /// What the scenario reproduces (paper artifact / theorem), shown in the
    /// runner's report header.
    reproduces: String,
    nets: Vec<NetSpec>,
    victims: Vec<VictimPolicy>,
    faults: Vec<FaultSpec>,
    full: Grid,
    smoke: Grid,
    base_seed: u64,
    measurement: Measurement,
}

impl Scenario {
    /// Creates a scenario with empty grids, one uniform-victim axis entry
    /// and base seed 0.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        measurement: Measurement,
    ) -> Self {
        Scenario {
            name: name.into(),
            title: title.into(),
            reproduces: String::new(),
            nets: Vec::new(),
            victims: vec![VictimPolicy::Uniform],
            faults: vec![FaultSpec::none()],
            full: Grid::new([], [], 1),
            smoke: Grid::new([], [], 1),
            base_seed: 0,
            measurement,
        }
    }

    /// Sets the network axis.
    #[must_use]
    pub fn nets(mut self, nets: impl IntoIterator<Item = NetSpec>) -> Self {
        self.nets = nets.into_iter().collect();
        self
    }

    /// Sets the victim-policy axis (default: uniform only).
    #[must_use]
    pub fn victims(mut self, victims: impl IntoIterator<Item = VictimPolicy>) -> Self {
        self.victims = victims.into_iter().collect();
        self
    }

    /// Sets the fault axis (default: the single fault-free point). Only the
    /// event-driven measurements accept non-none points — `validate` rejects
    /// a fault axis on round-driven measurements.
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Sets the full-preset grid.
    #[must_use]
    pub fn full_grid(mut self, grid: Grid) -> Self {
        self.full = grid;
        self
    }

    /// Sets the smoke-preset grid (tiny `n`, so the whole registry smokes in
    /// seconds).
    #[must_use]
    pub fn smoke_grid(mut self, grid: Grid) -> Self {
        self.smoke = grid;
        self
    }

    /// Sets the base seed all cell seeds derive from.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the reproduced paper artifact shown in report headers.
    #[must_use]
    pub fn reproduces(mut self, artifact: impl Into<String>) -> Self {
        self.reproduces = artifact.into();
        self
    }

    /// The scenario's registry name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The human-readable title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The reproduced paper artifact (empty when not set).
    #[must_use]
    pub fn reproduced_artifact(&self) -> &str {
        &self.reproduces
    }

    /// The measurement every cell runs.
    #[must_use]
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// The network axis.
    #[must_use]
    pub fn net_axis(&self) -> &[NetSpec] {
        &self.nets
    }

    /// The fault axis (a single [`FaultSpec::none`] on scenarios without
    /// one).
    #[must_use]
    pub fn fault_axis(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// `true` when any fault-axis point injects faults — the scenarios
    /// `exp list` shows a fault column for.
    #[must_use]
    pub fn has_fault_axis(&self) -> bool {
        self.faults.iter().any(|f| !f.is_none())
    }

    /// The grid of one preset.
    #[must_use]
    pub fn grid(&self, preset: GridPreset) -> &Grid {
        match preset {
            GridPreset::Full => &self.full,
            GridPreset::Smoke => &self.smoke,
        }
    }

    /// The cells of one preset, in deterministic order (net-major, then
    /// size, degree, victim, fault, trial) — also the order records are
    /// written in.
    #[must_use]
    pub fn cells(&self, preset: GridPreset) -> Vec<CellSpec> {
        let grid = self.grid(preset);
        let mut cells = Vec::new();
        for &net in &self.nets {
            for &n in &grid.sizes {
                for &d in &grid.degrees {
                    for &victim in &self.victims {
                        for &fault in &self.faults {
                            for trial in 0..grid.trials {
                                cells.push(CellSpec {
                                    net,
                                    n,
                                    d,
                                    victim,
                                    fault,
                                    trial,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The deterministic seed of one cell — the cell's *identity* in the
    /// checkpoint file. Depends only on the cell's values and the base seed
    /// (adding a grid row never re-seeds existing cells), and coincides with
    /// [`crate::Sweep::trial_seed`] for baseline nets, so ported scenarios
    /// reproduce their recorded trajectories.
    #[must_use]
    pub fn cell_seed(&self, cell: &CellSpec) -> u64 {
        let mut point_tag = derive_seed(
            derive_seed(cell.n as u64, cell.d as u64),
            cell.net.seed_tag(),
        );
        if cell.victim.is_adversarial() {
            point_tag = derive_seed(
                point_tag,
                match cell.victim {
                    VictimPolicy::Uniform => unreachable!("guarded by is_adversarial"),
                    VictimPolicy::OldestFirst => 0xAD_01,
                    VictimPolicy::HighestDegree => 0xAD_02,
                },
            );
        }
        // Like the adversary axis, an inactive fault point mixes nothing:
        // the `none` rows of a fault scenario share seeds (and records, bit
        // for bit) with a fault-free sibling on the same base seed.
        if !cell.fault.is_none() {
            point_tag = derive_seed(point_tag, cell.fault.seed_tag());
        }
        derive_seed(self.base_seed ^ point_tag, cell.trial as u64)
    }

    /// Validates that every `(net, victim, measurement)` combination is
    /// constructible, so authoring mistakes surface at registration instead
    /// of `n` cells into a grid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.nets.is_empty() {
            return Err(format!("scenario {:?} has an empty net axis", self.name));
        }
        if self.victims.is_empty() {
            return Err(format!("scenario {:?} has an empty victim axis", self.name));
        }
        for &net in &self.nets {
            for &victim in &self.victims {
                let streaming_churn = match net {
                    NetSpec::Baseline(kind) => kind.is_streaming(),
                    NetSpec::Raes(spec) => spec.churn == ChurnDriver::Streaming,
                    NetSpec::Static | NetSpec::P2p => true,
                };
                if streaming_churn && victim == VictimPolicy::HighestDegree {
                    return Err(format!(
                        "scenario {:?}: net {} cannot run degree-targeted deaths \
                         (streaming churn has a fixed death schedule)",
                        self.name,
                        net.label()
                    ));
                }
                if matches!(net, NetSpec::Static | NetSpec::P2p) && victim != VictimPolicy::Uniform
                {
                    return Err(format!(
                        "scenario {:?}: net {} does not support victim policies",
                        self.name,
                        net.label()
                    ));
                }
                let compatible = match self.measurement {
                    Measurement::StaticBaseline => matches!(net, NetSpec::Static),
                    Measurement::P2pPropagation { .. } => matches!(net, NetSpec::P2p),
                    Measurement::RaesTracking { .. } => matches!(net, NetSpec::Raes(_)),
                    Measurement::AsyncRaes(_) => matches!(
                        net,
                        NetSpec::Raes(spec)
                            if spec.churn == ChurnDriver::Streaming
                                && !spec.adversary.is_active()
                    ),
                    Measurement::OnionSkin => {
                        matches!(net, NetSpec::Baseline(ModelKind::Sdg))
                    }
                    Measurement::PoissonDemographics { .. } => matches!(
                        net,
                        NetSpec::Baseline(ModelKind::Pdg) | NetSpec::Baseline(ModelKind::Pdgr)
                    ),
                    _ => !matches!(net, NetSpec::Static | NetSpec::P2p),
                };
                if !compatible {
                    return Err(format!(
                        "scenario {:?}: net {} is incompatible with measurement {:?}",
                        self.name,
                        net.label(),
                        self.measurement
                    ));
                }
                if let NetSpec::Baseline(ModelKind::Raes) = net {
                    return Err(format!(
                        "scenario {:?}: use NetSpec::Raes(..) instead of \
                         Baseline(ModelKind::Raes) (the kind alone does not \
                         carry the protocol knobs)",
                        self.name
                    ));
                }
                if let NetSpec::Raes(spec) = net {
                    RaesConfig::new(16, 2)
                        .churn(spec.churn)
                        .saturation(spec.saturation)
                        .capacity_factor(spec.capacity)
                        .attempts_per_round(spec.attempts)
                        .adversary(spec.adversary)
                        .victim_policy(victim)
                        .validate()
                        .map_err(|e| format!("scenario {:?}: invalid RAES net: {e}", self.name))?;
                }
                if matches!(self.measurement, Measurement::AsyncRaes(_))
                    && victim != VictimPolicy::Uniform
                {
                    return Err(format!(
                        "scenario {:?}: the asynchronous RAES model drives its own \
                         streaming churn and supports only uniform victims",
                        self.name
                    ));
                }
            }
        }
        let async_models = match self.measurement {
            Measurement::AsyncFlooding(spec) => Some((spec.latency, spec.bandwidth)),
            Measurement::AsyncRaes(spec) => Some((spec.latency, spec.bandwidth)),
            _ => None,
        };
        if let Some((latency, bandwidth)) = async_models {
            latency
                .validate()
                .map_err(|e| format!("scenario {:?}: {e}", self.name))?;
            bandwidth
                .validate()
                .map_err(|e| format!("scenario {:?}: {e}", self.name))?;
        }
        if self.faults.is_empty() {
            return Err(format!("scenario {:?} has an empty fault axis", self.name));
        }
        for fault in &self.faults {
            fault
                .validate()
                .map_err(|e| format!("scenario {:?}: {e}", self.name))?;
            if fault.is_none() {
                continue;
            }
            match self.measurement {
                Measurement::AsyncFlooding(_) => {
                    if fault.retry.is_some() {
                        return Err(format!(
                            "scenario {:?}: fault point {} sets a retry policy, \
                             which only the async RAES measurement consumes",
                            self.name,
                            fault.label()
                        ));
                    }
                }
                Measurement::AsyncRaes(_) => {
                    if fault.anti_entropy.is_some() {
                        return Err(format!(
                            "scenario {:?}: fault point {} sets anti-entropy, \
                             which only the async flooding measurement consumes",
                            self.name,
                            fault.label()
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "scenario {:?}: fault point {} on measurement {:?} \
                         (only the event-driven measurements inject faults)",
                        self.name,
                        fault.label(),
                        self.measurement
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cell records (the JSONL schema)
// ---------------------------------------------------------------------------

/// One completed cell: its identity plus the measured metrics, stored as one
/// JSON line in `results/<scenario>.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Scenario name.
    pub scenario: String,
    /// Network-spec label ([`NetSpec::label`]).
    pub net: String,
    /// Network size.
    pub n: usize,
    /// Degree parameter.
    pub d: usize,
    /// Victim-policy label.
    pub victim: String,
    /// Fault-axis label ([`FaultSpec::label`]); `None` on fault-free cells,
    /// whose serialised lines stay byte-identical to pre-fault records.
    pub fault: Option<String>,
    /// Trial index.
    pub trial: usize,
    /// The cell's deterministic seed — its checkpoint identity.
    pub seed: u64,
    /// Named scalar metrics, in measurement order.
    pub metrics: Vec<(String, f64)>,
}

impl CellRecord {
    /// A stable grouping key for reports: `(net, n, d, victim)`, with the
    /// fault label folded into the net column (`SDGR/loss0.1`) so fault
    /// points are never averaged together.
    #[must_use]
    pub fn group_key(&self) -> (String, usize, usize, String) {
        let net = match &self.fault {
            Some(fault) => format!("{}/{fault}", self.net),
            None => self.net.clone(),
        };
        (net, self.n, self.d, self.victim.clone())
    }

    /// Looks up one metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(metric, _)| metric == name)
            .map(|&(_, value)| value)
    }

    /// Serialises the record as one JSON line (no trailing newline). The
    /// encoding is deterministic — field order fixed, metrics in measurement
    /// order, numbers in `serde_json` format — so two runs of the same cells
    /// produce byte-identical files.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128 + 32 * self.metrics.len());
        out.push_str("{\"scenario\":");
        escape_json(&self.scenario, &mut out);
        out.push_str(",\"net\":");
        escape_json(&self.net, &mut out);
        out.push_str(&format!(",\"n\":{},\"d\":{},\"victim\":", self.n, self.d));
        escape_json(&self.victim, &mut out);
        if let Some(fault) = &self.fault {
            out.push_str(",\"fault\":");
            escape_json(fault, &mut out);
        }
        out.push_str(&format!(
            ",\"trial\":{},\"seed\":{},\"metrics\":{{",
            self.trial, self.seed
        ));
        for (i, (metric, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json(metric, &mut out);
            out.push(':');
            out.push_str(&format_value(*value));
        }
        out.push_str("}}");
        out
    }

    /// Parses a record from one JSON line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let value = minijson::parse(line)?;
        fn field<'a>(v: &'a minijson::Value, key: &str) -> Result<&'a minijson::Value, String> {
            v.get(key).ok_or_else(|| format!("missing field {key:?}"))
        }
        let metrics_value = field(&value, "metrics")?;
        let minijson::Value::Object(metrics_map) = metrics_value else {
            return Err("metrics must be an object".to_string());
        };
        let mut metrics = Vec::with_capacity(metrics_map.len());
        for (metric, metric_value) in metrics_map {
            metrics.push((
                metric.clone(),
                metric_value
                    .as_f64()
                    .ok_or_else(|| format!("metric {metric:?} must be a number"))?,
            ));
        }
        Ok(CellRecord {
            scenario: field(&value, "scenario")?
                .as_str()
                .ok_or("scenario must be a string")?
                .to_owned(),
            net: field(&value, "net")?
                .as_str()
                .ok_or("net must be a string")?
                .to_owned(),
            n: field(&value, "n")?
                .as_usize()
                .ok_or("n must be an integer")?,
            d: field(&value, "d")?
                .as_usize()
                .ok_or("d must be an integer")?,
            victim: field(&value, "victim")?
                .as_str()
                .ok_or("victim must be a string")?
                .to_owned(),
            fault: match value.get("fault") {
                Some(fault) => Some(fault.as_str().ok_or("fault must be a string")?.to_owned()),
                None => None,
            },
            trial: field(&value, "trial")?
                .as_usize()
                .ok_or("trial must be an integer")?,
            seed: field(&value, "seed")?
                .as_u64()
                .ok_or("seed must be an integer")?,
            metrics,
        })
    }
}

/// Loads every record of a scenario output file (one JSON object per line;
/// blank lines are skipped). A *trailing* partial or corrupt line — the
/// signature of a run killed mid-write (truncated record, torn bytes, even
/// invalid UTF-8) — is detected, logged to stderr and dropped, so a resumed
/// run simply re-executes that cell and the repaired file comes out
/// bit-identical to an uninterrupted run.
///
/// Note: JSON objects do not order their keys, so a *loaded* record's
/// metrics come back sorted by name; the on-disk bytes keep measurement
/// order.
///
/// # Errors
///
/// Returns any I/O error; a malformed complete line *followed by more data*
/// cannot be a torn trailing write and is reported as corruption.
pub fn load_cell_records(path: &Path) -> io::Result<Vec<CellRecord>> {
    read_checkpoint(path).map(|lines| lines.into_iter().map(|l| l.record).collect())
}

/// One valid checkpoint line: the parsed record plus its exact on-disk bytes
/// (sans newline). The resume path re-emits `raw` verbatim — existing
/// records are never re-serialised, which is what keeps a repaired file
/// bit-identical to an uninterrupted run.
struct CheckpointLine {
    record: CellRecord,
    raw: String,
}

fn read_checkpoint(path: &Path) -> io::Result<Vec<CheckpointLine>> {
    let data = fs::read(path)?;
    let mut out = Vec::new();
    let mut lines = data.split_inclusive(|&b| b == b'\n').peekable();
    while let Some(line) = lines.next() {
        let is_last = lines.peek().is_none();
        let complete = line.last() == Some(&b'\n');
        let parsed = std::str::from_utf8(line)
            .map_err(|_| "invalid UTF-8".to_string())
            .and_then(|text| {
                let text = text.trim_end_matches(['\n', '\r']);
                if text.trim().is_empty() {
                    Ok(None)
                } else {
                    CellRecord::from_json_line(text).map(|record| Some((record, text)))
                }
            });
        match parsed {
            Ok(None) => {}
            Ok(Some((record, text))) if complete => {
                out.push(CheckpointLine {
                    record,
                    raw: text.to_string(),
                });
            }
            // A parseable tail without its newline is an interrupted write:
            // drop it, the cell re-runs.
            Ok(Some(_)) => break,
            Err(e) => {
                if complete && !is_last {
                    // Corruption in the middle of the file is not a torn
                    // write; refuse to silently lose interior records.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    ));
                }
                eprintln!(
                    "warning: {}: dropping corrupt trailing line ({e}); \
                     the cell will re-run on --resume",
                    path.display()
                );
                break;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Per-round time series
// ---------------------------------------------------------------------------

/// The per-round time series of one cell, streamed to the
/// `.series.jsonl` side file when [`RunOptions::series`] is on.
///
/// The identity prefix (`scenario` … `seed`) matches the cell's
/// [`CellRecord`] in the main output file; `seed` is the deterministic join
/// key between the two. The series itself is column-oriented: named `f64`
/// arrays, all the same length (one entry per round, or per unit of
/// simulated time for the asynchronous measurements), with `NaN` encoding
/// as `null`.
///
/// Series records are deterministic — same cell, same seed, same bytes — and
/// never contain wall-clock values. The file follows the side-file
/// lifecycle: rewritten in cell order each series-enabled run, carried over
/// byte-verbatim for checkpointed cells on `--resume`, and removed by runs
/// with series recording off.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRecord {
    /// Scenario name.
    pub scenario: String,
    /// Network-spec label.
    pub net: String,
    /// Network size.
    pub n: usize,
    /// Degree parameter.
    pub d: usize,
    /// Victim-policy label.
    pub victim: String,
    /// Fault-axis label; `None` on fault-free cells (omitted from the line,
    /// mirroring [`CellRecord`]).
    pub fault: Option<String>,
    /// Trial index.
    pub trial: usize,
    /// The cell's deterministic seed — the join key to the main record.
    pub seed: u64,
    /// Named per-round columns, in measurement order; every array has
    /// [`Self::rounds`] entries.
    pub series: Vec<(String, Vec<f64>)>,
}

impl SeriesRecord {
    /// Number of rounds recorded (the length of every column).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.series.first().map_or(0, |(_, v)| v.len())
    }

    /// The values of one named column.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(column, _)| column == name)
            .map(|(_, values)| values.as_slice())
    }

    /// Serialises the record as one JSON line (no trailing newline), in the
    /// same deterministic encoding as [`CellRecord::to_json_line`]; `NaN`
    /// (and any non-finite value) encodes as `null`.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let rounds = self.rounds();
        let mut out = String::with_capacity(160 + 8 * rounds * self.series.len());
        out.push_str("{\"scenario\":");
        escape_json(&self.scenario, &mut out);
        out.push_str(",\"net\":");
        escape_json(&self.net, &mut out);
        out.push_str(&format!(",\"n\":{},\"d\":{},\"victim\":", self.n, self.d));
        escape_json(&self.victim, &mut out);
        if let Some(fault) = &self.fault {
            out.push_str(",\"fault\":");
            escape_json(fault, &mut out);
        }
        out.push_str(&format!(
            ",\"trial\":{},\"seed\":{},\"rounds\":{rounds},\"series\":{{",
            self.trial, self.seed
        ));
        for (i, (column, values)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json(column, &mut out);
            out.push_str(":[");
            for (j, value) in values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format_value(*value));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Parses a record from one JSON line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field (including
    /// columns whose length disagrees with the recorded `rounds`).
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let value = minijson::parse(line)?;
        fn field<'a>(v: &'a minijson::Value, key: &str) -> Result<&'a minijson::Value, String> {
            v.get(key).ok_or_else(|| format!("missing field {key:?}"))
        }
        let rounds = field(&value, "rounds")?
            .as_usize()
            .ok_or("rounds must be an integer")?;
        let series_value = field(&value, "series")?;
        let minijson::Value::Object(series_map) = series_value else {
            return Err("series must be an object".to_string());
        };
        let mut series = Vec::with_capacity(series_map.len());
        for (column, column_value) in series_map {
            let minijson::Value::Array(entries) = column_value else {
                return Err(format!("series column {column:?} must be an array"));
            };
            let mut values = Vec::with_capacity(entries.len());
            for entry in entries {
                values.push(
                    entry
                        .as_f64()
                        .ok_or_else(|| format!("series column {column:?} must hold numbers"))?,
                );
            }
            if values.len() != rounds {
                return Err(format!(
                    "series column {column:?} has {} entries, expected {rounds}",
                    values.len()
                ));
            }
            series.push((column.clone(), values));
        }
        Ok(SeriesRecord {
            scenario: field(&value, "scenario")?
                .as_str()
                .ok_or("scenario must be a string")?
                .to_owned(),
            net: field(&value, "net")?
                .as_str()
                .ok_or("net must be a string")?
                .to_owned(),
            n: field(&value, "n")?
                .as_usize()
                .ok_or("n must be an integer")?,
            d: field(&value, "d")?
                .as_usize()
                .ok_or("d must be an integer")?,
            victim: field(&value, "victim")?
                .as_str()
                .ok_or("victim must be a string")?
                .to_owned(),
            fault: match value.get("fault") {
                Some(fault) => Some(fault.as_str().ok_or("fault must be a string")?.to_owned()),
                None => None,
            },
            trial: field(&value, "trial")?
                .as_usize()
                .ok_or("trial must be an integer")?,
            seed: field(&value, "seed")?
                .as_u64()
                .ok_or("seed must be an integer")?,
            series,
        })
    }
}

/// Loads every series record of a `.series.jsonl` side file. Like
/// [`load_cell_records`], a torn *trailing* line (the signature of an
/// interrupted run) is dropped with a warning; interior corruption is an
/// error. Note that loaded records come back with their columns sorted by
/// name (JSON objects do not order keys); the on-disk bytes keep
/// measurement order.
///
/// # Errors
///
/// Returns any I/O error, or corruption before the last line.
pub fn load_series_records(path: &Path) -> io::Result<Vec<SeriesRecord>> {
    read_series_checkpoint(path)
        .map(|lines| lines.into_iter().map(|(_, record, _)| record).collect())
}

/// Reads the series side file as `(seed, record, raw line)` triples with the
/// same torn-tail tolerance as [`read_checkpoint`]. The resume path re-emits
/// `raw` verbatim for checkpointed cells, keeping a resumed series file
/// bit-identical to an uninterrupted one.
fn read_series_checkpoint(path: &Path) -> io::Result<Vec<(u64, SeriesRecord, String)>> {
    let data = fs::read(path)?;
    let mut out = Vec::new();
    let mut lines = data.split_inclusive(|&b| b == b'\n').peekable();
    while let Some(line) = lines.next() {
        let is_last = lines.peek().is_none();
        let complete = line.last() == Some(&b'\n');
        let parsed = std::str::from_utf8(line)
            .map_err(|_| "invalid UTF-8".to_string())
            .and_then(|text| {
                let text = text.trim_end_matches(['\n', '\r']);
                if text.trim().is_empty() {
                    Ok(None)
                } else {
                    SeriesRecord::from_json_line(text).map(|record| Some((record, text)))
                }
            });
        match parsed {
            Ok(None) => {}
            Ok(Some((record, text))) if complete => {
                out.push((record.seed, record, text.to_string()));
            }
            Ok(Some(_)) => break,
            Err(e) => {
                if complete && !is_last {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    ));
                }
                eprintln!(
                    "warning: {}: dropping corrupt trailing series line ({e}); \
                     the cell's series re-emits on --resume only if the cell re-runs",
                    path.display()
                );
                break;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The collection of registered scenarios the `exp` runner serves.
#[derive(Debug, Default)]
pub struct ScenarioRegistry {
    entries: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scenario, validating it first.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or an invalid spec — registration happens
    /// at startup, so authoring mistakes fail fast.
    pub fn register(&mut self, scenario: Scenario) {
        if let Err(e) = scenario.validate() {
            panic!("invalid scenario: {e}");
        }
        assert!(
            self.get(scenario.name()).is_none(),
            "duplicate scenario name {:?}",
            scenario.name()
        );
        self.entries.push(scenario);
    }

    /// Looks a scenario up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.entries.iter().find(|s| s.name() == name)
    }

    /// Every registered scenario, in registration order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.entries
    }

    /// The registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(Scenario::name).collect()
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Options of one [`run_scenario`] invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Which grid to run.
    pub preset: GridPreset,
    /// Resume from the existing output file (skip cells whose seed is
    /// already recorded) instead of starting fresh.
    pub resume: bool,
    /// Directory the `<name>.jsonl` / `<name>.smoke.jsonl` files live in.
    pub dir: PathBuf,
    /// Stop after executing this many *new* cells (used by the
    /// resume-determinism tests to simulate an interrupted run).
    pub limit: Option<usize>,
    /// Turn the telemetry layer on: measurements that support it (see
    /// [`Measurement::supports_series`]) stream a per-round [`SeriesRecord`]
    /// to the `.series.jsonl` side file, and a per-cell phase profiler is
    /// attached whose wall-clock breakdown lands in the `.load.jsonl`
    /// records. Off by default — with it off no subscriber is ever attached,
    /// the engines' hot paths pay one branch per emission site, and the
    /// main output file stays byte-identical either way (the telemetry
    /// layer observes, it never steers).
    pub series: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            preset: GridPreset::Full,
            resume: false,
            dir: PathBuf::from("results"),
            limit: None,
            series: false,
        }
    }
}

/// Summary of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Every record now present in the output file, in cell order.
    pub records: Vec<CellRecord>,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells skipped because the checkpoint already held them.
    pub skipped: usize,
    /// Total cells of the grid.
    pub total: usize,
    /// The output file.
    pub path: PathBuf,
    /// Cells that panicked this invocation (also recorded in the
    /// `.failures.jsonl` side file). The grid keeps running past them; a
    /// later `--resume` retries exactly these cells.
    pub failures: Vec<CellFailure>,
    /// Wall-clock throughput of the cells *executed this invocation* (also
    /// written to the non-checkpointed `.load.jsonl` side file; skipped
    /// checkpointed cells have no load record).
    pub loads: Vec<LoadRecord>,
}

/// A cell that panicked during execution. Failures never enter the main
/// checkpoint file (whose bytes stay bit-identical to a clean run); they are
/// appended to a `.failures.jsonl` side file and surfaced in
/// [`ScenarioOutcome::failures`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Scenario name.
    pub scenario: String,
    /// Network label of the cell.
    pub net: String,
    /// Network size.
    pub n: usize,
    /// Degree parameter.
    pub d: usize,
    /// Victim policy label.
    pub victim: String,
    /// Trial index.
    pub trial: usize,
    /// The cell's seed (its checkpoint identity — resume retries it).
    pub seed: u64,
    /// The panic message.
    pub error: String,
}

impl CellFailure {
    /// Serialises the failure as one JSON line (same identity fields as
    /// [`CellRecord::to_json_line`], with the panic message in place of
    /// metrics).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160 + self.error.len());
        out.push_str("{\"scenario\":");
        escape_json(&self.scenario, &mut out);
        out.push_str(",\"net\":");
        escape_json(&self.net, &mut out);
        out.push_str(&format!(",\"n\":{},\"d\":{},\"victim\":", self.n, self.d));
        escape_json(&self.victim, &mut out);
        out.push_str(&format!(
            ",\"trial\":{},\"seed\":{},\"error\":",
            self.trial, self.seed
        ));
        escape_json(&self.error, &mut out);
        out.push('}');
        out
    }
}

/// Per-cell wall-clock throughput, written to the non-checkpointed
/// `.load.jsonl` side file (one line per cell *executed this invocation*).
///
/// Wall-clock time is inherently nondeterministic, so it must never enter
/// the main checkpoint file (whose bytes are pinned bit-identical across
/// runs and resumes by the golden suite) — throughput lives here instead.
/// The work-unit column adapts to the measurement: event-driven cells
/// report events per second, round-driven cells rounds per second, and
/// anything else counts the cell itself.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRecord {
    /// Scenario name.
    pub scenario: String,
    /// Network label of the cell.
    pub net: String,
    /// Network size.
    pub n: usize,
    /// Degree parameter.
    pub d: usize,
    /// Victim policy label.
    pub victim: String,
    /// Trial index.
    pub trial: usize,
    /// The cell's seed.
    pub seed: u64,
    /// Wall-clock seconds the cell's measurement took.
    pub wall_s: f64,
    /// The throughput work unit (`events`, `rounds` or `cells`).
    pub unit: &'static str,
    /// Work units the cell performed.
    pub units: f64,
    /// Work units per wall-clock second.
    pub units_per_s: f64,
    /// Wall-clock seconds per engine phase (`churn`, `sweep`, `observe`,
    /// `snapshot`, `event-loop`, …), in first-appearance order. Empty unless
    /// the run attached the phase profiler ([`RunOptions::series`]). Spans
    /// nest (`raes-round` inside `churn`; `event-loop` around everything an
    /// async engine does), so entries break the cell's time down — they do
    /// not sum to `wall_s`.
    pub phases: Vec<(String, f64)>,
}

impl LoadRecord {
    /// Serialises the load record as one JSON line.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(200);
        out.push_str("{\"scenario\":");
        escape_json(&self.scenario, &mut out);
        out.push_str(",\"net\":");
        escape_json(&self.net, &mut out);
        out.push_str(&format!(",\"n\":{},\"d\":{},\"victim\":", self.n, self.d));
        escape_json(&self.victim, &mut out);
        out.push_str(&format!(
            ",\"trial\":{},\"seed\":{},\"wall_s\":{},\"unit\":",
            self.trial,
            self.seed,
            format_value(self.wall_s)
        ));
        escape_json(self.unit, &mut out);
        out.push_str(&format!(
            ",\"units\":{},\"units_per_s\":{}",
            format_value(self.units),
            format_value(self.units_per_s)
        ));
        if !self.phases.is_empty() {
            out.push_str(",\"phases\":{");
            for (i, (phase, seconds)) in self.phases.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json(phase, &mut out);
                out.push(':');
                out.push_str(&format_value(*seconds));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses a load record from one JSON line.
    ///
    /// As with [`CellRecord::from_json_line`], JSON objects do not order
    /// their keys, so a loaded record's phases come back sorted by name
    /// rather than in first-appearance order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let value = minijson::parse(line)?;
        fn field<'a>(v: &'a minijson::Value, key: &str) -> Result<&'a minijson::Value, String> {
            v.get(key).ok_or_else(|| format!("missing field {key:?}"))
        }
        let unit = match field(&value, "unit")?
            .as_str()
            .ok_or("unit must be a string")?
        {
            "events" => "events",
            "rounds" => "rounds",
            "cells" => "cells",
            other => return Err(format!("unknown work unit {other:?}")),
        };
        let mut phases = Vec::new();
        if let Some(phases_value) = value.get("phases") {
            let minijson::Value::Object(phases_map) = phases_value else {
                return Err("phases must be an object".to_string());
            };
            for (phase, seconds) in phases_map {
                phases.push((
                    phase.clone(),
                    seconds
                        .as_f64()
                        .ok_or_else(|| format!("phase {phase:?} must be a number"))?,
                ));
            }
        }
        Ok(LoadRecord {
            scenario: field(&value, "scenario")?
                .as_str()
                .ok_or("scenario must be a string")?
                .to_owned(),
            net: field(&value, "net")?
                .as_str()
                .ok_or("net must be a string")?
                .to_owned(),
            n: field(&value, "n")?
                .as_usize()
                .ok_or("n must be an integer")?,
            d: field(&value, "d")?
                .as_usize()
                .ok_or("d must be an integer")?,
            victim: field(&value, "victim")?
                .as_str()
                .ok_or("victim must be a string")?
                .to_owned(),
            trial: field(&value, "trial")?
                .as_usize()
                .ok_or("trial must be an integer")?,
            seed: field(&value, "seed")?
                .as_u64()
                .ok_or("seed must be an integer")?,
            wall_s: field(&value, "wall_s")?
                .as_f64()
                .ok_or("wall_s must be a number")?,
            unit,
            units: field(&value, "units")?
                .as_f64()
                .ok_or("units must be a number")?,
            units_per_s: field(&value, "units_per_s")?
                .as_f64()
                .ok_or("units_per_s must be a number")?,
            phases,
        })
    }
}

/// Loads every load record of a `.load.jsonl` side file (one JSON object
/// per line; blank lines are skipped). The file is re-created on every
/// invocation rather than checkpointed, so unlike [`load_cell_records`]
/// there is no torn-tail repair: any malformed line is an error.
///
/// # Errors
///
/// Returns any I/O error; malformed lines are reported as corruption.
pub fn load_load_records(path: &Path) -> io::Result<Vec<LoadRecord>> {
    let data = fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (k, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = LoadRecord::from_json_line(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), k + 1),
            )
        })?;
        out.push(record);
    }
    Ok(out)
}

/// The throughput work unit of one cell, extracted from its metrics:
/// event-driven measurements count processed events, round-driven ones
/// flooding rounds; everything else counts the cell itself.
fn cell_work_units(metrics: &[(String, f64)]) -> (&'static str, f64) {
    for (name, unit) in [
        ("events_processed", "events"),
        ("flooding_rounds", "rounds"),
    ] {
        if let Some((_, value)) = metrics.iter().find(|(metric, _)| metric == name) {
            return (unit, *value);
        }
    }
    ("cells", 1.0)
}

/// One successfully executed cell, as handed from a batch worker to the
/// writer: the checkpoint record plus the side-file payloads (wall-clock,
/// optional pre-serialised series line, optional phase breakdown).
struct CellRun {
    record: CellRecord,
    wall_s: f64,
    series_line: Option<String>,
    phases: Vec<(String, f64)>,
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The output path of a scenario under the given options.
#[must_use]
pub fn scenario_output_path(scenario: &Scenario, opts: &RunOptions) -> PathBuf {
    let suffix = match opts.preset {
        GridPreset::Full => "jsonl",
        GridPreset::Smoke => "smoke.jsonl",
    };
    opts.dir.join(format!("{}.{suffix}", scenario.name()))
}

/// The side file panicking cells are recorded to
/// (`<name>.failures.jsonl` / `<name>.smoke.failures.jsonl`).
#[must_use]
pub fn scenario_failures_path(scenario: &Scenario, opts: &RunOptions) -> PathBuf {
    let suffix = match opts.preset {
        GridPreset::Full => "failures.jsonl",
        GridPreset::Smoke => "smoke.failures.jsonl",
    };
    opts.dir.join(format!("{}.{suffix}", scenario.name()))
}

/// The side file per-cell wall-clock throughput is written to
/// (`<name>.load.jsonl` / `<name>.smoke.load.jsonl`). Re-created on every
/// invocation — wall-clock is not part of the deterministic checkpoint.
#[must_use]
pub fn scenario_load_path(scenario: &Scenario, opts: &RunOptions) -> PathBuf {
    let suffix = match opts.preset {
        GridPreset::Full => "load.jsonl",
        GridPreset::Smoke => "smoke.load.jsonl",
    };
    opts.dir.join(format!("{}.{suffix}", scenario.name()))
}

/// The side file per-round time series are streamed to
/// (`<name>.series.jsonl` / `<name>.smoke.series.jsonl`). Written only by
/// series-enabled runs ([`RunOptions::series`]); a run with series off
/// removes a stale one. On `--resume` with series on, lines of checkpointed
/// cells carry over byte-verbatim and only re-executed cells re-emit.
#[must_use]
pub fn scenario_series_path(scenario: &Scenario, opts: &RunOptions) -> PathBuf {
    let suffix = match opts.preset {
        GridPreset::Full => "series.jsonl",
        GridPreset::Smoke => "smoke.series.jsonl",
    };
    opts.dir.join(format!("{}.{suffix}", scenario.name()))
}

/// Runs a scenario's grid, streaming one JSON record per completed cell to
/// the scenario's output file.
///
/// Cells run in deterministic order, parallelised in batches through the
/// same thread-budgeting rule as [`crate::run_sweep`] (each concurrently
/// scheduled cell gets `pool / concurrent` threads for its in-cell engines,
/// so nested parallelism never oversubscribes). The output file is written
/// strictly *in cell order*: after every batch the writer advances past
/// every cell whose line is available — records computed this run
/// serialised once, records carried over from a `--resume` checkpoint
/// copied byte-verbatim — and flushes. An interrupted run therefore leaves
/// a valid in-order prefix of the full output, and a `--resume` run
/// executes exactly the missing cells (including a cell dropped from a torn
/// trailing write and cells that panicked last time) and splices them into
/// their grid positions: because every cell's randomness derives from its
/// own seed and the engines are thread-count independent, the repaired file
/// is **bit-identical** to an uninterrupted run.
///
/// # Errors
///
/// Returns any I/O error from the checkpoint file.
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> io::Result<ScenarioOutcome> {
    let path = scenario_output_path(scenario, opts);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    // Every available line, keyed by cell seed: carried-over checkpoint
    // lines first (raw bytes, never re-serialised), freshly computed records
    // as batches complete.
    let mut lines: HashMap<u64, String> = if opts.resume && path.exists() {
        read_checkpoint(&path)?
            .into_iter()
            .map(|line| (line.record.seed, line.raw))
            .collect()
    } else {
        HashMap::new()
    };

    let cells = scenario.cells(opts.preset);
    let total = cells.len();
    let all: Vec<(CellSpec, u64)> = cells
        .iter()
        .map(|&cell| (cell, scenario.cell_seed(&cell)))
        .collect();
    let mut todo: Vec<(CellSpec, u64)> = all
        .iter()
        .filter(|(_, seed)| !lines.contains_key(seed))
        .copied()
        .collect();
    let skipped = total - todo.len();
    if let Some(limit) = opts.limit {
        todo.truncate(limit);
    }

    // The checkpoint is rewritten in cell order every run; carried-over
    // lines only leave memory once they are written back, so an undisturbed
    // resume loses nothing.
    let mut file = fs::File::create(&path)?;

    // Failures of a *previous* invocation are stale either way: a fresh run
    // restarts everything, a resume retries exactly the failed cells.
    let failures_path = scenario_failures_path(scenario, opts);
    let _ = fs::remove_file(&failures_path);
    let mut failures: Vec<CellFailure> = Vec::new();
    let mut failures_file: Option<fs::File> = None;

    // Wall-clock throughput of this invocation's cells. Previous load files
    // describe a different machine state — always start fresh.
    let load_path = scenario_load_path(scenario, opts);
    let _ = fs::remove_file(&load_path);
    let mut loads: Vec<LoadRecord> = Vec::new();
    let mut load_file: Option<fs::File> = None;

    // The series side file mirrors the main checkpoint's lifecycle when
    // series recording is on: carried-over lines are re-emitted byte-
    // verbatim in cell order, fresh cells append theirs. With series off the
    // file would go stale (re-executed cells could not refresh their lines),
    // so it is removed instead.
    let series_path = scenario_series_path(scenario, opts);
    let mut series_lines: HashMap<u64, String> = HashMap::new();
    let mut series_file: Option<fs::File> = None;
    if opts.series {
        if opts.resume && series_path.exists() {
            series_lines = read_series_checkpoint(&series_path)?
                .into_iter()
                .map(|(seed, _, raw)| (seed, raw))
                .collect();
        }
        if scenario.measurement().supports_series() {
            series_file = Some(fs::File::create(&series_path)?);
        } else {
            let _ = fs::remove_file(&series_path);
        }
    } else {
        let _ = fs::remove_file(&series_path);
    }

    let pool = rayon::current_num_threads().max(1);
    let batch_size = (pool * 2).max(1);
    let mut executed = 0usize;
    // Write cursor over the full grid: advanced after every batch past every
    // cell whose line is available, stopping at the first cell that is still
    // pending (a later batch) or has no line at all (panicked, or cut by
    // `limit`).
    let mut cursor = 0usize;
    for batch in todo.chunks(batch_size) {
        let threads = crate::runner::sweep_cell_threads(batch.len());
        let batch_records: Vec<Result<CellRun, Box<CellFailure>>> = batch
            .par_iter()
            .map(|&(cell, seed)| {
                // A panicking cell must not take the grid down: it is caught,
                // recorded as a structured failure, and the batch (and every
                // later batch) keeps running. The closure only touches the
                // cell's own state, so unwind-safety holds.
                //
                // The phase profiler is thread-scoped: engine spans emit on
                // this worker thread only, so concurrently running cells
                // never observe each other. With series off nothing is
                // attached and the engines run their detached fast path.
                let profiler = opts
                    .series
                    .then(|| std::sync::Arc::new(PhaseProfiler::new()));
                let started = std::time::Instant::now();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Fault-injection hook for the hardening smoke tests: a
                    // cell whose seed is listed panics deliberately.
                    if let Ok(inject) = std::env::var("CHURN_EXP_PANIC_SEED") {
                        if inject.split(',').any(|tok| tok.trim().parse() == Ok(seed)) {
                            panic!("injected panic for cell seed {seed} (CHURN_EXP_PANIC_SEED)");
                        }
                    }
                    let run = || {
                        measure::run_cell(
                            scenario.measurement(),
                            &cell,
                            seed,
                            threads,
                            opts.preset,
                            opts.series,
                        )
                    };
                    match &profiler {
                        Some(profiler) => {
                            churn_telemetry::subscriber::with_default(profiler.clone(), run)
                        }
                        None => run(),
                    }
                }));
                let wall_s = started.elapsed().as_secs_f64();
                match outcome {
                    Ok((metrics, series)) => {
                        let record = CellRecord {
                            scenario: scenario.name().to_string(),
                            net: cell.net.label(),
                            n: cell.n,
                            d: cell.d,
                            victim: cell.victim.label().to_string(),
                            fault: (!cell.fault.is_none()).then(|| cell.fault.label()),
                            trial: cell.trial,
                            seed,
                            metrics: metrics
                                .into_iter()
                                .map(|(metric, value)| (metric.to_string(), value))
                                .collect(),
                        };
                        // Serialise the series in the worker (it is pure CPU
                        // work on deterministic data); the writer thread only
                        // splices bytes.
                        let series_line = series.map(|series| {
                            SeriesRecord {
                                scenario: record.scenario.clone(),
                                net: record.net.clone(),
                                n: record.n,
                                d: record.d,
                                victim: record.victim.clone(),
                                fault: record.fault.clone(),
                                trial: record.trial,
                                seed,
                                series: series
                                    .columns()
                                    .iter()
                                    .map(|(column, values)| ((*column).to_string(), values.clone()))
                                    .collect(),
                            }
                            .to_json_line()
                        });
                        let phases = profiler.map_or_else(Vec::new, |profiler| {
                            profiler
                                .phases()
                                .into_iter()
                                .map(|(phase, seconds)| (phase.to_string(), seconds))
                                .collect()
                        });
                        Ok(CellRun {
                            record,
                            wall_s,
                            series_line,
                            phases,
                        })
                    }
                    Err(payload) => Err(Box::new(CellFailure {
                        scenario: scenario.name().to_string(),
                        net: cell.net.label(),
                        n: cell.n,
                        d: cell.d,
                        victim: cell.victim.label().to_string(),
                        trial: cell.trial,
                        seed,
                        error: panic_message(payload),
                    })),
                }
            })
            .collect();
        for result in batch_records {
            match result {
                Ok(run) => {
                    let record = run.record;
                    let wall_s = run.wall_s;
                    let (unit, units) = cell_work_units(&record.metrics);
                    let load = LoadRecord {
                        scenario: record.scenario.clone(),
                        net: record.net.clone(),
                        n: record.n,
                        d: record.d,
                        victim: record.victim.clone(),
                        trial: record.trial,
                        seed: record.seed,
                        wall_s,
                        unit,
                        units,
                        units_per_s: if wall_s > 0.0 { units / wall_s } else { 0.0 },
                        phases: run.phases,
                    };
                    let side = match load_file.as_mut() {
                        Some(side) => side,
                        None => load_file.insert(fs::File::create(&load_path)?),
                    };
                    side.write_all(load.to_json_line().as_bytes())?;
                    side.write_all(b"\n")?;
                    side.flush()?;
                    loads.push(load);
                    if let Some(series_line) = run.series_line {
                        series_lines.insert(record.seed, series_line);
                    }
                    lines.insert(record.seed, record.to_json_line());
                    executed += 1;
                }
                Err(failure) => {
                    let side = match failures_file.as_mut() {
                        Some(side) => side,
                        None => failures_file.insert(fs::File::create(&failures_path)?),
                    };
                    side.write_all(failure.to_json_line().as_bytes())?;
                    side.write_all(b"\n")?;
                    side.flush()?;
                    failures.push(*failure);
                }
            }
        }
        while cursor < all.len() {
            match lines.get(&all[cursor].1) {
                Some(line) => {
                    file.write_all(line.as_bytes())?;
                    file.write_all(b"\n")?;
                    // The series file advances in lockstep with the main
                    // checkpoint (not every cell has a series line — carried-
                    // over pre-series checkpoints don't — so absence just
                    // skips).
                    if let Some(side) = series_file.as_mut() {
                        if let Some(series_line) = series_lines.get(&all[cursor].1) {
                            side.write_all(series_line.as_bytes())?;
                            side.write_all(b"\n")?;
                        }
                    }
                    cursor += 1;
                }
                None => break,
            }
        }
        file.flush()?;
        if let Some(side) = series_file.as_mut() {
            side.flush()?;
        }
    }
    // Tail sweep: nothing is pending any more, so emit every remaining
    // available line. Cells past a panicked or limit-cut cell keep their
    // records; only the gap itself re-runs on --resume.
    while cursor < all.len() {
        if let Some(line) = lines.get(&all[cursor].1) {
            file.write_all(line.as_bytes())?;
            file.write_all(b"\n")?;
            if let Some(side) = series_file.as_mut() {
                if let Some(series_line) = series_lines.get(&all[cursor].1) {
                    side.write_all(series_line.as_bytes())?;
                    side.write_all(b"\n")?;
                }
            }
        }
        cursor += 1;
    }
    file.flush()?;
    if let Some(mut side) = series_file.take() {
        side.flush()?;
    }
    drop(file);

    // Report everything now in the file, in cell order (existing records
    // keep their position; a fresh run is already ordered).
    let records = load_cell_records(&path)?;
    Ok(ScenarioOutcome {
        records,
        executed,
        skipped,
        total,
        path,
        failures,
        loads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_protocol::AttackKind;

    fn tiny_scenario() -> Scenario {
        Scenario::new(
            "test-flooding",
            "tiny flooding grid",
            Measurement::Flooding(FloodingSpec {
                budget: RoundBudget::Fixed(64),
                record_isolation: true,
            }),
        )
        .nets([NetSpec::Baseline(ModelKind::Sdgr), NetSpec::raes_default()])
        .full_grid(Grid::new([48, 64], [3], 2))
        .smoke_grid(Grid::new([32], [2], 1))
        .base_seed(0x7E57)
    }

    #[test]
    fn cells_enumerate_net_major_in_deterministic_order() {
        let s = tiny_scenario();
        let cells = s.cells(GridPreset::Full);
        assert_eq!(cells.len(), 8, "2 nets x 2 sizes x 1 degree x 2 trials");
        assert_eq!(cells[0].net, NetSpec::Baseline(ModelKind::Sdgr));
        assert_eq!((cells[0].n, cells[0].trial), (48, 0));
        assert_eq!((cells[1].n, cells[1].trial), (48, 1));
        assert_eq!(cells.last().unwrap().net, NetSpec::raes_default());
        assert_eq!(s.cells(GridPreset::Smoke).len(), 2);
    }

    #[test]
    fn cell_seeds_match_sweep_trial_seeds_for_baseline_nets() {
        let s = Scenario::new(
            "compat",
            "seed compatibility",
            Measurement::Flooding(FloodingSpec {
                budget: RoundBudget::EngineDefault,
                record_isolation: false,
            }),
        )
        .nets([NetSpec::Baseline(ModelKind::Pdg)])
        .victims([VictimPolicy::Uniform, VictimPolicy::HighestDegree])
        .full_grid(Grid::new([256], [4], 3))
        .base_seed(0xE12);
        for victim in [VictimPolicy::Uniform, VictimPolicy::HighestDegree] {
            let sweep = crate::Sweep::new("compat")
                .models([ModelKind::Pdg])
                .sizes([256])
                .degrees([4])
                .trials(3)
                .base_seed(0xE12)
                .victim_policy(victim);
            let point = crate::ParamPoint {
                model: ModelKind::Pdg,
                n: 256,
                d: 4,
            };
            for trial in 0..3 {
                let cell = CellSpec {
                    net: NetSpec::Baseline(ModelKind::Pdg),
                    n: 256,
                    d: 4,
                    victim,
                    fault: FaultSpec::none(),
                    trial,
                };
                assert_eq!(
                    s.cell_seed(&cell),
                    sweep.trial_seed(&point, trial),
                    "engine and Sweep seeds must coincide ({victim}, trial {trial})"
                );
            }
        }
        // The default RAES net keeps ModelKind::Raes's sweep tag too.
        let sweep = crate::Sweep::new("compat")
            .models([ModelKind::Raes])
            .sizes([256])
            .degrees([4])
            .base_seed(0xE12);
        let raes_cell = CellSpec {
            net: NetSpec::raes_default(),
            n: 256,
            d: 4,
            victim: VictimPolicy::Uniform,
            fault: FaultSpec::none(),
            trial: 0,
        };
        assert_eq!(
            s.base_seed(0xE12).cell_seed(&raes_cell),
            sweep.trial_seed(
                &crate::ParamPoint {
                    model: ModelKind::Raes,
                    n: 256,
                    d: 4
                },
                0
            )
        );
    }

    #[test]
    fn non_default_raes_knobs_shift_the_seed() {
        let s = tiny_scenario();
        let base = CellSpec {
            net: NetSpec::raes_default(),
            n: 64,
            d: 3,
            victim: VictimPolicy::Uniform,
            fault: FaultSpec::none(),
            trial: 0,
        };
        let mut seen = vec![s.cell_seed(&base)];
        for net in [
            NetSpec::Raes(RaesNet {
                churn: ChurnDriver::Poisson,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                saturation: SaturationPolicy::EvictOldest,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                capacity: 1.0,
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                attempts: 4,
                ..RaesNet::default()
            }),
            // Adversary axis: distinct shapes, attacks, fractions and
            // cohorts all get their own stream.
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Uniform {
                    fraction: 0.05,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Uniform {
                    fraction: 0.1,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Uniform {
                    fraction: 0.05,
                    attack: AttackKind::AcceptThenDrop,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.05,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.05,
                    cohort: 4,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.05,
                    cohort: 8,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
        ] {
            let seed = s.cell_seed(&CellSpec { net, ..base });
            assert!(!seen.contains(&seed), "{net} must get its own seed stream");
            seen.push(seed);
        }
        // A fraction-0 adversary axis still shifts the *cell seed* (the spec
        // is non-default) while the model trajectory itself stays identical
        // to honest RAES given equal seeds — the stream-identity tests in
        // churn-protocol pin that half.
        let zero = s.cell_seed(&CellSpec {
            net: NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Uniform {
                    fraction: 0.0,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            }),
            ..base
        });
        assert_ne!(zero, s.cell_seed(&base));
    }

    #[test]
    fn net_labels_are_stable() {
        assert_eq!(NetSpec::Baseline(ModelKind::Sdgr).label(), "SDGR");
        assert_eq!(NetSpec::raes_default().label(), "RAES");
        assert_eq!(
            NetSpec::Raes(RaesNet {
                churn: ChurnDriver::Poisson,
                saturation: SaturationPolicy::EvictOldest,
                capacity: 1.0,
                attempts: 4,
                adversary: AdversaryModel::None,
            })
            .label(),
            "RAES+poisson+evict-oldest+c1+a4"
        );
        assert_eq!(
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Uniform {
                    fraction: 0.05,
                    attack: AttackKind::RefuseAll,
                },
                ..RaesNet::default()
            })
            .label(),
            "RAES+byz-refuse-f0.05"
        );
        assert_eq!(
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::Eclipse {
                    fraction: 0.1,
                    attack: AttackKind::CapSaturator,
                },
                ..RaesNet::default()
            })
            .label(),
            "RAES+eclipse-cap-sat-f0.1"
        );
        assert_eq!(
            NetSpec::Raes(RaesNet {
                adversary: AdversaryModel::JoinFlood {
                    fraction: 0.2,
                    cohort: 8,
                    attack: AttackKind::SilentOnFlood,
                },
                ..RaesNet::default()
            })
            .label(),
            "RAES+joinflood-silent-f0.2-k8"
        );
        assert_eq!(NetSpec::Static.label(), "STATIC");
        assert_eq!(NetSpec::P2p.to_string(), "P2P");
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        // Degree-targeted deaths on streaming churn.
        let bad = tiny_scenario().victims([VictimPolicy::HighestDegree]);
        assert!(bad.validate().is_err());
        // Measurement/net mismatches.
        let bad = Scenario::new("x", "x", Measurement::StaticBaseline)
            .nets([NetSpec::Baseline(ModelKind::Sdg)])
            .full_grid(Grid::new([32], [2], 1));
        assert!(bad.validate().is_err());
        let bad = Scenario::new("x", "x", Measurement::OnionSkin)
            .nets([NetSpec::Baseline(ModelKind::Pdg)])
            .full_grid(Grid::new([32], [2], 1));
        assert!(bad.validate().is_err());
        // Baseline(Raes) is rejected in favour of NetSpec::Raes.
        let bad = Scenario::new(
            "x",
            "x",
            Measurement::Flooding(FloodingSpec {
                budget: RoundBudget::EngineDefault,
                record_isolation: false,
            }),
        )
        .nets([NetSpec::Baseline(ModelKind::Raes)])
        .full_grid(Grid::new([32], [2], 1));
        assert!(bad.validate().is_err());
        // The tiny scenario itself is fine.
        assert!(tiny_scenario().validate().is_ok());
    }

    #[test]
    fn registry_rejects_duplicates_and_finds_by_name() {
        let mut registry = ScenarioRegistry::new();
        registry.register(tiny_scenario());
        assert!(registry.get("test-flooding").is_some());
        assert_eq!(registry.names(), vec!["test-flooding"]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.register(tiny_scenario());
        }));
        assert!(result.is_err(), "duplicate registration must panic");
    }

    #[test]
    fn cell_records_round_trip_through_json_lines() {
        let record = CellRecord {
            scenario: "demo".to_string(),
            net: "RAES+a4".to_string(),
            n: 256,
            d: 8,
            victim: "uniform".to_string(),
            fault: None,
            trial: 3,
            seed: u64::MAX,
            metrics: vec![
                ("flooding_rounds".to_string(), 6.0),
                ("completed".to_string(), 1.0),
                ("weird \"metric\"".to_string(), f64::NAN),
            ],
        };
        let line = record.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = CellRecord::from_json_line(&line).unwrap();
        assert_eq!(parsed.scenario, record.scenario);
        assert_eq!(parsed.seed, u64::MAX);
        assert_eq!(parsed.metric("completed"), Some(1.0));
        assert!(parsed.metric("weird \"metric\"").unwrap().is_nan());
        assert_eq!(parsed.metric("missing"), None);
    }

    #[test]
    fn load_records_round_trip_through_json_lines() {
        let record = LoadRecord {
            scenario: "demo".to_string(),
            net: "SDGR".to_string(),
            n: 4096,
            d: 4,
            victim: "uniform".to_string(),
            trial: 2,
            seed: 99,
            wall_s: 0.125,
            unit: "events",
            units: 50_000.0,
            units_per_s: 400_000.0,
            phases: vec![("event-loop".to_string(), 0.1), ("churn".to_string(), 0.02)],
        };
        let line = record.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = LoadRecord::from_json_line(&line).unwrap();
        assert_eq!(parsed.scenario, record.scenario);
        assert_eq!(parsed.unit, "events");
        assert_eq!(parsed.wall_s.to_bits(), record.wall_s.to_bits());
        assert_eq!(parsed.units_per_s.to_bits(), record.units_per_s.to_bits());
        // JSON objects do not order keys: phases come back sorted by name.
        let mut expected = record.phases.clone();
        expected.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(parsed.phases, expected);

        // Without phases the key is omitted and parses back empty.
        let bare = LoadRecord {
            phases: Vec::new(),
            ..record.clone()
        };
        let bare_line = bare.to_json_line();
        assert!(!bare_line.contains("phases"));
        assert!(LoadRecord::from_json_line(&bare_line)
            .unwrap()
            .phases
            .is_empty());

        // Unknown work units are rejected, not silently leaked.
        let corrupt = bare_line.replace("\"events\"", "\"bogons\"");
        assert!(LoadRecord::from_json_line(&corrupt)
            .unwrap_err()
            .contains("bogons"));
    }

    #[test]
    fn load_load_records_reads_the_side_file_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("churn-load-side-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.load.jsonl");
        let record = LoadRecord {
            scenario: "x".into(),
            net: "SDG".into(),
            n: 8,
            d: 2,
            victim: "uniform".into(),
            trial: 0,
            seed: 1,
            wall_s: 0.5,
            unit: "rounds",
            units: 12.0,
            units_per_s: 24.0,
            phases: Vec::new(),
        };
        fs::write(
            &path,
            format!("{}\n\n{}\n", record.to_json_line(), record.to_json_line()),
        )
        .unwrap();
        let loaded = load_load_records(&path).unwrap();
        assert_eq!(loaded.len(), 2, "blank lines are skipped");
        assert_eq!(loaded[0], record);

        fs::write(&path, "{\"scenario\":\"x\",\"ne").unwrap();
        let err = load_load_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_scenario_checkpoints_and_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("churn-scenario-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let scenario = tiny_scenario();

        // Uninterrupted reference run.
        let full_opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.join("reference"),
            ..RunOptions::default()
        };
        let reference = run_scenario(&scenario, &full_opts).unwrap();
        assert_eq!(reference.executed, reference.total);
        assert_eq!(reference.skipped, 0);
        let reference_bytes = fs::read(&reference.path).unwrap();

        // Interrupted run: stop after 3 cells, then resume.
        let interrupted_opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.join("resumed"),
            limit: Some(3),
            ..RunOptions::default()
        };
        let partial = run_scenario(&scenario, &interrupted_opts).unwrap();
        assert_eq!(partial.executed, 3);
        let resume_opts = RunOptions {
            resume: true,
            limit: None,
            ..interrupted_opts
        };
        let resumed = run_scenario(&scenario, &resume_opts).unwrap();
        assert_eq!(resumed.skipped, 3);
        assert_eq!(resumed.executed, resumed.total - 3);
        let resumed_bytes = fs::read(&resumed.path).unwrap();
        assert_eq!(
            resumed_bytes, reference_bytes,
            "interrupted-then-resumed output must be bit-identical"
        );

        // Resuming a complete file executes nothing and rewrites nothing.
        let idle = run_scenario(&scenario, &resume_opts).unwrap();
        assert_eq!(idle.executed, 0);
        assert_eq!(idle.skipped, idle.total);
        assert_eq!(fs::read(&idle.path).unwrap(), reference_bytes);

        // A non-resume run starts fresh and reproduces the same bytes.
        let fresh = run_scenario(
            &scenario,
            &RunOptions {
                resume: false,
                ..resume_opts
            },
        )
        .unwrap();
        assert_eq!(fresh.executed, fresh.total);
        assert_eq!(fs::read(&fresh.path).unwrap(), reference_bytes);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_trailing_lines_are_dropped_on_load() {
        let dir =
            std::env::temp_dir().join(format!("churn-scenario-partial-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.jsonl");
        let record = CellRecord {
            scenario: "x".into(),
            net: "SDG".into(),
            n: 8,
            d: 2,
            victim: "uniform".into(),
            fault: None,
            trial: 0,
            seed: 1,
            metrics: vec![("m".into(), 1.0)],
        };
        fs::write(
            &path,
            format!("{}\n{{\"scenario\":\"x\",\"ne", record.to_json_line()),
        )
        .unwrap();
        let loaded = load_cell_records(&path).unwrap();
        assert_eq!(loaded, vec![record]);
        // A malformed line that is *not* the trailing partial write errors.
        fs::write(&path, "not json\n{}\n").unwrap();
        assert!(load_cell_records(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_cells_are_recorded_and_resume_repairs_bit_identically() {
        let dir = std::env::temp_dir().join(format!("churn-scenario-panic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Distinct base seed: the injection env var matches cells by seed and
        // is process-global, so no other test's cells may share seeds.
        let scenario = tiny_scenario().base_seed(0xFA11);

        let ref_opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.join("reference"),
            ..RunOptions::default()
        };
        let reference = run_scenario(&scenario, &ref_opts).unwrap();
        assert!(reference.failures.is_empty());
        let reference_bytes = fs::read(&reference.path).unwrap();

        // Blow up one mid-grid cell; the rest of the grid must keep running.
        let cells = scenario.cells(GridPreset::Full);
        let victim_seed = scenario.cell_seed(&cells[1]);
        let opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.join("hurt"),
            ..RunOptions::default()
        };
        std::env::set_var("CHURN_EXP_PANIC_SEED", victim_seed.to_string());
        let hurt = run_scenario(&scenario, &opts).unwrap();
        std::env::remove_var("CHURN_EXP_PANIC_SEED");

        assert_eq!(hurt.failures.len(), 1);
        assert_eq!(hurt.failures[0].seed, victim_seed);
        assert!(hurt.failures[0].error.contains("injected panic"));
        assert_eq!(hurt.executed, hurt.total - 1);
        assert_eq!(hurt.records.len(), hurt.total - 1);
        let failures_path = scenario_failures_path(&scenario, &opts);
        let side = fs::read_to_string(&failures_path).unwrap();
        assert_eq!(side.lines().count(), 1);
        assert!(side.contains(&format!("\"seed\":{victim_seed}")));
        let parsed_failure: CellFailure = hurt.failures[0].clone();
        assert_eq!(parsed_failure.to_json_line(), side.lines().next().unwrap());

        // Resume (without injection) retries exactly the failed cell, splices
        // it into its grid position, and clears the stale failure record.
        let resumed = run_scenario(
            &scenario,
            &RunOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.executed, 1);
        assert_eq!(resumed.skipped, resumed.total - 1);
        assert!(resumed.failures.is_empty());
        assert!(!failures_path.exists());
        assert_eq!(
            fs::read(&resumed.path).unwrap(),
            reference_bytes,
            "repaired file must be bit-identical to an uninterrupted run"
        );

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_writes_are_repaired_bit_identically_on_resume() {
        let dir = std::env::temp_dir().join(format!("churn-scenario-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let scenario = tiny_scenario().base_seed(0x7012);

        let opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.clone(),
            ..RunOptions::default()
        };
        let reference = run_scenario(&scenario, &opts).unwrap();
        let reference_bytes = fs::read(&reference.path).unwrap();
        let total = reference.total;

        // Torn write: the trailing record loses its newline and tail bytes.
        let mut data = reference_bytes.clone();
        data.truncate(data.len() - 10);
        fs::write(&reference.path, &data).unwrap();
        let loaded = load_cell_records(&reference.path).unwrap();
        assert_eq!(loaded.len(), total - 1, "torn trailing record is dropped");

        let resume_opts = RunOptions {
            resume: true,
            ..opts
        };
        let resumed = run_scenario(&scenario, &resume_opts).unwrap();
        assert_eq!(resumed.skipped, total - 1);
        assert_eq!(resumed.executed, 1);
        assert_eq!(
            fs::read(&resumed.path).unwrap(),
            reference_bytes,
            "file repaired across a torn write must be bit-identical"
        );

        // A corrupt *complete* trailing line (newline intact, JSON mangled)
        // is likewise dropped and repaired.
        let valid_prefix_len = reference_bytes
            .split_inclusive(|&b| b == b'\n')
            .take(total - 1)
            .map(<[u8]>::len)
            .sum::<usize>();
        let mut corrupt = reference_bytes[..valid_prefix_len].to_vec();
        corrupt.extend_from_slice(b"{\"scenario\":garbage}\n");
        fs::write(&reference.path, &corrupt).unwrap();
        assert_eq!(load_cell_records(&reference.path).unwrap().len(), total - 1);
        let repaired = run_scenario(&scenario, &resume_opts).unwrap();
        assert_eq!(repaired.executed, 1);
        assert_eq!(fs::read(&repaired.path).unwrap(), reference_bytes);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_and_full_presets_write_separate_files() {
        let s = tiny_scenario();
        let opts = RunOptions::default();
        assert_eq!(
            scenario_output_path(&s, &opts),
            PathBuf::from("results/test-flooding.jsonl")
        );
        let smoke = RunOptions {
            preset: GridPreset::Smoke,
            ..opts
        };
        assert_eq!(
            scenario_output_path(&s, &smoke),
            PathBuf::from("results/test-flooding.smoke.jsonl")
        );
        assert_eq!(
            scenario_load_path(&s, &smoke),
            PathBuf::from("results/test-flooding.smoke.load.jsonl")
        );
    }

    #[test]
    fn load_side_file_covers_executed_cells_and_resets_per_invocation() {
        let dir = std::env::temp_dir().join(format!("churn-scenario-load-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let scenario = tiny_scenario().base_seed(0x10AD);
        let opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.clone(),
            ..RunOptions::default()
        };
        let outcome = run_scenario(&scenario, &opts).unwrap();
        assert_eq!(outcome.loads.len(), outcome.total);
        let load_path = scenario_load_path(&scenario, &opts);
        let side = fs::read_to_string(&load_path).unwrap();
        assert_eq!(side.lines().count(), outcome.total);
        for load in &outcome.loads {
            // Flooding cells report rounds-per-second throughput.
            assert_eq!(load.unit, "rounds");
            assert!(load.wall_s >= 0.0);
            assert!(load.units > 0.0);
            assert!(side.contains(&format!("\"seed\":{}", load.seed)));
        }
        // The main checkpoint stays free of wall-clock columns.
        let main = fs::read_to_string(&outcome.path).unwrap();
        assert!(!main.contains("wall_s"));

        // A fully checkpointed resume executes nothing: the stale load file
        // (another invocation's wall clock) is removed, not carried over.
        let resumed = run_scenario(
            &scenario,
            &RunOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.executed, 0);
        assert!(resumed.loads.is_empty());
        assert!(!load_path.exists());

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn async_measurements_run_and_record_event_columns() {
        use churn_event::{BandwidthModel, LatencyModel};

        let dir = std::env::temp_dir().join(format!("churn-scenario-async-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let flooding = Scenario::new(
            "test-async-flooding",
            "async flooding smoke",
            Measurement::AsyncFlooding(AsyncFloodingSpec {
                latency: LatencyModel::Exponential { mean: 0.3 },
                bandwidth: BandwidthModel::drop_tail(8.0, 32),
                horizon: RoundBudget::Fixed(24),
            }),
        )
        .nets([NetSpec::Baseline(ModelKind::Sdgr), NetSpec::raes_default()])
        .full_grid(Grid::new([48], [3], 1))
        .base_seed(0xA51);
        flooding.validate().unwrap();

        let raes = Scenario::new(
            "test-async-raes",
            "async RAES load smoke",
            Measurement::AsyncRaes(AsyncRaesSpec {
                latency: LatencyModel::Fixed(0.1),
                bandwidth: BandwidthModel::delaying(16.0),
                horizon: RoundBudget::Fixed(32),
                flood: true,
            }),
        )
        .nets([NetSpec::raes_default()])
        .full_grid(Grid::new([48], [3], 1))
        .base_seed(0xA52);
        raes.validate().unwrap();

        let opts = RunOptions {
            preset: GridPreset::Full,
            dir: dir.clone(),
            ..RunOptions::default()
        };
        let flood_outcome = run_scenario(&flooding, &opts).unwrap();
        assert!(flood_outcome.failures.is_empty());
        for record in &flood_outcome.records {
            for column in [
                "events_processed",
                "messages_delivered",
                "messages_dropped",
                "p99_queue_delay",
                "emergent_rounds",
                "completion_time",
            ] {
                assert!(
                    record.metrics.iter().any(|(name, _)| name == column),
                    "missing {column} in async flooding record"
                );
            }
        }
        // Async cells report events-per-second throughput in the load file.
        assert!(flood_outcome.loads.iter().all(|l| l.unit == "events"));

        let raes_outcome = run_scenario(&raes, &opts).unwrap();
        assert!(raes_outcome.failures.is_empty());
        let record = &raes_outcome.records[0];
        for column in [
            "repairs_completed",
            "phantoms",
            "mean_repair_time",
            "p99_repair_time",
            "dangling_fraction",
            "flood_completion_time",
            "events_processed",
        ] {
            assert!(
                record.metrics.iter().any(|(name, _)| name == column),
                "missing {column} in async RAES record"
            );
        }
        let cap = record
            .metrics
            .iter()
            .find(|(name, _)| name == "in_degree_cap")
            .unwrap()
            .1;
        let max_in = record
            .metrics
            .iter()
            .find(|(name, _)| name == "max_in_degree")
            .unwrap()
            .1;
        assert!(max_in <= cap, "cap violated: {max_in} > {cap}");

        // Async runs checkpoint/resume bit-identically like every scenario.
        let bytes = fs::read(&flood_outcome.path).unwrap();
        let resumed = run_scenario(
            &flooding,
            &RunOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.executed, 0);
        assert_eq!(fs::read(&resumed.path).unwrap(), bytes);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn async_raes_rejects_incompatible_nets_and_victims() {
        use churn_event::{BandwidthModel, LatencyModel};

        let spec = AsyncRaesSpec {
            latency: LatencyModel::Fixed(0.1),
            bandwidth: BandwidthModel::unlimited(),
            horizon: RoundBudget::Fixed(16),
            flood: false,
        };
        // Baseline nets cannot run the message-level RAES model.
        let wrong_net = Scenario::new("bad", "t", Measurement::AsyncRaes(spec))
            .nets([NetSpec::Baseline(ModelKind::Sdgr)])
            .full_grid(Grid::new([32], [2], 1));
        assert!(wrong_net.validate().is_err());
        // Poisson-churn RAES nets are rejected (the async model streams).
        let poisson = Scenario::new("bad2", "t", Measurement::AsyncRaes(spec))
            .nets([NetSpec::Raes(RaesNet {
                churn: ChurnDriver::Poisson,
                ..RaesNet::default()
            })])
            .full_grid(Grid::new([32], [2], 1));
        assert!(poisson.validate().is_err());
        // Invalid latency parameters surface at registration.
        let bad_latency = Scenario::new(
            "bad3",
            "t",
            Measurement::AsyncFlooding(AsyncFloodingSpec {
                latency: LatencyModel::Uniform {
                    low: 2.0,
                    high: 1.0,
                },
                bandwidth: BandwidthModel::unlimited(),
                horizon: RoundBudget::Fixed(16),
            }),
        )
        .nets([NetSpec::Baseline(ModelKind::Sdgr)])
        .full_grid(Grid::new([32], [2], 1));
        assert!(bad_latency.validate().is_err());
    }
}
