//! Per-round observation plumbing over the graph's change feed.
//!
//! Experiment bodies that maintain incremental observers (`churn-observe`'s
//! snapshot/metric trackers) all need the same loop: enable
//! [`churn_graph::GraphDelta`] recording, advance the model one
//! message-delay unit, drain the recorded window into a reused buffer, and
//! hand `(round, model, summary, delta)` to the observers. This module is
//! that loop, written once, with the buffer reuse (steady-state observation
//! allocates nothing in the harness) and the enable-after-warm-up footgun
//! handled in one place.

use churn_core::{ChurnSummary, DynamicNetwork, GraphDelta};

/// Advances `model` by `rounds` message-delay units with delta recording
/// enabled, invoking `observer(round, model, summary, delta)` after every
/// unit. Rounds are numbered from 1.
///
/// Recording is restarted on entry — any window recorded *before* the call
/// (a warm-up performed with recording enabled, a half-drained window) is
/// **discarded**, so a stale giant delta can never leak into the first
/// observed round. The flip side: consecutive `observe_rounds` calls over
/// one model compose only while the model is *not mutated in between* —
/// mutations between calls land in the discarded window and observers that
/// were already attached silently desynchronise. If the model must advance
/// between observation windows, either rebuild the observers from the graph
/// (`IncrementalSnapshot::new` / `rebuild`) or drain the graph's delta
/// manually instead of relying on this helper. Recording is left enabled on
/// exit; call `model.graph_mut().set_delta_recording(false)` to detach.
///
/// Observers built from the graph between the model's last mutation and
/// this call (e.g. `IncrementalSnapshot::new`) see exactly the windows
/// their `apply` expects.
pub fn observe_rounds<M, F>(model: &mut M, rounds: u64, mut observer: F)
where
    M: DynamicNetwork + ?Sized,
    F: FnMut(u64, &M, &ChurnSummary, &GraphDelta),
{
    // Restart recording so a stale half-window from before the call cannot
    // desynchronise the observers.
    model.graph_mut().set_delta_recording(false);
    model.graph_mut().set_delta_recording(true);
    let mut delta = GraphDelta::new();
    for round in 1..=rounds {
        let summary = {
            let _churn = churn_telemetry::span("churn");
            model.advance_time_unit()
        };
        model.graph_mut().take_delta_into(&mut delta);
        let _observe = churn_telemetry::span("observe");
        observer(round, &*model, &summary, &delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_core::ModelKind;

    #[test]
    fn observer_sees_every_round_with_matching_lifecycle_events() {
        let mut model = ModelKind::Sdgr.build(32, 3, 5).unwrap();
        model.warm_up();
        let mut seen = Vec::new();
        observe_rounds(&mut model, 10, |round, m, summary, delta| {
            // Streaming: one birth and one death per warm round, visible in
            // both the summary and the delta.
            assert_eq!(summary.births.len(), 1);
            assert_eq!(summary.deaths.len(), 1);
            assert_eq!(delta.births.len(), 1);
            assert_eq!(delta.deaths.len(), 1);
            assert_eq!(delta.births[0].1, summary.births[0]);
            assert_eq!(delta.deaths[0].1, summary.deaths[0]);
            assert!(!delta.dirty.is_empty());
            assert_eq!(m.alive_count(), 32);
            seen.push(round);
        });
        assert_eq!(seen, (1..=10).collect::<Vec<_>>());
        assert!(
            model.graph().delta_recording(),
            "recording stays enabled so an immediate follow-up window \
             (no mutations in between) continues seamlessly"
        );
    }

    #[test]
    fn warm_up_churn_never_leaks_into_the_first_window() {
        let mut model = ModelKind::Pdg.build(64, 2, 6).unwrap();
        // Pathological caller: recording enabled across the warm-up.
        model.graph_mut().set_delta_recording(true);
        model.warm_up();
        observe_rounds(&mut model, 1, |_, _, summary, delta| {
            assert_eq!(
                delta.churn_events(),
                summary.births.len() + summary.deaths.len(),
                "the first observed window must cover exactly one round"
            );
        });
    }
}
