//! Measurement execution: one grid cell in, a flat list of named metrics out.
//!
//! Every [`Measurement`](super::Measurement) variant runs here, against the
//! cell's [`NetSpec`](super::NetSpec). The functions are deterministic given
//! `(cell, seed)` and thread-count independent (the sharded engines
//! guarantee output identical to their sequential paths), which is what the
//! scenario runner's checkpoint/resume bit-identity rests on.

use churn_core::expansion::{measure_expansion_on, SizeRange};
use churn_core::flooding::{
    run_flooding, run_flooding_parallel_observed, FloodingConfig, FloodingRecord, FloodingSource,
};
use churn_core::onion_skin::run_onion_skin;
use churn_core::{theory, ChurnSummary, DynamicNetwork, ModelEvent, ModelKind};
use churn_graph::expansion::ExpansionConfig;
use churn_graph::generators::d_out_random_graph;
use churn_graph::traversal::{connected_components, static_flooding_time};
use churn_graph::{DynamicGraph, NodeId, Snapshot};
use churn_observe::{
    IncrementalSnapshot, InformedOverlap, LifetimeIsolation, LiveMetrics, RecoveryCensus,
};
use churn_p2p::gossip::propagate_block_series;
use churn_p2p::health::overlay_health;
use churn_p2p::{P2pConfig, P2pNetwork};
use churn_protocol::{RaesConfig, RaesModel};
use churn_stochastic::rng::seeded_rng;
use churn_stochastic::OnlineStats;

use churn_event::{
    flooding as event_flooding, raes as event_raes, run_async_flooding_faulty,
    run_async_raes_faulty, AsyncFloodingConfig, AsyncRaesConfig, AsyncSource, EventStats,
    TraceMode,
};
use churn_telemetry::RoundSeries;

use super::{
    AsyncFloodingSpec, AsyncRaesSpec, CellSpec, ExpansionSpec, FloodingSpec, GridPreset,
    Measurement, NetSpec,
};
use crate::observer::observe_rounds;

/// Named metric list of one cell.
type Metrics = Vec<(&'static str, f64)>;

/// A type-erased dynamic network over every buildable [`NetSpec`]: the four
/// baselines, the RAES protocol and the p2p overlay. (The static baseline
/// has no churn process and is handled inside its measurement.)
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one net per cell; nothing stores these in bulk
pub enum AnyNet {
    /// A paper baseline model.
    Baseline(churn_core::AnyModel),
    /// The RAES maintenance protocol.
    Raes(Box<RaesModel>),
    /// The Bitcoin-like overlay.
    P2p(Box<P2pNetwork>),
}

macro_rules! delegate {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyNet::Baseline($m) => $body,
            AnyNet::Raes($m) => $body,
            AnyNet::P2p($m) => $body,
        }
    };
}

impl DynamicNetwork for AnyNet {
    fn graph(&self) -> &DynamicGraph {
        delegate!(self, m => m.graph())
    }

    fn graph_mut(&mut self) -> &mut DynamicGraph {
        delegate!(self, m => m.graph_mut())
    }

    fn degree_parameter(&self) -> usize {
        delegate!(self, m => m.degree_parameter())
    }

    fn expected_size(&self) -> usize {
        delegate!(self, m => m.expected_size())
    }

    fn edge_policy(&self) -> churn_core::EdgePolicy {
        delegate!(self, m => m.edge_policy())
    }

    fn model_kind(&self) -> ModelKind {
        delegate!(self, m => m.model_kind())
    }

    fn has_streaming_churn(&self) -> bool {
        delegate!(self, m => m.has_streaming_churn())
    }

    fn time(&self) -> f64 {
        delegate!(self, m => m.time())
    }

    fn churn_steps(&self) -> u64 {
        delegate!(self, m => m.churn_steps())
    }

    fn birth_time(&self, id: NodeId) -> Option<f64> {
        delegate!(self, m => m.birth_time(id))
    }

    fn newest_node(&self) -> Option<NodeId> {
        delegate!(self, m => m.newest_node())
    }

    fn advance_time_unit(&mut self) -> ChurnSummary {
        delegate!(self, m => m.advance_time_unit())
    }

    fn warm_up(&mut self) {
        delegate!(self, m => m.warm_up())
    }

    fn is_warm(&self) -> bool {
        delegate!(self, m => m.is_warm())
    }

    fn drain_events(&mut self) -> Vec<ModelEvent> {
        delegate!(self, m => m.drain_events())
    }
}

/// Builds the cell's network, warm and ready to measure.
fn build_net(cell: &CellSpec, seed: u64) -> AnyNet {
    match cell.net {
        NetSpec::Baseline(kind) => AnyNet::Baseline(
            kind.build_with_victim(cell.n, cell.d, seed, cell.victim)
                .expect("scenario validated at registration"),
        ),
        NetSpec::Raes(spec) => AnyNet::Raes(Box::new(
            RaesModel::new(
                RaesConfig::new(cell.n, cell.d)
                    .churn(spec.churn)
                    .saturation(spec.saturation)
                    .capacity_factor(spec.capacity)
                    .attempts_per_round(spec.attempts)
                    .adversary(spec.adversary)
                    .victim_policy(cell.victim)
                    .seed(seed),
            )
            .expect("scenario validated at registration"),
        )),
        NetSpec::P2p => AnyNet::P2p(Box::new(
            P2pNetwork::new(
                P2pConfig::new(cell.n)
                    .target_outbound(cell.d)
                    .max_inbound(125)
                    .seed(seed),
            )
            .expect("scenario validated at registration"),
        )),
        NetSpec::Static => unreachable!("static cells never build a dynamic network"),
    }
}

/// Runs one cell's measurement. Deterministic given `(measurement, cell,
/// seed)`; `threads` only budgets the in-cell engines (whose output is
/// thread-count independent), `preset` picks the cheap knobs of the
/// measurements that have one.
///
/// With `series` on, measurements that support it
/// ([`Measurement::supports_series`]) additionally return their per-round
/// trajectory. Series capture is strictly passive — it reads state the
/// engines already produce (the sync records' round vectors, the async
/// schedulers' event traces), so the metrics are identical either way.
pub(super) fn run_cell(
    measurement: &Measurement,
    cell: &CellSpec,
    seed: u64,
    threads: usize,
    preset: GridPreset,
    series: bool,
) -> (Metrics, Option<RoundSeries>) {
    match *measurement {
        Measurement::Flooding(spec) => flooding_cell(cell, seed, spec, series),
        Measurement::ParallelFlooding(spec) => {
            parallel_flooding_cell(cell, seed, spec, threads, series)
        }
        Measurement::PartialFlooding => (partial_flooding_cell(cell, seed), None),
        Measurement::Isolation => (isolation_cell(cell, seed), None),
        Measurement::Expansion(spec) => (expansion_cell(cell, seed, spec, threads), None),
        Measurement::RaesTracking {
            samples,
            interval_div,
        } => raes_tracking_cell(cell, seed, samples, interval_div, preset, series),
        Measurement::OnionSkin => (onion_skin_cell(cell, seed), None),
        Measurement::PoissonDemographics { units, smoke_units } => {
            let units = match preset {
                GridPreset::Full => units,
                GridPreset::Smoke => smoke_units,
            };
            (poisson_demographics_cell(cell, seed, units), None)
        }
        Measurement::StaticBaseline => (static_baseline_cell(cell, seed), None),
        Measurement::P2pPropagation {
            blocks,
            smoke_blocks,
        } => {
            let blocks = match preset {
                GridPreset::Full => blocks,
                GridPreset::Smoke => smoke_blocks,
            };
            (p2p_cell(cell, seed, blocks), None)
        }
        Measurement::AsyncFlooding(spec) => async_flooding_cell(cell, seed, spec, series),
        Measurement::AsyncRaes(spec) => async_raes_cell(cell, seed, spec, series),
    }
}

/// The deterministic event-layer load columns shared by every asynchronous
/// cell: event and message counts, queue pressure, and the simulated-time
/// queue-delay statistics. Wall-clock throughput is *not* here — the runner
/// measures it around the cell and writes it to the non-checkpointed
/// `.load.jsonl` side file, keeping the main records bit-reproducible.
fn event_stats_metrics(stats: &EventStats, out: &mut Metrics) {
    out.push(("events_processed", stats.events_processed as f64));
    out.push(("messages_sent", stats.messages_sent as f64));
    out.push(("messages_delivered", stats.messages_delivered as f64));
    out.push(("messages_dropped", stats.messages_dropped as f64));
    out.push(("messages_lost", stats.messages_lost as f64));
    out.push(("peak_backlog", stats.peak_backlog as f64));
    out.push(("mean_queue_delay", stats.mean_queue_delay()));
    out.push(("p99_queue_delay", stats.p99_queue_delay()));
    out.push(("sim_time", stats.sim_time));
}

/// The fault-layer counters, appended only for cells with an active fault
/// point — the `none` rows keep the pre-fault column schema, which is what
/// their byte-for-byte anchor to the fault-free sibling scenarios rests on.
fn fault_stats_metrics(stats: &EventStats, out: &mut Metrics) {
    out.push(("messages_fault_lost", stats.messages_fault_lost as f64));
    out.push(("messages_duplicated", stats.messages_duplicated as f64));
    out.push(("messages_reordered", stats.messages_reordered as f64));
    out.push(("messages_blocked", stats.messages_blocked as f64));
    out.push(("messages_to_down", stats.messages_to_down as f64));
    out.push(("messages_crash_voided", stats.messages_crash_voided as f64));
    out.push(("crashes", stats.crashes as f64));
    out.push(("restarts", stats.restarts as f64));
    out.push(("redundancy_overhead", stats.redundancy_overhead()));
}

/// Per-round series of the synchronous flooding measurements, read straight
/// off the record's round trajectory. Columns: `informed_fraction`,
/// `informed`, `alive`, `newly_informed`; Byzantine cells add
/// `informed_honest` and `alive_honest`.
fn flooding_series(record: &FloodingRecord, byz: bool) -> RoundSeries {
    let mut series = RoundSeries::new();
    for stats in &record.rounds {
        let mut row: Vec<(&'static str, f64)> = vec![
            ("informed_fraction", stats.informed_fraction()),
            ("informed", stats.informed as f64),
            ("alive", stats.alive as f64),
            ("newly_informed", stats.newly_informed as f64),
        ];
        if byz {
            row.push(("informed_honest", stats.informed_honest as f64));
            row.push(("alive_honest", stats.alive_honest as f64));
        }
        series.push_round(&row);
    }
    series
}

/// Event-driven asynchronous flooding over the cell's (churning) network.
///
/// Series columns (one row per unit of simulated time, from the scheduler's
/// event trace): `informed_fraction`, `informed` (cumulative ever-informed),
/// `alive`, `newly_informed`, `duplicates`, `lost`, `blocked`; fault cells
/// add `crashes`, `restarts` and `pulls`. The trace recorder is passive —
/// turning it on changes no RNG stream and no metric.
fn async_flooding_cell(
    cell: &CellSpec,
    seed: u64,
    spec: AsyncFloodingSpec,
    series: bool,
) -> (Metrics, Option<RoundSeries>) {
    let mut net = build_net(cell, seed);
    net.warm_up();
    let horizon = spec.horizon.resolve(cell.n) as f64;
    let cfg = AsyncFloodingConfig {
        latency: spec.latency,
        bandwidth: spec.bandwidth,
        horizon,
        churn: true,
        trace: if series {
            TraceMode::Bins
        } else {
            TraceMode::Off
        },
    };
    let plan = cell.fault.resolve();
    let record = run_async_flooding_faulty(&mut net, AsyncSource::Newest, &cfg, &plan, seed);
    let mut out: Metrics = vec![
        ("informed", record.informed as f64),
        ("alive", record.alive as f64),
        ("completed", f64::from(record.complete)),
        ("completion_time", record.completion_time.unwrap_or(horizon)),
        ("emergent_rounds", f64::from(record.emergent_rounds)),
        ("final_fraction", record.final_fraction()),
    ];
    event_stats_metrics(&record.stats, &mut out);
    if !cell.fault.is_none() {
        fault_stats_metrics(&record.stats, &mut out);
        out.push(("anti_entropy_pulls", record.stats.anti_entropy_pulls as f64));
        if let Some(window) = cell.fault.partition {
            // The heal census: per-block informed fractions at the heal
            // instant, the stall floor during the partition, and how long
            // the flood needed after the heal (horizon-capped when it never
            // completed — the convention `completion_time` uses).
            let heal = record.stats.heal_time.unwrap_or(window.heal);
            out.push(("heal_time", heal));
            out.push((
                "time_to_reheal",
                record
                    .stats
                    .time_to_reheal
                    .unwrap_or((horizon - heal).max(0.0)),
            ));
            let fractions = &record.stats.heal_block_informed;
            out.push((
                "heal_min_block_informed",
                fractions.iter().copied().fold(1.0, f64::min),
            ));
            out.push((
                "heal_max_block_informed",
                fractions.iter().copied().fold(0.0, f64::max),
            ));
            // End-of-run recovery census: did every block catch back up
            // after the heal? (The heal-instant fractions above are the
            // state anti-entropy had to recover *from*.)
            let informed = record.informed_ids();
            let census = RecoveryCensus::take(
                net.graph(),
                window.blocks,
                |id| plan.block_of(0, id),
                |id| informed.binary_search(&NodeId::new(id)).is_ok(),
            );
            out.push(("final_min_block_informed", census.min_fraction()));
            out.push(("partition_recovered", f64::from(census.recovered())));
        }
    }
    let series = series.then(|| {
        let faulty = !cell.fault.is_none();
        let bins = record.bins.as_ref().expect("bins-mode run records bins");
        let mut out = RoundSeries::new();
        let mut informed_total = 0.0f64;
        for bucket in 0..bins.len() {
            let newly = bins.count(event_flooding::TRACE_INFORMED, bucket) as f64;
            informed_total += newly;
            let alive = bins.alive(bucket);
            let mut row: Vec<(&'static str, f64)> = vec![
                ("informed_fraction", informed_total / alive.max(1.0)),
                ("informed", informed_total),
                ("alive", alive),
                ("newly_informed", newly),
                (
                    "duplicates",
                    bins.count(event_flooding::TRACE_DUPLICATE, bucket) as f64,
                ),
                (
                    "lost",
                    bins.count(event_flooding::TRACE_LOST, bucket) as f64,
                ),
                (
                    "blocked",
                    bins.count(event_flooding::TRACE_BLOCKED, bucket) as f64,
                ),
            ];
            if faulty {
                row.push((
                    "crashes",
                    bins.count(event_flooding::TRACE_CRASH, bucket) as f64,
                ));
                row.push((
                    "restarts",
                    bins.count(event_flooding::TRACE_RESTART, bucket) as f64,
                ));
                row.push((
                    "pulls",
                    bins.count(event_flooding::TRACE_PULL, bucket) as f64,
                ));
            }
            out.push_round(&row);
        }
        out
    });
    (out, series)
}

/// Event-driven asynchronous RAES repair under message load.
///
/// Series columns (one row per unit of simulated time, from the scheduler's
/// event trace): `requests`, `replies`, `repaired`, `alive`; fault cells add
/// `sheds`, `crashes` and `restarts`.
fn async_raes_cell(
    cell: &CellSpec,
    seed: u64,
    spec: AsyncRaesSpec,
    series: bool,
) -> (Metrics, Option<RoundSeries>) {
    let NetSpec::Raes(net) = cell.net else {
        unreachable!("scenario validated at registration")
    };
    let horizon = spec.horizon.resolve(cell.n) as f64;
    let retry = cell.fault.effective_retry();
    let cfg = AsyncRaesConfig {
        n: cell.n,
        d: cell.d,
        capacity_factor: net.capacity,
        latency: spec.latency,
        bandwidth: spec.bandwidth,
        horizon,
        flood_at: spec.flood.then_some(horizon / 4.0),
        retry_timeout: 8.0,
        backoff_factor: retry.factor,
        backoff_jitter: retry.jitter,
        retry_budget: retry.budget,
        trace: if series {
            TraceMode::Bins
        } else {
            TraceMode::Off
        },
    };
    let plan = cell.fault.resolve();
    let record = run_async_raes_faulty(&cfg, &plan, seed);
    let mut out: Metrics = vec![
        ("repairs_completed", record.repairs_completed as f64),
        ("repair_requests", record.repair_requests as f64),
        ("rejections", record.rejections as f64),
        ("phantoms", record.phantoms as f64),
        ("mean_repair_time", record.mean_repair_time),
        ("p99_repair_time", record.p99_repair_time),
        ("dangling_fraction", record.dangling_fraction),
        ("max_in_degree", record.max_in_degree as f64),
        ("in_degree_cap", record.in_degree_cap as f64),
    ];
    if spec.flood {
        let flood = record.flood.as_ref();
        out.push(("flood_informed", flood.map_or(0.0, |f| f.informed as f64)));
        out.push((
            "flood_completed",
            flood.map_or(0.0, |f| f64::from(f.complete)),
        ));
        out.push((
            "flood_completion_time",
            flood.and_then(|f| f.completion_time).unwrap_or(horizon),
        ));
        out.push((
            "flood_emergent_rounds",
            flood.map_or(0.0, |f| f64::from(f.emergent_rounds)),
        ));
    }
    event_stats_metrics(&record.stats, &mut out);
    if !cell.fault.is_none() {
        fault_stats_metrics(&record.stats, &mut out);
        out.push(("retransmits", record.stats.retransmits as f64));
        out.push(("retries_exhausted", record.stats.retries_exhausted as f64));
        out.push(("mean_retransmits", record.stats.mean_retransmits()));
        out.push(("max_retransmits", f64::from(record.stats.max_retransmits())));
        out.push(("p99_backoff", record.stats.p99_backoff()));
    }
    let series = series.then(|| {
        let faulty = !cell.fault.is_none();
        let bins = record.bins.as_ref().expect("bins-mode run records bins");
        let mut out = RoundSeries::new();
        for bucket in 0..bins.len() {
            let mut row: Vec<(&'static str, f64)> = vec![
                (
                    "requests",
                    bins.count(event_raes::TRACE_REQUEST, bucket) as f64,
                ),
                (
                    "replies",
                    bins.count(event_raes::TRACE_REPLY, bucket) as f64,
                ),
                (
                    "repaired",
                    bins.count(event_raes::TRACE_REPAIRED, bucket) as f64,
                ),
                ("alive", bins.alive(bucket)),
            ];
            if faulty {
                row.push(("sheds", bins.count(event_raes::TRACE_SHED, bucket) as f64));
                row.push((
                    "crashes",
                    bins.count(event_raes::TRACE_CRASH, bucket) as f64,
                ));
                row.push((
                    "restarts",
                    bins.count(event_raes::TRACE_RESTART, bucket) as f64,
                ));
            }
            out.push_round(&row);
        }
        out
    });
    (out, series)
}

/// The isolated fraction of the current topology (nodes with no incident
/// links over alive nodes).
fn isolated_fraction(net: &AnyNet) -> f64 {
    LiveMetrics::new(net.graph()).isolated_count() as f64 / net.alive_count().max(1) as f64
}

/// The flooding metrics shared by the sequential and parallel measurements.
fn flooding_metrics(record: &FloodingRecord, max_rounds: u64, out: &mut Metrics) {
    out.push((
        "flooding_rounds",
        record
            .outcome
            .rounds()
            .unwrap_or(max_rounds)
            .min(max_rounds) as f64,
    ));
    out.push(("completed", f64::from(record.outcome.is_complete())));
    out.push(("died_out", f64::from(record.outcome.is_died_out())));
    out.push(("final_fraction", record.final_fraction()));
    out.push(("peak_informed", record.peak_informed() as f64));
}

/// RAES protocol health, appended for RAES cells of the flooding
/// measurements.
fn raes_metrics(model: &RaesModel, out: &mut Metrics) {
    let alive = model.alive_count().max(1);
    out.push(("max_in_degree", model.max_in_degree() as f64));
    out.push(("in_degree_cap", model.in_degree_cap() as f64));
    out.push(("rejection_rate", model.stats().rejection_rate()));
    out.push(("mean_repair_latency", model.stats().mean_repair_latency()));
    out.push((
        "pending_backlog",
        model.pending_requests().len() as f64 / alive as f64,
    ));
}

/// Whether the cell's net spec configures an active Byzantine adversary.
/// The *spec* gates the Byzantine metric columns (not the realized
/// corruption), so every trial of a net reports the same schema even when a
/// small-`n` low-`f` trial happens to corrupt nobody.
fn byz_spec(cell: &CellSpec) -> bool {
    matches!(cell.net, NetSpec::Raes(spec) if spec.adversary.is_active())
}

/// Honest-only flooding variants, appended for adversarial RAES cells
/// alongside the global figures.
fn honest_flooding_metrics(record: &FloodingRecord, max_rounds: u64, out: &mut Metrics) {
    let honest_rounds = record
        .rounds
        .iter()
        .position(|r| r.honest_complete)
        .map_or(max_rounds, |p| (p as u64 + 1).min(max_rounds));
    out.push(("honest_flooding_rounds", honest_rounds as f64));
    let last = record.rounds.last();
    out.push((
        "honest_completed",
        f64::from(last.is_some_and(|r| r.honest_complete)),
    ));
    out.push((
        "honest_final_fraction",
        last.map_or(0.0, |r| r.honest_fraction()),
    ));
}

/// Byzantine-degradation counters, appended for adversarial RAES cells.
fn byz_raes_metrics(model: &RaesModel, out: &mut Metrics) {
    let stats = model.stats();
    let alive = model.alive_count().max(1);
    out.push((
        "byz_alive_fraction",
        model.graph().tagged_member_count() as f64 / alive as f64,
    ));
    out.push(("byz_refused", stats.byz_refused as f64));
    out.push(("byz_accept_drops", stats.byz_accept_drops as f64));
    out.push(("byz_requests_sent", stats.byz_requests_sent as f64));
    out.push((
        "mean_honest_repair_latency",
        stats.mean_honest_repair_latency(),
    ));
    out.push((
        "max_victim_cap_occupancy",
        stats.max_victim_cap_occupancy as f64,
    ));
}

fn flooding_cell(
    cell: &CellSpec,
    seed: u64,
    spec: FloodingSpec,
    series: bool,
) -> (Metrics, Option<RoundSeries>) {
    let mut net = build_net(cell, seed);
    net.warm_up();
    let mut out = Metrics::new();
    if spec.record_isolation {
        out.push(("isolated_fraction", isolated_fraction(&net)));
    }
    let max_rounds = spec.budget.resolve(cell.n);
    let record = run_flooding(
        &mut net,
        FloodingSource::NextToJoin,
        &FloodingConfig::with_max_rounds(max_rounds),
    );
    flooding_metrics(&record, max_rounds, &mut out);
    if let AnyNet::Raes(model) = &net {
        raes_metrics(model, &mut out);
        if byz_spec(cell) {
            honest_flooding_metrics(&record, max_rounds, &mut out);
            byz_raes_metrics(model, &mut out);
        }
    }
    let series = series.then(|| flooding_series(&record, byz_spec(cell)));
    (out, series)
}

fn parallel_flooding_cell(
    cell: &CellSpec,
    seed: u64,
    spec: FloodingSpec,
    threads: usize,
    series: bool,
) -> (Metrics, Option<RoundSeries>) {
    let mut net = build_net(cell, seed);
    net.warm_up();
    let mut out = Metrics::new();
    if spec.record_isolation {
        out.push(("isolated_fraction", isolated_fraction(&net)));
    }
    let max_rounds = spec.budget.resolve(cell.n);
    // The observe pipeline rides along: the informed-alive overlap is
    // maintained per round from the graph's change feed (deaths retire
    // marks *before* the round's new marks land, so a recycled cell whose
    // newborn got informed survives).
    let mut overlap = InformedOverlap::new();
    let record = run_flooding_parallel_observed(
        &mut net,
        FloodingSource::NextToJoin,
        &FloodingConfig::with_max_rounds(max_rounds),
        threads,
        |_, delta, engine| {
            overlap.apply(delta);
            for idx in engine.newly_informed_dense() {
                overlap.mark(idx);
            }
        },
    );
    flooding_metrics(&record, max_rounds, &mut out);
    // Informed-overlap per structural class: which part of the alive
    // population the broadcast missed, split by degree class.
    let graph = net.graph();
    let alive = graph.len().max(1);
    let mut uninformed = 0usize;
    let mut uninformed_isolated = 0usize;
    let mut uninformed_low_degree = 0usize;
    let mut uninformed_honest = 0usize;
    for &idx in graph.member_indices() {
        if overlap.is_informed(idx) {
            continue;
        }
        uninformed += 1;
        // An untagged graph reads tag 0 everywhere, so on honest runs this
        // counter mirrors `uninformed` (it is only reported for Byzantine
        // cells).
        if graph.tag_at(idx) == 0 {
            uninformed_honest += 1;
        }
        let links = graph
            .incident_link_count_at(idx)
            .expect("member cells are occupied");
        if links == 0 {
            uninformed_isolated += 1;
        }
        if links < cell.d {
            uninformed_low_degree += 1;
        }
    }
    out.push(("informed_alive_overlap", overlap.overlap_fraction(alive)));
    out.push(("uninformed_alive", uninformed as f64));
    let uninformed_base = uninformed.max(1) as f64;
    out.push((
        "uninformed_isolated_fraction",
        uninformed_isolated as f64 / uninformed_base,
    ));
    out.push((
        "uninformed_low_degree_fraction",
        uninformed_low_degree as f64 / uninformed_base,
    ));
    if let AnyNet::Raes(model) = &net {
        raes_metrics(model, &mut out);
        if byz_spec(cell) {
            honest_flooding_metrics(&record, max_rounds, &mut out);
            out.push(("uninformed_honest", uninformed_honest as f64));
            byz_raes_metrics(model, &mut out);
        }
    }
    let series = series.then(|| flooding_series(&record, byz_spec(cell)));
    (out, series)
}

fn partial_flooding_cell(cell: &CellSpec, seed: u64) -> Metrics {
    let (n, d) = (cell.n, cell.d);
    let mut net = build_net(cell, seed);
    net.warm_up();
    let target = theory::partial_flooding_fraction(d, net.has_streaming_churn());
    // O(log n / log d) + O(d) rounds, with a generous constant (Theorems
    // 3.8 / 4.13).
    let budget =
        (6.0 * (n as f64).log2() / (d as f64).log2().max(1.0)).ceil() as u64 + 2 * d as u64 + 10;
    let record = run_flooding(
        &mut net,
        FloodingSource::NextToJoin,
        &FloodingConfig {
            max_rounds: budget,
            target_fraction: None,
            stop_when_complete: true,
        },
    );
    let coverage = record.final_fraction();
    vec![
        ("target", target),
        ("budget", budget as f64),
        ("coverage", coverage),
        (
            "reached_target",
            f64::from(coverage >= target || record.outcome.is_complete()),
        ),
        (
            "rounds_to_target",
            record
                .rounds_to_fraction(target)
                .map_or(f64::NAN, |r| r as f64),
        ),
    ]
}

fn isolation_cell(cell: &CellSpec, seed: u64) -> Metrics {
    let mut net = build_net(cell, seed);
    net.warm_up();
    let horizon = if net.has_streaming_churn() {
        cell.n as u64
    } else {
        3 * cell.n as u64
    };
    let alive = net.alive_count().max(1);
    let mut tracker = LifetimeIsolation::start(net.graph());
    let isolated_now = tracker.initial_isolated().len();
    observe_rounds(&mut net, horizon, |_, m, _, delta| {
        tracker.apply(m.graph(), delta);
    });
    let lifetime = tracker.finish(net.graph());
    vec![
        ("isolated_fraction", isolated_now as f64 / alive as f64),
        ("lifetime_fraction", lifetime.len() as f64 / alive as f64),
        ("horizon", horizon as f64),
    ]
}

fn expansion_cell(cell: &CellSpec, seed: u64, spec: ExpansionSpec, threads: usize) -> Metrics {
    let mut net = build_net(cell, seed);
    net.warm_up();
    let config = if spec.fast {
        ExpansionConfig::fast()
    } else {
        ExpansionConfig::default()
    };
    let mut rng = seeded_rng(seed ^ 0xABCD);
    let streaming = net.has_streaming_churn();
    let mut inc = IncrementalSnapshot::new(net.graph()).with_threads(threads);
    if let Some(window) = cell.n.checked_div(spec.initial_window_div) {
        let window = window.max(4) as u64;
        observe_rounds(&mut net, window, |_, m, _, delta| {
            inc.apply(m.graph(), delta);
        });
    }
    let interval = (cell.n / spec.interval_div.max(1)).max(8) as u64;
    let mut worst_full = f64::INFINITY;
    let mut worst_large = f64::INFINITY;
    let mut large_min_size = 0usize;
    for sample in 0..spec.samples.max(1) {
        if sample > 0 {
            observe_rounds(&mut net, interval, |_, m, _, delta| {
                inc.apply(m.graph(), delta);
            });
        }
        let snapshot = inc.to_snapshot();
        let time = net.time();
        if spec.large_sets {
            let bounds = SizeRange::LargeSets.bounds_for(snapshot.len(), cell.d, streaming);
            large_min_size = bounds.0;
            if let Some(value) =
                measure_expansion_on(&snapshot, bounds, &config, &mut rng, time).value()
            {
                worst_large = worst_large.min(value);
            }
        }
        let bounds = SizeRange::Full.bounds_for(snapshot.len(), cell.d, streaming);
        if let Some(value) =
            measure_expansion_on(&snapshot, bounds, &config, &mut rng, time).value()
        {
            worst_full = worst_full.min(value);
        }
    }
    let mut out = Metrics::new();
    if spec.large_sets {
        out.push((
            "large_set_expansion",
            if worst_large.is_finite() {
                worst_large
            } else {
                f64::NAN
            },
        ));
        out.push(("large_min_size", large_min_size as f64));
    }
    out.push((
        "full_range_expansion",
        if worst_full.is_finite() {
            worst_full
        } else {
            f64::NAN
        },
    ));
    out
}

/// RAES realized-graph tracking. Series columns (one row per observed
/// round): `isolated`, `max_in_degree`, `saturated_fraction`, `alive`.
fn raes_tracking_cell(
    cell: &CellSpec,
    seed: u64,
    samples: u64,
    interval_div: usize,
    preset: GridPreset,
    series: bool,
) -> (Metrics, Option<RoundSeries>) {
    let mut net = build_net(cell, seed);
    net.warm_up();
    let AnyNet::Raes(ref model) = net else {
        unreachable!("validated: RaesTracking runs on RAES nets");
    };
    let cap = model.in_degree_cap();
    let config = match preset {
        GridPreset::Full => ExpansionConfig::default(),
        GridPreset::Smoke => ExpansionConfig::fast(),
    };
    let interval = (cell.n / interval_div.max(1)).max(8) as u64;
    let mut rng = seeded_rng(seed ^ 0x5BAE);
    let mut inc = IncrementalSnapshot::new(net.graph());
    let mut metrics = LiveMetrics::new(net.graph());
    let mut min_expansion = f64::INFINITY;
    let mut max_in_degree = metrics.max_in_requests();
    let mut saturated_sum = 0.0f64;
    let mut saturated_rounds = 0u64;
    let mut isolated_rounds = 0u64;
    let mut rounds_series = series.then(RoundSeries::new);
    for _ in 0..samples {
        observe_rounds(&mut net, interval, |_, m, _, delta| {
            inc.apply(m.graph(), delta);
            metrics.apply(m.graph(), delta);
            max_in_degree = max_in_degree.max(metrics.max_in_requests());
            let alive = m.alive_count();
            let saturated = metrics.saturated_count(cap) as f64 / alive.max(1) as f64;
            saturated_sum += saturated;
            saturated_rounds += 1;
            isolated_rounds += u64::from(metrics.isolated_count() > 0);
            if let Some(rounds_series) = rounds_series.as_mut() {
                rounds_series.push_round(&[
                    ("isolated", metrics.isolated_count() as f64),
                    ("max_in_degree", metrics.max_in_requests() as f64),
                    ("saturated_fraction", saturated),
                    ("alive", alive as f64),
                ]);
            }
        });
        let snapshot = inc.to_snapshot();
        let bounds = SizeRange::Full.bounds_for(snapshot.len(), cell.d, net.has_streaming_churn());
        if let Some(value) =
            measure_expansion_on(&snapshot, bounds, &config, &mut rng, net.time()).value()
        {
            min_expansion = min_expansion.min(value);
        }
    }
    let out = vec![
        (
            "min_h_out",
            if min_expansion.is_finite() {
                min_expansion
            } else {
                f64::NAN
            },
        ),
        ("max_in_degree", max_in_degree as f64),
        ("in_degree_cap", cap as f64),
        (
            "mean_saturated_fraction",
            saturated_sum / saturated_rounds.max(1) as f64,
        ),
        ("isolated_rounds", isolated_rounds as f64),
    ];
    (out, rounds_series)
}

fn onion_skin_cell(cell: &CellSpec, seed: u64) -> Metrics {
    let net = build_net(cell, seed);
    let AnyNet::Baseline(mut model) = net else {
        unreachable!("validated: OnionSkin runs on Baseline(Sdg)");
    };
    model.warm_up();
    let streaming = model
        .as_streaming()
        .expect("validated: OnionSkin runs on Baseline(Sdg)");
    let trace = run_onion_skin(streaming);
    // Early growth factors only: the multiplicative regime of Claim 3.10
    // holds while the reached sets are small compared to n; cut at n/4 where
    // saturation dominates, and record at most the first 3 factors.
    let saturation = cell.n / 4;
    let mut growth = OnlineStats::new();
    for (i, w) in trace.phases.windows(2).enumerate() {
        if w[1].old_total > saturation || i >= 3 {
            break;
        }
        if w[0].new_old > 0 {
            growth.push(w[1].new_old as f64 / w[0].new_old as f64);
        }
    }
    vec![
        (
            "early_growth",
            if growth.count() == 0 {
                f64::NAN
            } else {
                growth.mean()
            },
        ),
        ("phases", trace.phase_count() as f64),
        ("reached_fraction", trace.reached() as f64 / cell.n as f64),
    ]
}

fn poisson_demographics_cell(cell: &CellSpec, seed: u64, units: u64) -> Metrics {
    let mut net = build_net(cell, seed);
    net.warm_up();
    // Settle past the warm-up boundary (the paper observes from t = 6n; the
    // model is warm at 3n).
    net.advance_time_units(3 * cell.n as u64);
    let n = cell.n;
    let (lo, hi) = theory::poisson_population_band(n);
    let mut population = OnlineStats::new();
    let mut in_band = 0u64;
    let mut births = 0u64;
    let mut deaths = 0u64;
    let mut max_age: f64 = 0.0;
    for _ in 0..units {
        let summary = net.advance_time_unit();
        births += summary.births.len() as u64;
        deaths += summary.deaths.len() as u64;
        let size = net.alive_count() as f64;
        population.push(size);
        if size >= lo && size <= hi {
            in_band += 1;
        }
        for id in net.alive_ids() {
            max_age = max_age.max(net.age(id).unwrap_or(0.0));
        }
    }
    let death_rate = deaths as f64 / units.max(1) as f64;
    vec![
        ("mean_population", population.mean()),
        ("band_fraction", in_band as f64 / units.max(1) as f64),
        (
            "death_share",
            deaths as f64 / (births + deaths).max(1) as f64,
        ),
        ("max_age_over_n", max_age / n as f64),
        (
            "lifetime_ratio",
            if death_rate > 0.0 {
                population.mean() / death_rate / n as f64
            } else {
                f64::NAN
            },
        ),
    ]
}

fn static_baseline_cell(cell: &CellSpec, seed: u64) -> Metrics {
    let mut rng = seeded_rng(seed);
    let graph = d_out_random_graph(cell.n, cell.d, &mut rng);
    let snapshot = Snapshot::of(&graph);
    let connected = connected_components(&snapshot).is_connected();
    let expansion = churn_graph::expansion::ExpansionEstimator::new(ExpansionConfig::fast())
        .estimate(&snapshot, 1, snapshot.len() / 2, &mut rng);
    vec![
        ("connected", f64::from(connected)),
        ("expansion", expansion.value().unwrap_or(f64::NAN)),
        (
            "flooding_time",
            static_flooding_time(&snapshot, 0).map_or(f64::NAN, |t| t as f64),
        ),
    ]
}

fn p2p_cell(cell: &CellSpec, seed: u64, blocks: usize) -> Metrics {
    let net = build_net(cell, seed);
    let AnyNet::P2p(mut overlay) = net else {
        unreachable!("validated: P2pPropagation runs on P2p nets");
    };
    overlay.warm_up();
    let health = overlay_health(&overlay);
    let mut rng = seeded_rng(seed ^ 0x9B2B);
    let expansion = churn_core::expansion::measure_expansion(
        &*overlay,
        SizeRange::Full,
        &ExpansionConfig::fast(),
        &mut rng,
    );
    let reports = propagate_block_series(&mut overlay, blocks, 20, 200);
    let mut to_half = OnlineStats::new();
    let mut to_99 = OnlineStats::new();
    let mut coverage = OnlineStats::new();
    for report in &reports {
        if let Some(r) = report.delays_to_half {
            to_half.push(r as f64);
        }
        if let Some(r) = report.delays_to_99 {
            to_99.push(r as f64);
        }
        coverage.push(report.final_coverage);
    }
    vec![
        ("peers", health.peers as f64),
        ("mean_outbound", health.mean_outbound),
        ("mean_inbound", health.mean_inbound),
        ("max_inbound", health.max_inbound as f64),
        ("isolated_peers", health.isolated_peers as f64),
        ("largest_component", health.largest_component_fraction),
        ("stale_fraction", health.stale_address_fraction),
        ("expansion", expansion.value().unwrap_or(f64::NAN)),
        (
            "delays_to_half",
            if to_half.count() == 0 {
                f64::NAN
            } else {
                to_half.mean()
            },
        ),
        (
            "delays_to_99",
            if to_99.count() == 0 {
                f64::NAN
            } else {
                to_99.mean()
            },
        ),
        ("propagation_coverage", coverage.mean()),
    ]
}

#[cfg(test)]
mod tests {
    use churn_event::{run_async_flooding, run_async_raes, TraceEvent};

    use super::*;

    /// The post-hoc reference binner the series pipeline used before the
    /// streaming [`churn_event::TraceBins`] replaced it: fold a fully
    /// buffered trace into unit-time buckets after the run. Kept here to
    /// pin the streaming binner's bucket-for-bucket equivalence.
    fn bin_trace(
        trace: &[TraceEvent],
        alive_kind: u16,
        initial_alive: f64,
        kinds: &[u16],
    ) -> (Vec<f64>, Vec<Vec<u64>>) {
        let buckets = trace
            .iter()
            .map(|ev| f64::from_bits(ev.time_bits).max(0.0).floor() as usize)
            .max()
            .map_or(0, |last| last + 1);
        let mut alive_row = vec![0.0; buckets];
        let mut counts = vec![vec![0u64; buckets]; kinds.len()];
        let mut alive = initial_alive;
        let mut filled = 0usize;
        for ev in trace {
            let bucket = f64::from_bits(ev.time_bits).max(0.0).floor() as usize;
            while filled < bucket {
                alive_row[filled] = alive;
                filled += 1;
            }
            if ev.kind == alive_kind {
                alive = ev.subject as f64;
            }
            if let Some(slot) = kinds.iter().position(|&kind| kind == ev.kind) {
                counts[slot][bucket] += 1;
            }
        }
        while filled < buckets {
            alive_row[filled] = alive;
            filled += 1;
        }
        (alive_row, counts)
    }

    #[test]
    fn streaming_flooding_bins_match_the_reference_binner() {
        let kinds = [
            event_flooding::TRACE_INFORMED,
            event_flooding::TRACE_DUPLICATE,
            event_flooding::TRACE_LOST,
            event_flooding::TRACE_BLOCKED,
            event_flooding::TRACE_CRASH,
            event_flooding::TRACE_RESTART,
            event_flooding::TRACE_PULL,
        ];
        let run = |trace: TraceMode| {
            let mut model =
                RaesModel::new(RaesConfig::new(64, 3).seed(99)).expect("valid RAES config");
            model.warm_up();
            let initial_alive = model.alive_count() as f64;
            let cfg = AsyncFloodingConfig {
                latency: churn_event::LatencyModel::Exponential { mean: 0.5 },
                bandwidth: churn_event::BandwidthModel::delaying(4.0),
                horizon: 48.0,
                churn: true,
                trace,
            };
            (
                run_async_flooding(&mut model, AsyncSource::Newest, &cfg, 7),
                initial_alive,
            )
        };
        let (full, initial_alive) = run(TraceMode::Full);
        let (binned, _) = run(TraceMode::Bins);
        assert!(!full.trace.is_empty(), "full mode buffered the trace");
        assert!(binned.trace.is_empty(), "bins mode buffers nothing");
        let bins = binned.bins.expect("bins mode records bins");
        let (ref_alive, ref_counts) = bin_trace(
            &full.trace,
            event_flooding::TRACE_CHURN,
            initial_alive,
            &kinds,
        );
        assert_eq!(bins.len(), ref_alive.len());
        for bucket in 0..bins.len() {
            assert_eq!(
                bins.alive(bucket).to_bits(),
                ref_alive[bucket].to_bits(),
                "alive diverged at bucket {bucket}"
            );
            for (slot, &kind) in kinds.iter().enumerate() {
                assert_eq!(
                    bins.count(kind, bucket),
                    ref_counts[slot][bucket],
                    "kind {kind} diverged at bucket {bucket}"
                );
            }
        }
    }

    #[test]
    fn streaming_raes_bins_match_the_reference_binner() {
        let kinds = [
            event_raes::TRACE_REQUEST,
            event_raes::TRACE_REPLY,
            event_raes::TRACE_REPAIRED,
            event_raes::TRACE_SHED,
            event_raes::TRACE_CRASH,
            event_raes::TRACE_RESTART,
        ];
        let run = |trace: TraceMode| {
            let cfg = AsyncRaesConfig {
                horizon: 40.0,
                flood_at: Some(6.0),
                trace,
                ..AsyncRaesConfig::new(
                    48,
                    3,
                    churn_event::LatencyModel::Uniform {
                        low: 0.1,
                        high: 1.5,
                    },
                    churn_event::BandwidthModel::delaying(8.0),
                )
            };
            run_async_raes(&cfg, 13)
        };
        let full = run(TraceMode::Full);
        let binned = run(TraceMode::Bins);
        assert!(!full.trace.is_empty(), "full mode buffered the trace");
        let bins = binned.bins.expect("bins mode records bins");
        let (ref_alive, ref_counts) = bin_trace(&full.trace, event_raes::TRACE_CHURN, 48.0, &kinds);
        assert_eq!(bins.len(), ref_alive.len());
        for bucket in 0..bins.len() {
            assert_eq!(bins.alive(bucket).to_bits(), ref_alive[bucket].to_bits());
            for (slot, &kind) in kinds.iter().enumerate() {
                assert_eq!(bins.count(kind, bucket), ref_counts[slot][bucket]);
            }
        }
    }
}
