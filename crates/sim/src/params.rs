//! Parameter points and sweep definitions.

use serde::{Deserialize, Serialize};

use churn_core::{AnyModel, ModelKind, Result, VictimPolicy};
use churn_stochastic::rng::derive_seed;

/// One point of a parameter grid: a model kind, an expected network size and a
/// degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamPoint {
    /// Which of the paper's four models.
    pub model: ModelKind,
    /// Expected network size `n`.
    pub n: usize,
    /// Out-degree parameter `d`.
    pub d: usize,
}

impl ParamPoint {
    /// Builds the model this point describes, with the given seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn build(&self, seed: u64) -> Result<AnyModel> {
        self.model.build(self.n, self.d, seed)
    }

    /// A short human-readable label, e.g. `SDGR n=1024 d=8`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} n={} d={}", self.model, self.n, self.d)
    }
}

impl std::fmt::Display for ParamPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A full experiment grid: the cartesian product of models × sizes × degrees,
/// each run for a number of independent trials with deterministically derived
/// seeds.
///
/// ```
/// use churn_core::ModelKind;
/// use churn_sim::Sweep;
///
/// let sweep = Sweep::new("demo")
///     .models([ModelKind::Sdg, ModelKind::Sdgr])
///     .sizes([256, 512])
///     .degrees([4, 8])
///     .trials(5);
/// assert_eq!(sweep.points().len(), 8);
/// assert_eq!(sweep.total_trials(), 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sweep {
    name: String,
    models: Vec<ModelKind>,
    sizes: Vec<usize>,
    degrees: Vec<usize>,
    trials: usize,
    base_seed: u64,
    victim: VictimPolicy,
}

impl Sweep {
    /// Creates an empty sweep with the given name, one trial and base seed 0.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            models: Vec::new(),
            sizes: Vec::new(),
            degrees: Vec::new(),
            trials: 1,
            base_seed: 0,
            victim: VictimPolicy::Uniform,
        }
    }

    /// Sets the death-victim policy every cell of the sweep runs with
    /// (default: the paper's uniform churn). Build models through
    /// [`crate::TrialContext::build_model`] for the policy to take effect;
    /// non-uniform policies also mix a tag into the trial seeds so
    /// adversarial runs never reuse the uniform trajectories.
    #[must_use]
    pub fn victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim = policy;
        self
    }

    /// The death-victim policy of this sweep.
    #[must_use]
    pub fn victim(&self) -> VictimPolicy {
        self.victim
    }

    /// Sets the model kinds to iterate over.
    #[must_use]
    pub fn models(mut self, models: impl IntoIterator<Item = ModelKind>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the network sizes to iterate over.
    #[must_use]
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the degrees to iterate over.
    #[must_use]
    pub fn degrees(mut self, degrees: impl IntoIterator<Item = usize>) -> Self {
        self.degrees = degrees.into_iter().collect();
        self
    }

    /// Sets the number of independent trials per grid point (at least 1).
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the base seed all trial seeds are derived from.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The sweep's name (used in reports and stored records).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of trials per point.
    #[must_use]
    pub fn trials_per_point(&self) -> usize {
        self.trials
    }

    /// The base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.base_seed
    }

    /// The grid points, in deterministic order (model-major, then size, then
    /// degree).
    #[must_use]
    pub fn points(&self) -> Vec<ParamPoint> {
        let mut points = Vec::new();
        for &model in &self.models {
            for &n in &self.sizes {
                for &d in &self.degrees {
                    points.push(ParamPoint { model, n, d });
                }
            }
        }
        points
    }

    /// Total number of trials across the whole grid.
    #[must_use]
    pub fn total_trials(&self) -> usize {
        self.points().len() * self.trials
    }

    /// The deterministic seed of a specific `(point, trial)` pair.
    ///
    /// Seeds depend on the point's *values* (not its position), so adding a new
    /// size to the sweep does not change the seeds of existing points. The
    /// uniform victim policy contributes no tag, so every pre-existing
    /// recorded seed is unchanged; adversarial sweeps mix one in.
    #[must_use]
    pub fn trial_seed(&self, point: &ParamPoint, trial: usize) -> u64 {
        let mut point_tag = derive_seed(
            derive_seed(point.n as u64, point.d as u64),
            match point.model {
                ModelKind::Sdg => 1,
                ModelKind::Sdgr => 2,
                ModelKind::Pdg => 3,
                ModelKind::Pdgr => 4,
                ModelKind::Raes => 5,
            },
        );
        if self.victim.is_adversarial() {
            point_tag = derive_seed(
                point_tag,
                match self.victim {
                    VictimPolicy::Uniform => unreachable!("guarded by is_adversarial"),
                    VictimPolicy::OldestFirst => 0xAD_01,
                    VictimPolicy::HighestDegree => 0xAD_02,
                },
            );
        }
        derive_seed(self.base_seed ^ point_tag, trial as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sweep() -> Sweep {
        Sweep::new("test")
            .models([ModelKind::Sdg, ModelKind::Pdgr])
            .sizes([64, 128])
            .degrees([2, 4, 8])
            .trials(3)
            .base_seed(11)
    }

    #[test]
    fn points_are_the_cartesian_product_in_order() {
        let s = sweep();
        let points = s.points();
        assert_eq!(points.len(), 2 * 2 * 3);
        assert_eq!(
            points[0],
            ParamPoint {
                model: ModelKind::Sdg,
                n: 64,
                d: 2
            }
        );
        assert_eq!(
            points.last().unwrap(),
            &ParamPoint {
                model: ModelKind::Pdgr,
                n: 128,
                d: 8
            }
        );
        assert_eq!(s.total_trials(), 36);
    }

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let s = sweep();
        let mut seeds = HashSet::new();
        for point in s.points() {
            for trial in 0..s.trials_per_point() {
                seeds.insert(s.trial_seed(&point, trial));
            }
        }
        assert_eq!(seeds.len(), 36, "all (point, trial) seeds are distinct");
        // Stability: the same point yields the same seed regardless of which
        // other points are in the sweep.
        let bigger = sweep().sizes([64, 128, 256]);
        let p = ParamPoint {
            model: ModelKind::Sdg,
            n: 64,
            d: 2,
        };
        assert_eq!(s.trial_seed(&p, 1), bigger.trial_seed(&p, 1));
    }

    #[test]
    fn different_base_seeds_give_different_trial_seeds() {
        let a = sweep();
        let b = sweep().base_seed(12);
        let p = a.points()[0];
        assert_ne!(a.trial_seed(&p, 0), b.trial_seed(&p, 0));
    }

    #[test]
    fn point_builds_matching_model() {
        let p = ParamPoint {
            model: ModelKind::Sdgr,
            n: 32,
            d: 3,
        };
        let model = p.build(5).unwrap();
        assert_eq!(model.kind(), ModelKind::Sdgr);
        assert_eq!(p.label(), "SDGR n=32 d=3");
        assert_eq!(p.to_string(), p.label());
    }

    #[test]
    fn adversarial_victim_policies_shift_trial_seeds() {
        let uniform = sweep();
        let oldest = sweep().victim_policy(VictimPolicy::OldestFirst);
        let targeted = sweep().victim_policy(VictimPolicy::HighestDegree);
        assert_eq!(uniform.victim(), VictimPolicy::Uniform);
        let p = uniform.points()[0];
        // Uniform keeps the pre-existing seed derivation (recorded seeds
        // survive); each adversarial policy gets its own stream.
        let seeds = [
            uniform.trial_seed(&p, 0),
            oldest.trial_seed(&p, 0),
            targeted.trial_seed(&p, 0),
        ];
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[0], seeds[2]);
        assert_ne!(seeds[1], seeds[2]);
    }

    #[test]
    fn trials_is_at_least_one() {
        let s = Sweep::new("x").trials(0);
        assert_eq!(s.trials_per_point(), 1);
        assert_eq!(s.name(), "x");
        assert_eq!(s.seed(), 0);
    }

    #[test]
    fn empty_sweep_has_no_points() {
        assert!(Sweep::new("empty").points().is_empty());
        assert_eq!(Sweep::new("empty").total_trials(), 0);
    }
}
