//! Result tables: plain-text, Markdown and CSV rendering.

use serde::{Deserialize, Serialize};

/// A simple result table with a title, column headers and string cells.
///
/// The experiment binaries build their output exclusively through this type so
/// that every table of `EXPERIMENTS.md` has the same shape: a title naming the
/// paper artifact being reproduced, one row per parameter point, and columns
/// holding predicted and measured quantities.
///
/// # Example
///
/// ```
/// use churn_sim::Table;
///
/// let mut table = Table::new("E0 — demo", ["model", "n", "value"]);
/// table.push_row(["SDGR", "1024", "12.3 ± 0.4"]);
/// let markdown = table.to_markdown();
/// assert!(markdown.contains("| SDGR | 1024 | 12.3 ± 0.4 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new<S: Into<String>>(
        title: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        Table {
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows added so far.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the number of columns.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured Markdown (title as a heading).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (no title, headers first). Cells containing
    /// commas or quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned plain text, suitable for terminal output.
    #[must_use]
    pub fn to_plain_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&render_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the plain-text rendering to standard output.
    pub fn print(&self) {
        println!("{}", self.to_plain_text());
    }
}

/// Formats a float with the given number of decimals (helper for table cells).
#[must_use]
pub fn format_float(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats an integer-valued float without decimals, or `-` for NaN.
#[must_use]
pub fn format_int(value: f64) -> String {
    if value.is_nan() {
        "-".to_string()
    } else {
        format!("{}", value.round() as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Sample", ["a", "b"]);
        t.push_row(["1", "x"]);
        t.push_row(["2", "y,z"]);
        t
    }

    #[test]
    fn markdown_contains_headers_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### Sample"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | x |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,x");
        assert_eq!(lines[2], "2,\"y,z\"");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new("q", ["c"]);
        t.push_row(["say \"hi\""]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn plain_text_aligns_columns() {
        let text = sample().to_plain_text();
        assert!(text.starts_with("Sample\n"));
        assert!(text.contains("a  b"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, two rows");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("bad", ["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn accessors_expose_contents() {
        let t = sample();
        assert_eq!(t.title(), "Sample");
        assert_eq!(t.columns(), &["a".to_string(), "b".to_string()]);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn float_and_int_formatting() {
        assert_eq!(format_float(1.23456, 2), "1.23");
        assert_eq!(format_float(2.0, 0), "2");
        assert_eq!(format_int(41.7), "42");
        assert_eq!(format_int(f64::NAN), "-");
    }
}
