//! Aggregation of trial results into summary statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use churn_stochastic::OnlineStats;

use crate::{ParamPoint, TrialResult};

/// Summary statistics of a set of trial values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of values aggregated.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Half-width of the 95% normal-approximation confidence interval.
    pub ci95_half_width: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Aggregate {
    /// Aggregates a slice of values. An empty slice yields a zeroed aggregate
    /// with `count == 0`.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Aggregate {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                std_error: 0.0,
                ci95_half_width: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let stats: OnlineStats = values.iter().copied().collect();
        let std_error = stats.std_error();
        Aggregate {
            count: stats.count(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            std_error,
            ci95_half_width: 1.96 * std_error,
            min: stats.min(),
            max: stats.max(),
        }
    }

    /// Renders the mean with its 95% confidence interval, e.g. `12.3 ± 0.4`.
    #[must_use]
    pub fn display_with_ci(&self, decimals: usize) -> String {
        format!(
            "{:.decimals$} ± {:.decimals$}",
            self.mean,
            self.ci95_half_width,
            decimals = decimals
        )
    }
}

/// Groups trial results by their grid point and aggregates a per-trial metric.
///
/// The `metric` closure extracts the value to aggregate from each trial result.
/// Returns a map ordered by `(model, n, d)` in the sweep's natural ordering.
pub fn aggregate_by_point<T, F>(
    results: &[TrialResult<T>],
    metric: F,
) -> BTreeMap<PointKey, Aggregate>
where
    F: Fn(&TrialResult<T>) -> f64,
{
    let mut grouped: BTreeMap<PointKey, Vec<f64>> = BTreeMap::new();
    for result in results {
        grouped
            .entry(PointKey::from(result.point))
            .or_default()
            .push(metric(result));
    }
    grouped
        .into_iter()
        .map(|(key, values)| (key, Aggregate::from_values(&values)))
        .collect()
}

/// Orderable key for a [`ParamPoint`] (model label, then `n`, then `d`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PointKey {
    /// Model acronym.
    pub model: String,
    /// Expected network size.
    pub n: usize,
    /// Degree parameter.
    pub d: usize,
}

impl From<ParamPoint> for PointKey {
    fn from(point: ParamPoint) -> Self {
        PointKey {
            model: point.model.label().to_string(),
            n: point.n,
            d: point.d,
        }
    }
}

impl std::fmt::Display for PointKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} n={} d={}", self.model, self.n, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_core::ModelKind;

    #[test]
    fn aggregate_of_known_values() {
        let agg = Aggregate::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(agg.count, 8);
        assert!((agg.mean - 5.0).abs() < 1e-12);
        assert!((agg.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 9.0);
        assert!(agg.ci95_half_width > 0.0);
        let shown = agg.display_with_ci(2);
        assert!(shown.starts_with("5.00 ±"));
    }

    #[test]
    fn aggregate_of_empty_slice_is_zeroed() {
        let agg = Aggregate::from_values(&[]);
        assert_eq!(agg.count, 0);
        assert_eq!(agg.mean, 0.0);
        assert_eq!(agg.display_with_ci(1), "0.0 ± 0.0");
    }

    #[test]
    fn grouping_by_point_aggregates_separately() {
        let p1 = ParamPoint {
            model: ModelKind::Sdg,
            n: 10,
            d: 2,
        };
        let p2 = ParamPoint {
            model: ModelKind::Sdg,
            n: 20,
            d: 2,
        };
        let results = vec![
            TrialResult {
                point: p1,
                trial: 0,
                seed: 0,
                value: 1.0,
            },
            TrialResult {
                point: p1,
                trial: 1,
                seed: 1,
                value: 3.0,
            },
            TrialResult {
                point: p2,
                trial: 0,
                seed: 2,
                value: 10.0,
            },
        ];
        let grouped = aggregate_by_point(&results, |r| r.value);
        assert_eq!(grouped.len(), 2);
        let k1 = PointKey::from(p1);
        let k2 = PointKey::from(p2);
        assert!((grouped[&k1].mean - 2.0).abs() < 1e-12);
        assert_eq!(grouped[&k1].count, 2);
        assert!((grouped[&k2].mean - 10.0).abs() < 1e-12);
        assert!(k1 < k2, "ordering is by n for the same model and d");
        assert_eq!(k1.to_string(), "SDG n=10 d=2");
    }
}
