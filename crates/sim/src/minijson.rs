//! A minimal, dependency-free JSON reader.
//!
//! Sufficient for the files this workspace writes (experiment records from
//! [`crate::save_records`], bench JSON-lines from the vendored criterion
//! harness) and for standards-compliant external producers of the same
//! shapes: full escape handling including UTF-16 surrogate pairs, and
//! numbers kept as raw text so 64-bit integers round-trip exactly.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number, kept as its raw source text so 64-bit integers round-trip
    /// exactly (an eager f64 conversion would corrupt seeds above 2^53).
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The array items, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key`, when this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// An owned copy of the string, when this value is a string.
    pub fn as_string(&self) -> Option<String> {
        match self {
            Value::String(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// A borrowed view of the string, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` (JSON `null` reads as NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(raw) => raw.parse().ok(),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The number as an exact `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Parsed from the raw text, not through f64, so the full
            // 64-bit range (e.g. derive_seed outputs) is preserved.
            Value::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `usize`, when it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }
}

/// Parses one complete JSON value (rejecting trailing data).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number")?;
        // Validate now, but keep the raw text for lossless integer reads.
        text.parse::<f64>()
            .map(|_| Value::Number(text.to_owned()))
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    /// Reads the four hex digits of a `\u` escape (cursor past `\u`).
    fn unicode_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&escape) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.unicode_escape()?;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: must pair with \uDC00-\uDFFF.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err("unpaired high surrogate".to_owned());
                                }
                                self.pos += 2;
                                let low = self.unicode_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(combined).ok_or("invalid surrogate pair")?);
                            } else {
                                out.push(char::from_u32(code).ok_or("unpaired low surrogate")?);
                            }
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other as char));
                        }
                    }
                }
                byte => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match byte {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += len;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!("expected ',' or ']', found {:?}", other as char));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!("expected ',' or '}}', found {:?}", other as char));
                }
            }
        }
    }
}
