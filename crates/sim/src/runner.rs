//! Parallel, seeded execution of sweeps.
//!
//! [`run_sweep`] fans the independent `(model, n, d, trial)` cells of a sweep
//! across all CPU cores through rayon's parallel iterators. Each cell draws
//! its randomness exclusively from a deterministically derived per-cell seed
//! ([`Sweep::trial_seed`]), so the result vector is identical to the
//! sequential run no matter how the cells are scheduled.
//!
//! # Thread budgeting
//!
//! Some trial bodies are themselves parallel (the sharded flooding engine of
//! `churn-core`). Running an 8-thread trial inside an 8-way sweep would
//! oversubscribe the machine 64-fold, so the runner splits the pool between
//! the two levels: every context carries [`TrialContext::threads`], the
//! number of threads the trial body may use. [`run_sweep`] gives each of its
//! concurrently scheduled cells an equal share (`cores / min(cells, cores)`,
//! at least 1 — so a single big cell gets the whole machine and a wide grid
//! gets one thread per cell); [`run_sweep_sequential`] runs its cells one at
//! a time and hands every cell the full pool.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use churn_core::{AnyModel, VictimPolicy};

use crate::{ParamPoint, Sweep};

/// Everything a trial function needs to know about the trial it is running.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialContext {
    /// The grid point.
    pub point: ParamPoint,
    /// Trial index within the point (`0..trials`).
    pub trial: usize,
    /// The deterministic seed for this `(point, trial)` pair.
    pub seed: u64,
    /// Thread budget for parallelism *inside* the trial body (e.g. the
    /// sharded flooding engine): the sweep level and the run level share one
    /// pool, so `sweep-level concurrency × threads ≈ cores`. Always ≥ 1.
    /// Must not influence the trial's *result* — only how fast it is
    /// computed (the engines guarantee thread-count-independent output).
    pub threads: usize,
    /// The sweep's death-victim policy ([`Sweep::victim_policy`]).
    pub victim: VictimPolicy,
}

impl TrialContext {
    /// Builds this cell's model with the trial seed and the sweep's victim
    /// policy applied.
    ///
    /// # Errors
    ///
    /// Propagates [`ParamPoint::build`]'s validation errors, plus
    /// `UnsupportedVictimPolicy` for streaming kinds under degree-targeted
    /// deaths.
    pub fn build_model(&self) -> churn_core::Result<AnyModel> {
        self.point
            .model
            .build_with_victim(self.point.n, self.point.d, self.seed, self.victim)
    }
}

/// The outcome of one trial: its context plus whatever the trial function
/// returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult<T> {
    /// The grid point the trial belongs to.
    pub point: ParamPoint,
    /// Trial index within the point.
    pub trial: usize,
    /// Seed the trial ran with.
    pub seed: u64,
    /// The measured value.
    pub value: T,
}

/// Runs every `(point, trial)` of the sweep through `trial_fn`, in parallel
/// across the machine's cores, and returns the results sorted by point order and
/// trial index (so the output is deterministic regardless of scheduling).
///
/// `trial_fn` receives a [`TrialContext`] and must be deterministic given the
/// context (all randomness should come from `ctx.seed`).
pub fn run_sweep<T, F>(sweep: &Sweep, trial_fn: F) -> Vec<TrialResult<T>>
where
    T: Send,
    F: Fn(&TrialContext) -> T + Sync,
{
    let contexts = sweep_contexts(sweep, sweep_cell_threads(sweep.total_trials()));
    contexts
        .par_iter()
        .map(|ctx| TrialResult {
            point: ctx.point,
            trial: ctx.trial,
            seed: ctx.seed,
            value: trial_fn(ctx),
        })
        .collect()
}

/// Per-cell thread budget of [`run_sweep`] (and of the scenario engine's
/// batches): the pool divided by the number of cells that will actually run
/// concurrently, never below 1. One big cell gets the whole machine; a grid
/// wider than the machine gets one thread per cell.
pub(crate) fn sweep_cell_threads(cells: usize) -> usize {
    let pool = rayon::current_num_threads().max(1);
    (pool / pool.min(cells.max(1))).max(1)
}

fn sweep_contexts(sweep: &Sweep, threads: usize) -> Vec<TrialContext> {
    let mut contexts: Vec<TrialContext> = Vec::with_capacity(sweep.total_trials());
    for point in sweep.points() {
        for trial in 0..sweep.trials_per_point() {
            contexts.push(TrialContext {
                point,
                trial,
                seed: sweep.trial_seed(&point, trial),
                threads,
                victim: sweep.victim(),
            });
        }
    }
    contexts
}

/// Sequential variant of [`run_sweep`], useful inside benchmarks (where the
/// harness already controls parallelism) and for debugging. Cells run one at
/// a time, so each context carries the full pool as its thread budget.
pub fn run_sweep_sequential<T, F>(sweep: &Sweep, mut trial_fn: F) -> Vec<TrialResult<T>>
where
    F: FnMut(&TrialContext) -> T,
{
    let threads = rayon::current_num_threads().max(1);
    let mut out = Vec::with_capacity(sweep.total_trials());
    for point in sweep.points() {
        for trial in 0..sweep.trials_per_point() {
            let ctx = TrialContext {
                point,
                trial,
                seed: sweep.trial_seed(&point, trial),
                threads,
                victim: sweep.victim(),
            };
            let value = trial_fn(&ctx);
            out.push(TrialResult {
                point: ctx.point,
                trial: ctx.trial,
                seed: ctx.seed,
                value,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_core::ModelKind;

    fn sweep() -> Sweep {
        Sweep::new("runner-test")
            .models([ModelKind::Sdg, ModelKind::Sdgr])
            .sizes([16, 32])
            .degrees([2])
            .trials(3)
            .base_seed(5)
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let s = sweep();
        let parallel = run_sweep(&s, |ctx| ctx.seed ^ ctx.point.n as u64);
        let sequential = run_sweep_sequential(&s, |ctx| ctx.seed ^ ctx.point.n as u64);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.len(), s.total_trials());
    }

    #[test]
    fn results_are_ordered_point_major_then_trial() {
        let s = sweep();
        let results = run_sweep(&s, |_| 0u8);
        let points = s.points();
        let mut expected_index = 0;
        for point in &points {
            for trial in 0..s.trials_per_point() {
                assert_eq!(results[expected_index].point, *point);
                assert_eq!(results[expected_index].trial, trial);
                expected_index += 1;
            }
        }
    }

    #[test]
    fn contexts_carry_the_sweeps_seeds() {
        let s = sweep();
        let results = run_sweep(&s, |ctx| ctx.seed);
        for r in &results {
            assert_eq!(r.value, s.trial_seed(&r.point, r.trial));
            assert_eq!(r.seed, r.value);
        }
    }

    #[test]
    fn trial_functions_can_build_models() {
        let s = Sweep::new("tiny")
            .models([ModelKind::Sdgr])
            .sizes([24])
            .degrees([3])
            .trials(2);
        let results = run_sweep(&s, |ctx| {
            use churn_core::DynamicNetwork;
            let mut model = ctx.point.build(ctx.seed).expect("valid point");
            model.warm_up();
            model.alive_count()
        });
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.value, 24);
        }
    }

    #[test]
    fn contexts_carry_the_victim_policy_and_build_with_it() {
        use churn_core::DynamicNetwork;
        let s = Sweep::new("adversarial")
            .models([ModelKind::Pdg])
            .sizes([32])
            .degrees([2])
            .trials(1)
            .victim_policy(VictimPolicy::OldestFirst);
        let results = run_sweep(&s, |ctx| {
            assert_eq!(ctx.victim, VictimPolicy::OldestFirst);
            let mut model = ctx.build_model().expect("poisson accepts any policy");
            model.warm_up();
            model.alive_count() > 0
        });
        assert!(results[0].value);
        // Streaming kinds reject degree-targeted deaths at build time.
        let s = Sweep::new("invalid")
            .models([ModelKind::Sdg])
            .sizes([32])
            .degrees([2])
            .victim_policy(VictimPolicy::HighestDegree);
        let results = run_sweep(&s, |ctx| ctx.build_model().is_err());
        assert!(results[0].value);
    }

    #[test]
    fn empty_sweep_produces_no_results() {
        let s = Sweep::new("empty");
        let results = run_sweep(&s, |_| 1.0f64);
        assert!(results.is_empty());
    }

    #[test]
    fn thread_budget_splits_the_pool_between_levels() {
        let pool = rayon::current_num_threads().max(1);
        // One cell: the trial body gets the whole machine.
        assert_eq!(sweep_cell_threads(1), pool);
        // More cells than cores: one thread each, never zero.
        assert_eq!(sweep_cell_threads(10 * pool), 1);
        // In between: shares multiply back to at most the pool.
        for cells in 1..=2 * pool {
            let per_cell = sweep_cell_threads(cells);
            assert!(per_cell >= 1);
            assert!(per_cell * pool.min(cells) <= pool);
        }
        // The budget reaches the trial bodies through the context.
        let single = Sweep::new("one-cell")
            .models([ModelKind::Sdgr])
            .sizes([16])
            .degrees([2])
            .trials(1);
        let results = run_sweep(&single, |ctx| ctx.threads);
        assert_eq!(results[0].value, pool);
        let sequential = run_sweep_sequential(&single, |ctx| ctx.threads);
        assert_eq!(
            sequential[0].value, pool,
            "sequential cells run alone and get the full pool"
        );
        let wide = sweep();
        for r in run_sweep(&wide, |ctx| ctx.threads) {
            assert_eq!(r.value, sweep_cell_threads(wide.total_trials()));
        }
    }
}
