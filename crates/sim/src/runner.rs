//! Parallel, seeded execution of sweeps.
//!
//! [`run_sweep`] fans the independent `(model, n, d, trial)` cells of a sweep
//! across all CPU cores through rayon's parallel iterators. Each cell draws
//! its randomness exclusively from a deterministically derived per-cell seed
//! ([`Sweep::trial_seed`]), so the result vector is identical to the
//! sequential run no matter how the cells are scheduled.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{ParamPoint, Sweep};

/// Everything a trial function needs to know about the trial it is running.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialContext {
    /// The grid point.
    pub point: ParamPoint,
    /// Trial index within the point (`0..trials`).
    pub trial: usize,
    /// The deterministic seed for this `(point, trial)` pair.
    pub seed: u64,
}

/// The outcome of one trial: its context plus whatever the trial function
/// returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult<T> {
    /// The grid point the trial belongs to.
    pub point: ParamPoint,
    /// Trial index within the point.
    pub trial: usize,
    /// Seed the trial ran with.
    pub seed: u64,
    /// The measured value.
    pub value: T,
}

/// Runs every `(point, trial)` of the sweep through `trial_fn`, in parallel
/// across the machine's cores, and returns the results sorted by point order and
/// trial index (so the output is deterministic regardless of scheduling).
///
/// `trial_fn` receives a [`TrialContext`] and must be deterministic given the
/// context (all randomness should come from `ctx.seed`).
pub fn run_sweep<T, F>(sweep: &Sweep, trial_fn: F) -> Vec<TrialResult<T>>
where
    T: Send,
    F: Fn(&TrialContext) -> T + Sync,
{
    let contexts = sweep_contexts(sweep);
    contexts
        .par_iter()
        .map(|ctx| TrialResult {
            point: ctx.point,
            trial: ctx.trial,
            seed: ctx.seed,
            value: trial_fn(ctx),
        })
        .collect()
}

fn sweep_contexts(sweep: &Sweep) -> Vec<TrialContext> {
    let mut contexts: Vec<TrialContext> = Vec::with_capacity(sweep.total_trials());
    for point in sweep.points() {
        for trial in 0..sweep.trials_per_point() {
            contexts.push(TrialContext {
                point,
                trial,
                seed: sweep.trial_seed(&point, trial),
            });
        }
    }
    contexts
}

/// Sequential variant of [`run_sweep`], useful inside benchmarks (where the
/// harness already controls parallelism) and for debugging.
pub fn run_sweep_sequential<T, F>(sweep: &Sweep, mut trial_fn: F) -> Vec<TrialResult<T>>
where
    F: FnMut(&TrialContext) -> T,
{
    let mut out = Vec::with_capacity(sweep.total_trials());
    for point in sweep.points() {
        for trial in 0..sweep.trials_per_point() {
            let ctx = TrialContext {
                point,
                trial,
                seed: sweep.trial_seed(&point, trial),
            };
            let value = trial_fn(&ctx);
            out.push(TrialResult {
                point: ctx.point,
                trial: ctx.trial,
                seed: ctx.seed,
                value,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_core::ModelKind;

    fn sweep() -> Sweep {
        Sweep::new("runner-test")
            .models([ModelKind::Sdg, ModelKind::Sdgr])
            .sizes([16, 32])
            .degrees([2])
            .trials(3)
            .base_seed(5)
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let s = sweep();
        let parallel = run_sweep(&s, |ctx| ctx.seed ^ ctx.point.n as u64);
        let sequential = run_sweep_sequential(&s, |ctx| ctx.seed ^ ctx.point.n as u64);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.len(), s.total_trials());
    }

    #[test]
    fn results_are_ordered_point_major_then_trial() {
        let s = sweep();
        let results = run_sweep(&s, |_| 0u8);
        let points = s.points();
        let mut expected_index = 0;
        for point in &points {
            for trial in 0..s.trials_per_point() {
                assert_eq!(results[expected_index].point, *point);
                assert_eq!(results[expected_index].trial, trial);
                expected_index += 1;
            }
        }
    }

    #[test]
    fn contexts_carry_the_sweeps_seeds() {
        let s = sweep();
        let results = run_sweep(&s, |ctx| ctx.seed);
        for r in &results {
            assert_eq!(r.value, s.trial_seed(&r.point, r.trial));
            assert_eq!(r.seed, r.value);
        }
    }

    #[test]
    fn trial_functions_can_build_models() {
        let s = Sweep::new("tiny")
            .models([ModelKind::Sdgr])
            .sizes([24])
            .degrees([3])
            .trials(2);
        let results = run_sweep(&s, |ctx| {
            use churn_core::DynamicNetwork;
            let mut model = ctx.point.build(ctx.seed).expect("valid point");
            model.warm_up();
            model.alive_count()
        });
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.value, 24);
        }
    }

    #[test]
    fn empty_sweep_produces_no_results() {
        let s = Sweep::new("empty");
        let results = run_sweep(&s, |_| 1.0f64);
        assert!(results.is_empty());
    }
}
