//! JSON persistence of experiment results.
//!
//! The experiment binaries can persist their raw per-trial measurements so that
//! analysis (or re-rendering of `EXPERIMENTS.md`) does not require re-running
//! the simulations.
//!
//! Serialization is hand-rolled (the build environment vendors a no-op serde
//! stub, see `vendor/serde`), but the on-disk format matches what
//! `serde_json::to_string_pretty` would produce for this type, so files stay
//! forward-compatible with a real serde once it is available.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::ParamPoint;

/// One stored measurement: a named scalar for one `(point, trial)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// Name of the experiment that produced the record (e.g. `exp_isolated_nodes`).
    pub experiment: String,
    /// The grid point.
    pub point: ParamPoint,
    /// Trial index.
    pub trial: usize,
    /// Seed the trial ran with.
    pub seed: u64,
    /// Name of the measured quantity (e.g. `isolated_fraction`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

pub(crate) fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn format_value(value: f64) -> String {
    if value.is_finite() {
        let formatted = format!("{value}");
        // JSON has no distinct integer type, but serde_json prints whole f64s
        // with a trailing `.0`; match that so round-trips are byte-stable.
        if formatted.contains(['.', 'e', 'E']) {
            formatted
        } else {
            format!("{formatted}.0")
        }
    } else {
        // JSON cannot represent non-finite numbers; serde_json writes null.
        "null".to_owned()
    }
}

fn record_to_json(record: &StoredRecord, out: &mut String) {
    out.push_str("  {\n    \"experiment\": ");
    escape_json(&record.experiment, out);
    out.push_str(",\n    \"point\": {\n      \"model\": ");
    escape_json(record.point.model.label(), out);
    out.push_str(&format!(
        ",\n      \"n\": {},\n      \"d\": {}\n    }},\n",
        record.point.n, record.point.d
    ));
    out.push_str(&format!(
        "    \"trial\": {},\n    \"seed\": {},\n    \"metric\": ",
        record.trial, record.seed
    ));
    escape_json(&record.metric, out);
    out.push_str(&format!(
        ",\n    \"value\": {}\n  }}",
        format_value(record.value)
    ));
}

/// Saves records as pretty-printed JSON, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or file writing.
pub fn save_records(path: &Path, records: &[StoredRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut json = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        record_to_json(record, &mut json);
        if i + 1 < records.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push(']');
    if records.is_empty() {
        json = "[]".to_owned();
    }
    fs::write(path, json)
}

/// Loads records saved by [`save_records`].
///
/// # Errors
///
/// Returns any I/O error from reading the file, and an `InvalidData` error if
/// the file does not contain a valid record list.
pub fn load_records(path: &Path) -> io::Result<Vec<StoredRecord>> {
    let data = fs::read_to_string(path)?;
    parse_records(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn parse_records(data: &str) -> Result<Vec<StoredRecord>, String> {
    let value = json::parse(data)?;
    let items = value
        .as_array()
        .ok_or("top-level JSON value must be an array")?;
    items.iter().map(record_from_json).collect()
}

fn record_from_json(value: &json::Value) -> Result<StoredRecord, String> {
    fn field<'a>(v: &'a json::Value, key: &str) -> Result<&'a json::Value, String> {
        v.get(key).ok_or_else(|| format!("missing field {key:?}"))
    }
    let point = field(value, "point")?;
    let model = field(point, "model")?
        .as_str()
        .ok_or("point.model must be a string")?
        .parse::<churn_core::ModelKind>()
        .map_err(|e| format!("bad model kind: {e}"))?;
    Ok(StoredRecord {
        experiment: field(value, "experiment")?
            .as_str()
            .ok_or("experiment must be a string")?
            .to_owned(),
        point: ParamPoint {
            model,
            n: field(point, "n")?
                .as_usize()
                .ok_or("point.n must be an integer")?,
            d: field(point, "d")?
                .as_usize()
                .ok_or("point.d must be an integer")?,
        },
        trial: field(value, "trial")?
            .as_usize()
            .ok_or("trial must be an integer")?,
        seed: field(value, "seed")?
            .as_u64()
            .ok_or("seed must be an integer")?,
        metric: field(value, "metric")?
            .as_str()
            .ok_or("metric must be a string")?
            .to_owned(),
        value: field(value, "value")?
            .as_f64()
            .ok_or("value must be a number")?,
    })
}

use crate::minijson as json;

#[cfg(test)]
mod tests {
    use super::*;
    use churn_core::ModelKind;

    fn sample_records() -> Vec<StoredRecord> {
        vec![
            StoredRecord {
                experiment: "exp_demo".to_string(),
                point: ParamPoint {
                    model: ModelKind::Sdg,
                    n: 128,
                    d: 4,
                },
                trial: 0,
                seed: 42,
                metric: "isolated_fraction".to_string(),
                value: 0.017,
            },
            StoredRecord {
                experiment: "exp_demo".to_string(),
                point: ParamPoint {
                    model: ModelKind::Pdgr,
                    n: 256,
                    d: 8,
                },
                trial: 1,
                seed: 43,
                metric: "flooding_rounds".to_string(),
                value: 11.0,
            },
        ]
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("churn-sim-test-{}", std::process::id()));
        let path = dir.join("nested").join("records.json");
        let records = sample_records();
        save_records(&path, &records).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded, records);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_file_errors() {
        let path = Path::new("/nonexistent/churn-sim/records.json");
        assert!(load_records(path).is_err());
    }

    #[test]
    fn loading_invalid_json_errors() {
        let dir = std::env::temp_dir().join(format!("churn-sim-badjson-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "this is not json").unwrap();
        let err = load_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_record_list_round_trips() {
        let dir = std::env::temp_dir().join(format!("churn-sim-empty-{}", std::process::id()));
        let path = dir.join("records.json");
        save_records(&path, &[]).unwrap();
        assert_eq!(load_records(&path).unwrap(), Vec::new());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_range_u64_seeds_round_trip_exactly() {
        // derive_seed outputs are uniform over all 64 bits; an f64 detour
        // would corrupt anything above 2^53.
        let dir = std::env::temp_dir().join(format!("churn-sim-seed-{}", std::process::id()));
        let path = dir.join("records.json");
        let mut records = sample_records();
        records[0].seed = u64::MAX;
        records[1].seed = 12_297_829_382_473_034_410;
        save_records(&path, &records).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded[0].seed, u64::MAX);
        assert_eq!(loaded[1].seed, 12_297_829_382_473_034_410);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Producers that escape non-ASCII (e.g. Python's json.dumps) write
        // astral-plane characters as UTF-16 surrogate pairs.
        let dir = std::env::temp_dir().join(format!("churn-sim-surrogate-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json");
        let json = r#"[{"experiment": "\ud83d\ude00 demo", "point": {"model": "SDG", "n": 8, "d": 2},
                        "trial": 0, "seed": 1, "metric": "m", "value": 1.0}]"#;
        fs::write(&path, json).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded[0].experiment, "\u{1F600} demo");
        // An unpaired surrogate is an error, not silent replacement.
        fs::write(&path, r#"[{"experiment": "\ud83d oops"}]"#).unwrap();
        assert!(load_records(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let dir = std::env::temp_dir().join(format!("churn-sim-escape-{}", std::process::id()));
        let path = dir.join("records.json");
        let mut records = sample_records();
        records[0].experiment = "quote \" backslash \\ newline \n tab \t".to_string();
        records[0].metric = "unicode Ω λ/µ".to_string();
        save_records(&path, &records).unwrap();
        assert_eq!(load_records(&path).unwrap(), records);
        fs::remove_dir_all(&dir).ok();
    }
}
