//! JSON persistence of experiment results.
//!
//! The experiment binaries can persist their raw per-trial measurements so that
//! analysis (or re-rendering of `EXPERIMENTS.md`) does not require re-running
//! the simulations.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::ParamPoint;

/// One stored measurement: a named scalar for one `(point, trial)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// Name of the experiment that produced the record (e.g. `exp_isolated_nodes`).
    pub experiment: String,
    /// The grid point.
    pub point: ParamPoint,
    /// Trial index.
    pub trial: usize,
    /// Seed the trial ran with.
    pub seed: u64,
    /// Name of the measured quantity (e.g. `isolated_fraction`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

/// Saves records as pretty-printed JSON, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or file writing, and an
/// `InvalidData` error if serialization fails (which cannot happen for this
/// type in practice).
pub fn save_records(path: &Path, records: &[StoredRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string_pretty(records)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Loads records saved by [`save_records`].
///
/// # Errors
///
/// Returns any I/O error from reading the file, and an `InvalidData` error if
/// the file does not contain a valid record list.
pub fn load_records(path: &Path) -> io::Result<Vec<StoredRecord>> {
    let data = fs::read_to_string(path)?;
    serde_json::from_str(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_core::ModelKind;

    fn sample_records() -> Vec<StoredRecord> {
        vec![
            StoredRecord {
                experiment: "exp_demo".to_string(),
                point: ParamPoint {
                    model: ModelKind::Sdg,
                    n: 128,
                    d: 4,
                },
                trial: 0,
                seed: 42,
                metric: "isolated_fraction".to_string(),
                value: 0.017,
            },
            StoredRecord {
                experiment: "exp_demo".to_string(),
                point: ParamPoint {
                    model: ModelKind::Pdgr,
                    n: 256,
                    d: 8,
                },
                trial: 1,
                seed: 43,
                metric: "flooding_rounds".to_string(),
                value: 11.0,
            },
        ]
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("churn-sim-test-{}", std::process::id()));
        let path = dir.join("nested").join("records.json");
        let records = sample_records();
        save_records(&path, &records).unwrap();
        let loaded = load_records(&path).unwrap();
        assert_eq!(loaded, records);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_file_errors() {
        let path = Path::new("/nonexistent/churn-sim/records.json");
        assert!(load_records(path).is_err());
    }

    #[test]
    fn loading_invalid_json_errors() {
        let dir = std::env::temp_dir().join(format!("churn-sim-badjson-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "this is not json").unwrap();
        let err = load_records(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).ok();
    }
}
