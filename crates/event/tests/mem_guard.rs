//! Memory-regression guard for the streaming trace path.
//!
//! [`TraceMode::Bins`] exists so the series pipeline never buffers a full
//! event trace: memory must be O(horizon), not O(events). This test pins
//! that property with a counting global allocator. The same deterministic
//! run is executed twice — once buffering every `TraceEvent` under
//! [`TraceMode::Full`], once streaming under [`TraceMode::Bins`] — and the
//! Full-mode live-byte peak must exceed the Bins-mode peak by at least half
//! the trace's own bytes. A regression that quietly reintroduces full-trace
//! buffering (e.g. binning *after* the run again) erases that gap and trips
//! the assertion, independently of how much the engine state itself weighs.
//!
//! The file holds exactly one `#[test]` so no concurrent test pollutes the
//! allocation counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use churn_event::{
    run_async_raes, AsyncRaesConfig, AsyncRaesRecord, BandwidthModel, LatencyModel, TraceMode,
};

/// Live (allocated minus freed) bytes and the high-water mark.
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Counts live bytes through the system allocator. `realloc` is left to the
/// default alloc–copy–dealloc implementation, so it routes through the
/// counters too.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs one churn-heavy async RAES measurement (repair traffic keeps
/// generating events for the whole horizon) and returns the record plus the
/// allocation high-water mark *above* the pre-run live level.
fn traced_run(trace: TraceMode) -> (AsyncRaesRecord, usize) {
    let cfg = AsyncRaesConfig {
        horizon: 64.0,
        flood_at: Some(8.0),
        trace,
        ..AsyncRaesConfig::new(
            2048,
            3,
            LatencyModel::Exponential { mean: 0.5 },
            BandwidthModel::delaying(4.0),
        )
    };
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let record = run_async_raes(&cfg, 7);
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(before);
    (record, peak)
}

#[test]
fn bins_mode_never_buffers_the_full_trace() {
    let (full_record, full_peak) = traced_run(TraceMode::Full);
    let events = full_record.trace.len();
    assert!(
        events > 10_000,
        "the guard needs a substantial trace, got {events} events"
    );
    let trace_bytes = events * std::mem::size_of_val(&full_record.trace[0]);
    drop(full_record);

    let (bins_record, bins_peak) = traced_run(TraceMode::Bins);
    let bins = bins_record.bins.as_ref().expect("bins-mode records bins");
    assert!(bins_record.trace.is_empty(), "bins mode buffers no trace");
    assert!(!bins.is_empty(), "the streaming binner saw the run");
    // Both runs are the same deterministic event stream, so the peaks can
    // only differ by the capture: Full holds the whole trace (≥ its len in
    // bytes once fully grown), Bins holds O(horizon) counters. Buffering
    // the trace anywhere in Bins mode would close this gap.
    assert!(
        bins_peak + trace_bytes / 2 < full_peak,
        "streaming bins must undercut full-trace buffering by most of the \
         trace: bins peak {bins_peak} B, full peak {full_peak} B, trace \
         {trace_bytes} B ({events} events)"
    );
}
