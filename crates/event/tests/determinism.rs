//! The event core's two contracts, pinned end to end:
//!
//! 1. **Determinism** — same seed ⇒ identical event trace, at any queue
//!    capacity, for both asynchronous processes; the FIFO tie-break over
//!    simultaneous events is a total order (property-tested).
//! 2. **Sync equivalence** — in the zero-latency / infinite-bandwidth limit
//!    on a static graph, asynchronous flooding collapses to the synchronous
//!    engine (breadth-first search): same informed set bit for bit, same
//!    round structure.

use churn_core::DynamicNetwork;
use churn_event::{
    run_async_flooding, run_async_flooding_static, run_async_flooding_static_faulty,
    run_async_raes, AsyncFloodingConfig, AsyncRaesConfig, AsyncSource, BandwidthModel, FaultPlan,
    LatencyModel, Scheduler, TraceMode,
};
use churn_graph::generators::d_out_random_graph;
use churn_graph::traversal::{bfs_distances, static_flooding_time};
use churn_graph::{NodeId, Snapshot};
use churn_protocol::{RaesConfig, RaesModel};
use churn_stochastic::rng::seeded_rng;
use proptest::prelude::*;

/// The queue shapes the determinism contract is pinned at: unbounded
/// instant, unbounded delaying, and drop-tail at tight and loose capacity.
fn bandwidth_grid() -> [BandwidthModel; 4] {
    [
        BandwidthModel::unlimited(),
        BandwidthModel::delaying(4.0),
        BandwidthModel::drop_tail(4.0, 1),
        BandwidthModel::drop_tail(4.0, 16),
    ]
}

fn traced_flooding(bandwidth: BandwidthModel, seed: u64) -> churn_event::AsyncFloodingRecord {
    let mut model = RaesModel::new(RaesConfig::new(64, 3).seed(99)).expect("valid RAES config");
    model.warm_up();
    let cfg = AsyncFloodingConfig {
        latency: LatencyModel::Exponential { mean: 0.5 },
        bandwidth,
        horizon: 48.0,
        churn: true,
        trace: TraceMode::Full,
    };
    run_async_flooding(&mut model, AsyncSource::Newest, &cfg, seed)
}

#[test]
fn same_seed_gives_identical_flooding_traces_at_every_queue_capacity() {
    for bandwidth in bandwidth_grid() {
        let a = traced_flooding(bandwidth, 7);
        let b = traced_flooding(bandwidth, 7);
        assert!(
            !a.trace.is_empty(),
            "trace was recorded ({})",
            bandwidth.label()
        );
        assert_eq!(a.trace, b.trace, "trace diverged at {}", bandwidth.label());
        assert_eq!(a.stats.events_processed, b.stats.events_processed);
        assert_eq!(a.stats.messages_sent, b.stats.messages_sent);
        assert_eq!(a.stats.messages_dropped, b.stats.messages_dropped);
        assert_eq!(a.informed_ids(), b.informed_ids());
        assert_eq!(a.stats.sim_time.to_bits(), b.stats.sim_time.to_bits());

        // A different seed must actually change the event stream — otherwise
        // the assertions above are vacuous.
        let c = traced_flooding(bandwidth, 8);
        assert_ne!(a.trace, c.trace, "seed is inert at {}", bandwidth.label());
    }
}

#[test]
fn same_seed_gives_identical_raes_traces_at_every_queue_capacity() {
    for bandwidth in bandwidth_grid() {
        let cfg = AsyncRaesConfig {
            horizon: 40.0,
            flood_at: Some(6.0),
            trace: TraceMode::Full,
            ..AsyncRaesConfig::new(
                48,
                3,
                LatencyModel::Uniform {
                    low: 0.1,
                    high: 1.5,
                },
                bandwidth,
            )
        };
        let a = run_async_raes(&cfg, 13);
        let b = run_async_raes(&cfg, 13);
        assert!(
            !a.trace.is_empty(),
            "trace was recorded ({})",
            bandwidth.label()
        );
        assert_eq!(a.trace, b.trace, "trace diverged at {}", bandwidth.label());
        assert_eq!(a.repairs_completed, b.repairs_completed);
        assert_eq!(a.repair_requests, b.repair_requests);
        assert_eq!(a.rejections, b.rejections);
        assert_eq!(a.phantoms, b.phantoms);
        assert_eq!(a.mean_repair_time.to_bits(), b.mean_repair_time.to_bits());
        assert_eq!(a.stats.events_processed, b.stats.events_processed);
    }
}

proptest! {
    /// Simultaneous events pop in schedule (FIFO) order: for an arbitrary
    /// mix of timestamps drawn from a coarse grid (forcing many exact ties),
    /// the pop order equals a stable sort of the schedule order by time —
    /// the tie-break is a total order, never arbitrary heap order.
    #[test]
    fn tie_break_is_fifo_over_simultaneous_events(
        times in proptest::collection::vec(0u8..4, 1..64)
    ) {
        let mut sched = Scheduler::new();
        for (k, &t) in times.iter().enumerate() {
            sched.schedule_at(f64::from(t), k);
        }
        let mut expected: Vec<(u8, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves schedule order
        let popped: Vec<(u8, usize)> = std::iter::from_fn(|| {
            sched.pop().map(|(time, k)| (time as u8, k))
        })
        .collect();
        prop_assert_eq!(popped, expected);
    }
}

/// The async informed set in the zero-latency / infinite-bandwidth limit,
/// against the synchronous comparator (BFS over the same snapshot).
#[test]
fn zero_latency_infinite_bandwidth_matches_the_synchronous_engine_bit_for_bit() {
    let mut rng = seeded_rng(41);
    let graph = d_out_random_graph(256, 3, &mut rng);
    let snapshot = Snapshot::of(&graph);
    let source = NodeId::new(0);
    let source_idx = snapshot.index_of(source).expect("node 0 exists");
    let dist = bfs_distances(&snapshot, source_idx);
    let mut sync_informed: Vec<NodeId> = dist
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_some())
        .map(|(i, _)| snapshot.ids()[i])
        .collect();
    sync_informed.sort_unstable();

    let cfg = AsyncFloodingConfig {
        latency: LatencyModel::Fixed(0.0),
        bandwidth: BandwidthModel::unlimited(),
        horizon: 1024.0,
        churn: false,
        trace: TraceMode::Off,
    };
    let record = run_async_flooding_static(&graph, source, &cfg, 123);

    assert_eq!(record.informed_ids(), sync_informed.as_slice());
    assert_eq!(record.informed, sync_informed.len());
    assert_eq!(record.stats.messages_lost, 0);
    assert_eq!(record.stats.messages_dropped, 0);
    // Everything happened at t = 0: the async process collapsed to BFS.
    assert_eq!(record.stats.sim_time.to_bits(), 0f64.to_bits());
    let sync_rounds = static_flooding_time(&snapshot, source_idx);
    assert_eq!(record.complete, sync_rounds.is_some());
}

/// With unit latency the emergent rounds equal the synchronous flooding
/// time exactly, and completion lands at that integer instant.
#[test]
fn unit_latency_emergent_rounds_equal_the_synchronous_flooding_time() {
    let mut rng = seeded_rng(42);
    let graph = d_out_random_graph(192, 3, &mut rng);
    let snapshot = Snapshot::of(&graph);
    let source = NodeId::new(5);
    let source_idx = snapshot.index_of(source).expect("node 5 exists");
    let sync_rounds = static_flooding_time(&snapshot, source_idx)
        .expect("a 3-out random graph on 192 nodes is connected");

    let cfg = AsyncFloodingConfig {
        latency: LatencyModel::Fixed(1.0),
        bandwidth: BandwidthModel::unlimited(),
        horizon: 1024.0,
        churn: false,
        trace: TraceMode::Off,
    };
    let record = run_async_flooding_static(&graph, source, &cfg, 123);
    assert!(record.complete);
    assert_eq!(record.emergent_rounds, sync_rounds);
    assert_eq!(record.completion_time, Some(f64::from(sync_rounds)));
}

/// Nonzero latency plus finite bandwidth stretches completion beyond the
/// synchronous round count — the emergent-timing claim of the paper-level
/// story, pinned on a concrete instance.
#[test]
fn queueing_and_latency_stretch_completion_beyond_the_synchronous_rounds() {
    let mut rng = seeded_rng(43);
    let graph = d_out_random_graph(192, 3, &mut rng);
    let snapshot = Snapshot::of(&graph);
    let source = NodeId::new(0);
    let source_idx = snapshot.index_of(source).expect("node 0 exists");
    let sync_rounds = static_flooding_time(&snapshot, source_idx)
        .expect("a 3-out random graph on 192 nodes is connected");

    let cfg = AsyncFloodingConfig {
        latency: LatencyModel::Fixed(1.0),
        bandwidth: BandwidthModel::delaying(1.0),
        horizon: 4096.0,
        churn: false,
        trace: TraceMode::Off,
    };
    let record = run_async_flooding_static(&graph, source, &cfg, 123);
    assert!(record.complete);
    let completion = record
        .completion_time
        .expect("complete runs have a completion time");
    assert!(
        completion > f64::from(sync_rounds),
        "completion {completion} should exceed the synchronous {sync_rounds} rounds"
    );
    assert!(record.stats.mean_queue_delay() > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Duplication and bounded reordering change *when* and *how often*
    /// messages arrive, never *whether* — with no loss, partition or crash
    /// axis active, the async informed set on a static graph is exactly the
    /// BFS-reachable set from the source, for arbitrary duplication and
    /// reordering rates.
    #[test]
    fn duplication_and_reordering_preserve_the_informed_set(
        seed in 0u64..(1 << 48),
        duplicate_p in 0.0f64..0.9,
        reorder_p in 0.0f64..0.9,
        reorder_max in 0.1f64..4.0,
        n in 24usize..96,
    ) {
        let mut rng = seeded_rng(seed ^ 0xD00D);
        let graph = d_out_random_graph(n, 3, &mut rng);
        let snapshot = Snapshot::of(&graph);
        let source = NodeId::new(0);
        let source_idx = snapshot.index_of(source).expect("node 0 exists");
        let dist = bfs_distances(&snapshot, source_idx);
        let mut reachable: Vec<NodeId> = dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| snapshot.ids()[i])
            .collect();
        reachable.sort_unstable();

        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(1.0),
            bandwidth: BandwidthModel::unlimited(),
            horizon: 4096.0,
            churn: false,
            trace: TraceMode::Off,
        };
        let plan = FaultPlan {
            duplicate_p,
            reorder_p,
            reorder_max,
            ..FaultPlan::none()
        };
        let record = run_async_flooding_static_faulty(&graph, source, &cfg, &plan, seed);
        prop_assert_eq!(record.informed_ids(), reachable.as_slice());
        prop_assert_eq!(record.stats.messages_fault_lost, 0);
        prop_assert_eq!(record.stats.messages_blocked, 0);
    }
}
