//! Seeded, deterministic fault injection for the event-driven engines.
//!
//! A [`FaultPlan`] describes everything that can go wrong *underneath* a
//! protocol: per-link message faults (loss — i.i.d. or bursty —,
//! duplication, bounded reordering), scheduled network partitions enforced
//! at delivery time, and node crash–restart cycles distinct from churn
//! death. A [`FaultState`] executes the plan against one run.
//!
//! ## Determinism contract
//!
//! All fault randomness flows through a dedicated RNG substream
//! ([`FAULT_STREAM`]), so attaching the fault layer never perturbs the
//! latency or churn streams of a run. Stronger: every hook of a *disabled*
//! axis returns without touching the RNG at all — an empty plan
//! ([`FaultPlan::none`]) is stream-identical to running the PR 7 engines
//! with no fault layer, bit for bit (pinned by the golden suite against
//! recorded E16/E17 files).
//!
//! ## Semantics
//!
//! * **Loss / duplication / reordering** apply per message on the link
//!   `sender → receiver`, after the sender's egress queue accepted the
//!   message (a NIC that transmitted into a lossy wire). Bursty loss keeps
//!   one Gilbert–Elliott channel state per directed link.
//! * **Partitions** split the population into `blocks` groups by a
//!   deterministic hash of the node identifier (so nodes born mid-partition
//!   land in a block too) and drop any delivery crossing a block boundary
//!   while a window is active. Windows may nest or overlap; a message is
//!   blocked if *any* active window separates the endpoints.
//! * **Crash–restart** takes a node down without removing it from the
//!   graph: it keeps its identity and edges, loses its queued egress and
//!   in-flight protocol state, receives nothing while down, and rejoins
//!   after a downtime draw. Churn death of a down node wins: the node is
//!   simply gone when the restart fires.

use churn_graph::hashing::{IdHashMap, IdHashSet};

use churn_stochastic::rng::{derive_seed, substream_rng, SimRng};
use churn_stochastic::{GilbertElliott, GilbertElliottState, Poisson};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::latency::LatencyModel;

/// The RNG substream tag of the fault layer (disjoint from the flooding
/// latency stream `0x0A51_C0DE`).
pub const FAULT_STREAM: u64 = 0xFA17_5EED;

/// Salt for the deterministic partition block hash.
const PARTITION_SALT: u64 = 0x9A27_1710;

/// Per-link message-loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No loss; consumes no randomness.
    None,
    /// Every message is lost independently with probability `p`.
    Iid {
        /// Loss probability per message.
        p: f64,
    },
    /// Bursty loss: one Gilbert–Elliott channel per directed link.
    Bursty(GilbertElliott),
}

impl LossModel {
    /// The long-run marginal loss rate of the model.
    #[must_use]
    pub fn marginal(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p,
            LossModel::Bursty(chan) => chan.stationary_loss(),
        }
    }
}

/// One scheduled partition window: at `start` the alive population splits
/// into `blocks` groups (deterministic id hash); at `heal` the blocks merge
/// back. Enforced at delivery time, so messages already in flight when the
/// partition starts are cut too.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Partition onset (inclusive).
    pub start: f64,
    /// Heal instant (exclusive: deliveries at `heal` go through).
    pub heal: f64,
    /// Number of blocks the population splits into (≥ 2).
    pub blocks: u32,
}

/// Crash–restart process: per unit of simulated time each alive node
/// crashes with intensity `rate` (crash counts are Poisson over the alive
/// population); a crashed node rejoins after a `downtime` draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashRestart {
    /// Per-node crash intensity per unit of simulated time.
    pub rate: f64,
    /// Downtime distribution (re-using the latency model family).
    pub downtime: LatencyModel,
}

/// A complete, seeded fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-link loss model.
    pub loss: LossModel,
    /// Probability a delivered message is duplicated (one extra copy).
    pub duplicate_p: f64,
    /// Probability a delivered copy is reordered (held back).
    pub reorder_p: f64,
    /// Maximum extra holding delay of a reordered copy (uniform on
    /// `(0, reorder_max]`); must be positive when `reorder_p > 0`.
    pub reorder_max: f64,
    /// Scheduled partition windows (may nest or overlap).
    pub partitions: Vec<PartitionWindow>,
    /// Crash–restart process, if any.
    pub crash: Option<CrashRestart>,
    /// Pull-based anti-entropy period for async flooding: every interval,
    /// each uninformed alive node pulls from one uniform alive partner.
    /// `None` disables the mechanism (and consumes no randomness).
    pub anti_entropy: Option<f64>,
}

impl FaultPlan {
    /// The empty plan: no faults, no recovery machinery, zero randomness —
    /// stream-identical to running an engine without the fault layer.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            loss: LossModel::None,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            reorder_max: 0.0,
            partitions: Vec::new(),
            crash: None,
            anti_entropy: None,
        }
    }

    /// `true` when the plan injects nothing and schedules nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && self.duplicate_p == 0.0
            && self.reorder_p == 0.0
            && self.partitions.is_empty()
            && self.crash.is_none()
            && self.anti_entropy.is_none()
    }

    /// Checks every axis of the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let unit = |p: f64| (0.0..=1.0).contains(&p);
        match self.loss {
            LossModel::None | LossModel::Bursty(_) => {}
            LossModel::Iid { p } => {
                if !unit(p) {
                    return Err(format!("i.i.d. loss probability {p} outside [0, 1]"));
                }
            }
        }
        if !unit(self.duplicate_p) {
            return Err(format!(
                "duplication probability {} outside [0, 1]",
                self.duplicate_p
            ));
        }
        if !unit(self.reorder_p) {
            return Err(format!(
                "reordering probability {} outside [0, 1]",
                self.reorder_p
            ));
        }
        if self.reorder_p > 0.0 && !(self.reorder_max.is_finite() && self.reorder_max > 0.0) {
            return Err(format!(
                "reordering bound {} must be finite and positive",
                self.reorder_max
            ));
        }
        for window in &self.partitions {
            if !(window.start.is_finite() && window.heal.is_finite())
                || window.start < 0.0
                || window.heal <= window.start
            {
                return Err(format!(
                    "partition window {window:?} is not a valid interval"
                ));
            }
            if window.blocks < 2 {
                return Err(format!(
                    "partition window {window:?} needs at least 2 blocks"
                ));
            }
        }
        if let Some(crash) = &self.crash {
            if !(crash.rate.is_finite() && crash.rate >= 0.0) {
                return Err(format!("crash rate {} must be finite and ≥ 0", crash.rate));
            }
            crash.downtime.validate()?;
        }
        if let Some(interval) = self.anti_entropy {
            if !(interval.is_finite() && interval > 0.0) {
                return Err(format!(
                    "anti-entropy interval {interval} must be finite and positive"
                ));
            }
        }
        Ok(())
    }

    /// Short label for bench ids, report headers and the scenario fault
    /// axis: `none`, `loss0.1`, `ge0.05-0.5`, `dup0.2`, `ro0.3/4`,
    /// `part2@8-24`, `crash0.01`, `ae1` — joined with `+`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.loss {
            LossModel::None => {}
            LossModel::Iid { p } => parts.push(format!("loss{p}")),
            LossModel::Bursty(chan) => {
                parts.push(format!("ge{}-{}", chan.p_gb(), chan.p_bg()));
            }
        }
        if self.duplicate_p > 0.0 {
            parts.push(format!("dup{}", self.duplicate_p));
        }
        if self.reorder_p > 0.0 {
            parts.push(format!("ro{}/{}", self.reorder_p, self.reorder_max));
        }
        for window in &self.partitions {
            parts.push(format!(
                "part{}@{}-{}",
                window.blocks, window.start, window.heal
            ));
        }
        if let Some(crash) = &self.crash {
            parts.push(format!("crash{}", crash.rate));
        }
        if let Some(interval) = self.anti_entropy {
            parts.push(format!("ae{interval}"));
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// The deterministic block of node `id` in partition window
    /// `window_idx` — a pure hash, so nodes born mid-partition are assigned
    /// consistently without any coordination or randomness.
    #[must_use]
    pub fn block_of(&self, window_idx: usize, id: u64) -> u32 {
        let window = &self.partitions[window_idx];
        (derive_seed(id, PARTITION_SALT ^ window_idx as u64) % u64::from(window.blocks)) as u32
    }

    /// `true` while any partition window is active at `now`.
    #[must_use]
    pub fn partition_active(&self, now: f64) -> bool {
        self.partitions
            .iter()
            .any(|w| w.start <= now && now < w.heal)
    }
}

/// The runtime of a [`FaultPlan`] over one run: the dedicated RNG
/// substream, per-link burst-channel states, and the down set of the
/// crash–restart process.
#[derive(Debug)]
pub struct FaultState<'p> {
    plan: &'p FaultPlan,
    rng: SimRng,
    /// Gilbert–Elliott channel state per directed link `(sender, receiver)`.
    channels: IdHashMap<(u64, u64), GilbertElliottState>,
    /// Nodes currently crashed (down), by raw identifier.
    down: IdHashSet<u64>,
    /// Down intervals `[crash, restart)` per node; the last interval of a
    /// node still down (or crashed-then-dead) is open: `restart = ∞`. This
    /// is what makes "a crash loses queued egress" enforceable after the
    /// fact: a message whose departure instant falls inside a sender's down
    /// window never made it to the wire.
    down_windows: IdHashMap<u64, Vec<(f64, f64)>>,
    crashes: u64,
    restarts: u64,
}

impl<'p> FaultState<'p> {
    /// Binds a plan to a run seed. The RNG is the dedicated fault
    /// substream of `seed`; an empty plan never draws from it.
    #[must_use]
    pub fn new(plan: &'p FaultPlan, seed: u64) -> Self {
        FaultState {
            plan,
            rng: substream_rng(seed, FAULT_STREAM),
            channels: IdHashMap::default(),
            down: IdHashSet::default(),
            down_windows: IdHashMap::default(),
            crashes: 0,
            restarts: 0,
        }
    }

    /// The plan this state executes.
    #[must_use]
    pub fn plan(&self) -> &'p FaultPlan {
        self.plan
    }

    /// The fault substream (for draws that belong to the fault layer but
    /// need engine-side context, e.g. sampling a crash victim or an
    /// anti-entropy partner from the live graph).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Decides the fate of one message on the link `sender → receiver`:
    /// `0` = lost, `1` = delivered, `2` = duplicated (one extra copy).
    /// Disabled axes consume no randomness.
    pub fn copies(&mut self, sender: u64, receiver: u64) -> u32 {
        let lost = match self.plan.loss {
            LossModel::None => false,
            LossModel::Iid { p } => self.rng.gen::<f64>() < p,
            LossModel::Bursty(chan) => {
                let state = self
                    .channels
                    .entry((sender, receiver))
                    .or_insert_with(|| chan.initial_state());
                chan.step(state, &mut self.rng)
            }
        };
        if lost {
            return 0;
        }
        if self.plan.duplicate_p > 0.0 && self.rng.gen::<f64>() < self.plan.duplicate_p {
            2
        } else {
            1
        }
    }

    /// Extra holding delay of one delivered copy — `0.0` unless the
    /// reordering coin fires, in which case the copy is held back a uniform
    /// draw on `(0, reorder_max]`. Disabled reordering consumes no
    /// randomness.
    pub fn reorder_delay(&mut self) -> f64 {
        if self.plan.reorder_p > 0.0 && self.rng.gen::<f64>() < self.plan.reorder_p {
            let u: f64 = 1.0 - self.rng.gen::<f64>(); // (0, 1]
            u * self.plan.reorder_max
        } else {
            0.0
        }
    }

    /// `true` when a delivery from `sender` to `receiver` at time `now`
    /// crosses an active partition boundary. Pure — no randomness.
    #[must_use]
    pub fn blocked(&self, now: f64, sender: u64, receiver: u64) -> bool {
        self.plan.partitions.iter().enumerate().any(|(i, w)| {
            w.start <= now
                && now < w.heal
                && self.plan.block_of(i, sender) != self.plan.block_of(i, receiver)
        })
    }

    /// Number of crashes to inject this tick over an `alive`-node
    /// population: Poisson with mean `rate · alive`. Zero (and no draw)
    /// without a crash model.
    pub fn crash_count(&mut self, alive: usize) -> u64 {
        match &self.plan.crash {
            None => 0,
            Some(crash) if crash.rate == 0.0 || alive == 0 => 0,
            Some(crash) => Poisson::new(crash.rate * alive as f64)
                .expect("validated: crash rate is finite and non-negative")
                .sample(&mut self.rng),
        }
    }

    /// Draws one downtime from the crash model.
    ///
    /// # Panics
    ///
    /// Panics when the plan has no crash model — callers only reach this
    /// after a positive [`Self::crash_count`].
    pub fn downtime(&mut self) -> f64 {
        let crash = self.plan.crash.as_ref().expect("crash model present");
        crash.downtime.sample(&mut self.rng)
    }

    /// Marks a node down at time `now`, opening a down window. Returns
    /// `false` (and changes nothing) when it was already down.
    pub fn mark_down(&mut self, id: u64, now: f64) -> bool {
        let newly = self.down.insert(id);
        if newly {
            self.crashes += 1;
            self.down_windows
                .entry(id)
                .or_default()
                .push((now, f64::INFINITY));
        }
        newly
    }

    /// Marks a node up again at time `now`, closing its open down window.
    /// Returns `false` when it was not down (e.g. churn killed it before
    /// the restart fired).
    pub fn mark_up(&mut self, id: u64, now: f64) -> bool {
        let was_down = self.down.remove(&id);
        if was_down {
            self.restarts += 1;
            if let Some(last) = self
                .down_windows
                .get_mut(&id)
                .and_then(|windows| windows.last_mut())
            {
                last.1 = now;
            }
        }
        was_down
    }

    /// Forgets a node entirely (churn death while down). Its open down
    /// window stays open — the node crashed and never came back, so every
    /// later departure from it is void.
    pub fn forget(&mut self, id: u64) {
        self.down.remove(&id);
    }

    /// `true` while the node is crashed.
    #[must_use]
    pub fn is_down(&self, id: u64) -> bool {
        self.down.contains(&id)
    }

    /// `true` when the node was down at time `t` — the queued-egress rule:
    /// a message whose departure instant falls inside the sender's down
    /// window was still queued at the crash and is void.
    #[must_use]
    pub fn was_down_at(&self, id: u64, t: f64) -> bool {
        self.down_windows
            .get(&id)
            .is_some_and(|windows| windows.iter().any(|&(start, end)| start <= t && t < end))
    }

    /// Number of nodes currently down.
    #[must_use]
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// Total crashes injected so far.
    #[must_use]
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Total restarts completed so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_stochastic::rng::seeded_rng;

    #[test]
    fn empty_plan_validates_and_consumes_no_randomness() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate().unwrap();
        assert_eq!(plan.label(), "none");

        let mut state = FaultState::new(&plan, 7);
        let reference = substream_rng(7, FAULT_STREAM);
        for _ in 0..32 {
            assert_eq!(state.copies(1, 2), 1);
            assert_eq!(state.reorder_delay(), 0.0);
            assert!(!state.blocked(5.0, 1, 2));
            assert_eq!(state.crash_count(100), 0);
        }
        assert_eq!(*state.rng(), reference, "no draw may touch the substream");
    }

    #[test]
    fn validate_rejects_bad_axes() {
        let mut plan = FaultPlan::none();
        plan.duplicate_p = 1.5;
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.reorder_p = 0.5; // reorder_max still 0
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.partitions.push(PartitionWindow {
            start: 4.0,
            heal: 2.0,
            blocks: 2,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.partitions.push(PartitionWindow {
            start: 2.0,
            heal: 4.0,
            blocks: 1,
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.crash = Some(CrashRestart {
            rate: -0.1,
            downtime: LatencyModel::Fixed(1.0),
        });
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.anti_entropy = Some(0.0);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn iid_loss_rate_is_respected() {
        let mut plan = FaultPlan::none();
        plan.loss = LossModel::Iid { p: 0.3 };
        plan.validate().unwrap();
        let mut state = FaultState::new(&plan, 11);
        let trials = 100_000;
        let lost = (0..trials).filter(|_| state.copies(1, 2) == 0).count();
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn bursty_loss_keeps_independent_per_link_channels() {
        let chan = GilbertElliott::new(0.02, 0.2, 0.0, 1.0).unwrap();
        let mut plan = FaultPlan::none();
        plan.loss = LossModel::Bursty(chan);
        let mut state = FaultState::new(&plan, 13);
        // Alternating links still converge to the stationary loss, and the
        // channel map holds one state per directed link.
        let mut lost = 0usize;
        let trials = 60_000;
        for k in 0..trials {
            let link = (k % 3) as u64;
            if state.copies(link, link + 10) == 0 {
                lost += 1;
            }
        }
        assert_eq!(state.channels.len(), 3);
        let rate = lost as f64 / trials as f64;
        assert!((rate - chan.stationary_loss()).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn duplication_and_reordering_rates_are_respected() {
        let mut plan = FaultPlan::none();
        plan.duplicate_p = 0.25;
        plan.reorder_p = 0.5;
        plan.reorder_max = 4.0;
        plan.validate().unwrap();
        let mut state = FaultState::new(&plan, 17);
        let trials = 50_000;
        let dup = (0..trials).filter(|_| state.copies(1, 2) == 2).count();
        assert!((dup as f64 / trials as f64 - 0.25).abs() < 0.01);
        let mut held = 0usize;
        for _ in 0..trials {
            let delay = state.reorder_delay();
            assert!((0.0..=4.0).contains(&delay));
            if delay > 0.0 {
                held += 1;
            }
        }
        assert!((held as f64 / trials as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn partition_blocks_are_deterministic_and_enforced_in_window() {
        let mut plan = FaultPlan::none();
        plan.partitions.push(PartitionWindow {
            start: 8.0,
            heal: 24.0,
            blocks: 2,
        });
        plan.validate().unwrap();
        // Find two ids in different blocks and two in the same.
        let (mut cross, mut same) = (None, None);
        for id in 1..64u64 {
            if plan.block_of(0, id) != plan.block_of(0, 0) {
                cross.get_or_insert(id);
            } else if id != 0 {
                same.get_or_insert(id);
            }
        }
        let (cross, same) = (cross.unwrap(), same.unwrap());
        let state = FaultState::new(&plan, 19);
        assert!(!state.blocked(7.9, 0, cross), "before the window");
        assert!(state.blocked(8.0, 0, cross), "window start is inclusive");
        assert!(state.blocked(23.9, 0, cross));
        assert!(!state.blocked(24.0, 0, cross), "heal is exclusive");
        assert!(!state.blocked(12.0, 0, same), "same block never blocked");
        assert!(plan.partition_active(12.0));
        assert!(!plan.partition_active(24.0));
        // Blocks are a pure function of the id: re-evaluation agrees.
        assert_eq!(plan.block_of(0, cross), plan.block_of(0, cross));
        // Both blocks are populated over a small id range.
        let ones: u32 = (0..64).map(|id| plan.block_of(0, id)).sum();
        assert!(ones > 8 && ones < 56, "hash splits ids across blocks");
    }

    #[test]
    fn crash_restart_bookkeeping_counts_transitions_once() {
        let mut plan = FaultPlan::none();
        plan.crash = Some(CrashRestart {
            rate: 0.01,
            downtime: LatencyModel::Fixed(2.0),
        });
        let mut state = FaultState::new(&plan, 23);
        assert!(state.mark_down(5, 10.0));
        assert!(!state.mark_down(5, 10.5), "double crash is a no-op");
        assert!(state.is_down(5));
        assert_eq!(state.down_count(), 1);
        assert!(state.mark_up(5, 12.0));
        assert!(!state.mark_up(5, 12.5), "double restart is a no-op");
        assert_eq!((state.crashes(), state.restarts()), (1, 1));
        // The down window [10, 12) voids departures queued at the crash.
        assert!(!state.was_down_at(5, 9.9));
        assert!(state.was_down_at(5, 10.0));
        assert!(state.was_down_at(5, 11.9));
        assert!(!state.was_down_at(5, 12.0), "restart instant is up again");
        state.mark_down(6, 20.0);
        state.forget(6); // churn death while down
        assert!(!state.mark_up(6, 25.0), "forgotten node never restarts");
        assert_eq!(state.restarts(), 1);
        assert!(
            state.was_down_at(6, 1e9),
            "a crashed-then-dead node never departs anything again"
        );

        // Crash counts follow the Poisson mean.
        let mut total = 0u64;
        let ticks = 20_000;
        for _ in 0..ticks {
            total += state.crash_count(100);
        }
        let mean = total as f64 / ticks as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean crashes/tick {mean}");
        assert_eq!(state.crash_count(0), 0);
    }

    #[test]
    fn labels_compose_axes() {
        let mut plan = FaultPlan::none();
        plan.loss = LossModel::Iid { p: 0.1 };
        plan.duplicate_p = 0.2;
        plan.reorder_p = 0.3;
        plan.reorder_max = 4.0;
        plan.partitions.push(PartitionWindow {
            start: 8.0,
            heal: 24.0,
            blocks: 2,
        });
        plan.crash = Some(CrashRestart {
            rate: 0.01,
            downtime: LatencyModel::Fixed(2.0),
        });
        plan.anti_entropy = Some(1.0);
        assert_eq!(
            plan.label(),
            "loss0.1+dup0.2+ro0.3/4+part2@8-24+crash0.01+ae1"
        );
        let ge = GilbertElliott::new(0.05, 0.5, 0.0, 1.0).unwrap();
        let mut bursty = FaultPlan::none();
        bursty.loss = LossModel::Bursty(ge);
        assert_eq!(bursty.label(), "ge0.05-0.5");
    }

    #[test]
    fn same_seed_gives_identical_fault_streams() {
        let mut plan = FaultPlan::none();
        plan.loss = LossModel::Iid { p: 0.2 };
        plan.duplicate_p = 0.1;
        plan.reorder_p = 0.2;
        plan.reorder_max = 2.0;
        let mut a = FaultState::new(&plan, 29);
        let mut b = FaultState::new(&plan, 29);
        for k in 0..1000u64 {
            assert_eq!(a.copies(k, k + 1), b.copies(k, k + 1));
            assert_eq!(a.reorder_delay().to_bits(), b.reorder_delay().to_bits());
        }
        // And the fault stream is independent of the run's base RNG.
        let base = seeded_rng(29);
        assert_eq!(base, seeded_rng(29));
    }
}
