//! Asynchronous flooding: forward on message *arrival*, not on a round tick.
//!
//! A node that receives the rumor for the first time immediately forwards it
//! along every incident link; each copy pays the sender's egress queue
//! ([`crate::bandwidth`]) plus an independent latency draw
//! ([`crate::latency`]). Rounds are not imposed — the hop depth at which
//! deliveries happen *emerges* from the timing, and with nonzero latency the
//! completion time in simulated units generally exceeds the synchronous
//! round count (senders queue, stragglers arrive late).
//!
//! In the zero-latency / infinite-bandwidth limit on a static graph, the
//! process collapses to breadth-first search and informs exactly the set the
//! synchronous engine informs — the equivalence the test suite pins.
//!
//! Churn plugs in as just another event stream: with
//! [`AsyncFloodingConfig::churn`] enabled, a churn tick fires each unit of
//! simulated time at `k + 0.5` and calls the model's own
//! [`DynamicNetwork::advance_time_unit`] — which routes through the existing
//! `churn_core::driver` hooks (streaming rounds or the Poisson jump chain).
//! The half-unit offset keeps the synchronous convention that a round's
//! deliveries land before the round's churn.

use churn_core::flooding::TAG_NO_FORWARD;
use churn_core::DynamicNetwork;
use churn_graph::hashing::IdHashSet;
use churn_graph::{DenseHandle, DynamicGraph, NodeId};
use churn_stochastic::rng::{substream_rng, SimRng};

use crate::bandwidth::{BandwidthModel, EgressQueues, Enqueue};
use crate::faults::{FaultPlan, FaultState};
use crate::latency::LatencyModel;
use crate::sched::{Scheduler, TraceEvent};
use crate::stats::EventStats;
use crate::trace::{TraceBins, TraceMode};

/// Substream tag of the latency-sampling RNG (independent of every model
/// substream, so attaching the event layer never perturbs the churn
/// trajectory).
const LATENCY_STREAM: u64 = 0x0A51_C0DE;

/// Trace kind: a node became informed (`subject` = node id).
pub const TRACE_INFORMED: u16 = 1;
/// Trace kind: a delivery reached an already-informed node.
pub const TRACE_DUPLICATE: u16 = 2;
/// Trace kind: a message was lost in flight.
pub const TRACE_LOST: u16 = 3;
/// Trace kind: a churn tick completed (`subject` = alive count after it).
pub const TRACE_CHURN: u16 = 4;
/// Trace kind: a send was dropped at a saturated bandwidth queue.
pub const TRACE_BLOCKED: u16 = 5;
/// Trace kind: a delivery reached a departed node.
pub const TRACE_DOWN: u16 = 6;
/// Trace kind: a node crashed (`subject` = node id).
pub const TRACE_CRASH: u16 = 7;
/// Trace kind: a crashed node restarted (`subject` = node id).
pub const TRACE_RESTART: u16 = 8;
/// Trace kind: an anti-entropy pull informed a node.
pub const TRACE_PULL: u16 = 9;
/// Trace kind: a delivery arrived for a recycled/void slot.
pub const TRACE_VOID: u16 = 10;

/// Where the rumor starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncSource {
    /// A specific alive node.
    Node(NodeId),
    /// The most recently born alive node.
    Newest,
}

/// Configuration of one asynchronous flooding run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncFloodingConfig {
    /// Per-message latency model.
    pub latency: LatencyModel,
    /// Per-node bandwidth model.
    pub bandwidth: BandwidthModel,
    /// Simulated-time horizon: events after this instant are not processed.
    pub horizon: f64,
    /// Advance the network one churn unit per unit of simulated time
    /// (ticks at `k + 0.5`). Requires a finite horizon.
    pub churn: bool,
    /// Trace capture mode: off in production runs, [`TraceMode::Full`] for
    /// the determinism suite, [`TraceMode::Bins`] for the streaming series
    /// pipeline.
    pub trace: TraceMode,
}

impl AsyncFloodingConfig {
    /// A config with the given latency and bandwidth, a horizon of 4096
    /// time units, churn on and tracing off.
    #[must_use]
    pub fn new(latency: LatencyModel, bandwidth: BandwidthModel) -> Self {
        AsyncFloodingConfig {
            latency,
            bandwidth,
            horizon: 4096.0,
            churn: true,
            trace: TraceMode::Off,
        }
    }

    /// Checks the latency/bandwidth parameters and the horizon.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.latency.validate()?;
        self.bandwidth.validate()?;
        if !self.horizon.is_finite() || self.horizon < 0.0 {
            return Err(format!("invalid horizon {}", self.horizon));
        }
        Ok(())
    }
}

/// Result of one asynchronous flooding run.
#[derive(Debug, Clone)]
pub struct AsyncFloodingRecord {
    /// Alive informed nodes at the end of the run.
    pub informed: usize,
    /// Alive nodes at the end of the run.
    pub alive: usize,
    /// Whether every alive node was informed at the end.
    pub complete: bool,
    /// First simulated instant at which every alive node was informed.
    pub completion_time: Option<f64>,
    /// Deepest hop count at which a delivery informed a new node — the
    /// emergent round structure.
    pub emergent_rounds: u32,
    /// Deterministic load counters.
    pub stats: EventStats,
    /// Recorded event trace (empty unless [`TraceMode::Full`]).
    pub trace: Vec<TraceEvent>,
    /// Streaming per-time-unit bins (`None` unless [`TraceMode::Bins`]).
    pub bins: Option<TraceBins>,
    informed_ids: Vec<NodeId>,
}

impl AsyncFloodingRecord {
    /// Fraction of alive nodes informed at the end.
    #[must_use]
    pub fn final_fraction(&self) -> f64 {
        self.informed as f64 / self.alive.max(1) as f64
    }

    /// The informed alive nodes, sorted by identifier.
    #[must_use]
    pub fn informed_ids(&self) -> &[NodeId] {
        &self.informed_ids
    }
}

/// One scheduled event of the flooding process.
enum Ev {
    /// A rumor copy arrives at `target` (revalidated at delivery). `from`
    /// and `departs` carry the sender identity and departure instant for
    /// the fault layer's partition and crashed-sender checks.
    Deliver {
        target: DenseHandle,
        id: NodeId,
        from: u64,
        departs: f64,
        hop: u32,
    },
    /// Advance the network one churn unit.
    ChurnTick,
    /// A crashed node comes back up (identity kept, rumor state lost).
    Restart { target: DenseHandle, id: NodeId },
    /// Periodic pull round: uninformed nodes ask a random peer for the
    /// rumor — how floods survive a healed partition.
    AntiEntropy,
}

/// The flooding state shared by the churning and the static driver.
struct Engine<'p> {
    latency: LatencyModel,
    sched: Scheduler<Ev>,
    egress: EgressQueues,
    stats: EventStats,
    rng: SimRng,
    faults: FaultState<'p>,
    informed: IdHashSet<u64>,
    entries: Vec<(DenseHandle, NodeId)>,
    emergent_rounds: u32,
    completion_time: Option<f64>,
    /// Time of the previous churn tick — the heal census fires on the
    /// first tick at or past each partition's heal instant.
    last_tick: f64,
}

impl<'p> Engine<'p> {
    /// Builds the engine; `initial_alive` seeds the streaming binner's
    /// alive series (the population before the first churn event).
    fn new(cfg: &AsyncFloodingConfig, plan: &'p FaultPlan, seed: u64, initial_alive: f64) -> Self {
        let mut sched = Scheduler::new();
        match cfg.trace {
            TraceMode::Off => {}
            TraceMode::Full => sched.enable_trace(),
            TraceMode::Bins => sched.enable_bins(TRACE_CHURN, initial_alive),
        }
        Engine {
            latency: cfg.latency,
            sched,
            egress: EgressQueues::new(cfg.bandwidth),
            stats: EventStats::new(),
            rng: substream_rng(seed, LATENCY_STREAM),
            faults: FaultState::new(plan, seed),
            informed: IdHashSet::default(),
            entries: Vec::new(),
            emergent_rounds: 0,
            completion_time: None,
            last_tick: 0.0,
        }
    }

    /// Marks `idx` informed and forwards along its current incident links.
    fn inform(&mut self, graph: &DynamicGraph, idx: u32, hop: u32, now: f64) {
        let id = graph.id_at(idx).expect("informed nodes are alive");
        let handle = graph.handle_at(idx).expect("informed nodes are alive");
        self.informed.insert(id.raw());
        self.entries.push((handle, id));
        self.emergent_rounds = self.emergent_rounds.max(hop);
        if graph.tags_enabled() && graph.tag_at(idx) & TAG_NO_FORWARD != 0 {
            return; // informed, but does not forward (Byzantine behavior)
        }
        for target_idx in graph.neighbor_indices_at(idx) {
            match self.egress.enqueue(id.raw(), now) {
                Enqueue::Dropped => self.stats.messages_dropped += 1,
                Enqueue::Sent {
                    departs,
                    queue_delay,
                } => {
                    self.stats.messages_sent += 1;
                    self.stats.record_queue_delay(queue_delay);
                    let target = graph
                        .handle_at(target_idx)
                        .expect("neighbors of an alive node are alive");
                    let target_id = graph
                        .id_at(target_idx)
                        .expect("neighbors of an alive node are alive");
                    // Link fate first: a wire-lost message draws no latency,
                    // so an empty plan leaves the latency stream untouched.
                    let copies = self.faults.copies(id.raw(), target_id.raw());
                    if copies == 0 {
                        self.stats.messages_fault_lost += 1;
                        continue;
                    }
                    if copies == 2 {
                        self.stats.messages_duplicated += 1;
                    }
                    for _ in 0..copies {
                        let held = self.faults.reorder_delay();
                        if held > 0.0 {
                            self.stats.messages_reordered += 1;
                        }
                        let arrival = departs + self.latency.sample(&mut self.rng) + held;
                        self.sched.schedule_at(
                            arrival,
                            Ev::Deliver {
                                target,
                                id: target_id,
                                from: id.raw(),
                                departs,
                                hop: hop + 1,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Processes one delivery; returns `true` when a new node was informed.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        graph: &DynamicGraph,
        target: DenseHandle,
        id: NodeId,
        from: u64,
        departs: f64,
        hop: u32,
        now: f64,
    ) -> bool {
        if !graph.is_current(target) {
            self.stats.messages_lost += 1;
            self.sched.record(TRACE_LOST, id.raw());
            return false;
        }
        // Fault-layer gates, all no-ops under an empty plan: a departure
        // inside the sender's down window was still queued at the crash and
        // never reached the wire; an active partition cuts the link; a
        // crashed target holds no protocol state to receive into.
        if self.faults.was_down_at(from, departs) {
            self.stats.messages_crash_voided += 1;
            self.sched.record(TRACE_VOID, id.raw());
            return false;
        }
        if self.faults.blocked(now, from, id.raw()) {
            self.stats.messages_blocked += 1;
            self.sched.record(TRACE_BLOCKED, id.raw());
            return false;
        }
        if self.faults.is_down(id.raw()) {
            self.stats.messages_to_down += 1;
            self.sched.record(TRACE_DOWN, id.raw());
            return false;
        }
        self.stats.messages_delivered += 1;
        if self.informed.contains(&id.raw()) {
            self.sched.record(TRACE_DUPLICATE, id.raw());
            return false;
        }
        self.sched.record(TRACE_INFORMED, id.raw());
        self.inform(graph, target.index, hop, now);
        true
    }

    /// Drops informed entries that died in a churn window.
    fn revalidate(&mut self, graph: &DynamicGraph) {
        self.entries.retain(|&(handle, id)| {
            let alive = graph.is_current(handle);
            if !alive {
                self.informed.remove(&id.raw());
            }
            alive
        });
    }

    fn note_completion(&mut self, alive: usize, now: f64) {
        if self.completion_time.is_none() && self.entries.len() == alive {
            self.completion_time = Some(now);
        }
    }

    /// Injects this tick's crashes: each victim loses its queued egress and
    /// its rumor state but keeps its identity, and a restart is scheduled
    /// after a drawn downtime.
    fn crash_sweep(&mut self, graph: &DynamicGraph, now: f64) {
        let crashes = self.faults.crash_count(graph.len());
        for _ in 0..crashes {
            let Some(idx) = graph.sample_member(self.faults.rng()) else {
                break;
            };
            let id = graph.id_at(idx).expect("sampled members are alive");
            if self.faults.is_down(id.raw()) {
                continue; // already down — the crash lands on a dead machine
            }
            let downtime = self.faults.downtime();
            self.faults.mark_down(id.raw(), now);
            self.sched.record(TRACE_CRASH, id.raw());
            self.egress.forget(id.raw());
            if self.informed.remove(&id.raw()) {
                self.entries.retain(|&(_, entry_id)| entry_id != id);
            }
            let target = graph.handle_at(idx).expect("sampled members are alive");
            self.sched
                .schedule_at(now + downtime, Ev::Restart { target, id });
        }
    }

    /// Brings a crashed node back up — unless churn killed it first, in
    /// which case the restart is void and the node is forgotten.
    fn restart(&mut self, graph: &DynamicGraph, target: DenseHandle, id: NodeId, now: f64) {
        if !graph.is_current(target) {
            self.faults.forget(id.raw());
            return;
        }
        if self.faults.mark_up(id.raw(), now) {
            self.sched.record(TRACE_RESTART, id.raw());
        }
    }

    /// One pull round: every uninformed alive node asks one uniformly
    /// random peer for the rumor. A pull succeeds when the partner is
    /// informed, up, and on the same side of every active partition; the
    /// response pays the link faults and a latency draw like any message.
    fn anti_entropy(&mut self, graph: &DynamicGraph, now: f64) {
        for &idx in graph.member_indices() {
            let id = graph.id_at(idx).expect("members are alive");
            if self.informed.contains(&id.raw()) || self.faults.is_down(id.raw()) {
                continue;
            }
            let Some(partner_idx) = graph.sample_member(self.faults.rng()) else {
                continue;
            };
            if partner_idx == idx {
                continue; // self-pull finds nothing new
            }
            let partner = graph.id_at(partner_idx).expect("members are alive");
            if !self.informed.contains(&partner.raw())
                || self.faults.is_down(partner.raw())
                || self.faults.blocked(now, partner.raw(), id.raw())
            {
                continue;
            }
            let copies = self.faults.copies(partner.raw(), id.raw());
            if copies == 0 {
                self.stats.messages_fault_lost += 1;
                continue;
            }
            self.stats.anti_entropy_pulls += 1;
            self.sched.record(TRACE_PULL, id.raw());
            if copies == 2 {
                self.stats.messages_duplicated += 1;
            }
            let target = graph.handle_at(idx).expect("members are alive");
            for _ in 0..copies {
                let held = self.faults.reorder_delay();
                if held > 0.0 {
                    self.stats.messages_reordered += 1;
                }
                let arrival = now + self.latency.sample(&mut self.rng) + held;
                self.sched.schedule_at(
                    arrival,
                    Ev::Deliver {
                        target,
                        id,
                        from: partner.raw(),
                        departs: now,
                        hop: self.emergent_rounds + 1,
                    },
                );
            }
        }
    }

    /// Records the per-block informed fractions at the first churn tick at
    /// or past each partition's heal instant — the state anti-entropy has
    /// to recover from.
    fn heal_census(&mut self, graph: &DynamicGraph, now: f64) {
        if self.faults.plan().partitions.is_empty() {
            return;
        }
        let windows = &self.faults.plan().partitions;
        for (w_idx, window) in windows.iter().enumerate() {
            if window.heal <= self.last_tick || window.heal > now {
                continue;
            }
            let blocks = window.blocks as usize;
            let mut informed = vec![0usize; blocks];
            let mut alive = vec![0usize; blocks];
            for &idx in graph.member_indices() {
                let id = graph.id_at(idx).expect("members are alive");
                let block = self.faults.plan().block_of(w_idx, id.raw()) as usize;
                alive[block] += 1;
                if self.informed.contains(&id.raw()) {
                    informed[block] += 1;
                }
            }
            self.stats.heal_block_informed = informed
                .iter()
                .zip(&alive)
                .map(|(&inf, &pop)| inf as f64 / pop.max(1) as f64)
                .collect();
            self.stats.heal_time = Some(window.heal);
        }
    }

    fn into_record(mut self, alive: usize) -> AsyncFloodingRecord {
        self.stats.events_processed = self.sched.processed();
        self.stats.peak_backlog = self.egress.peak_backlog() as u64;
        self.stats.sim_time = self.sched.now();
        self.stats.crashes = self.faults.crashes();
        self.stats.restarts = self.faults.restarts();
        if let (Some(done), Some(heal)) = (self.completion_time, self.stats.heal_time) {
            if done >= heal {
                self.stats.time_to_reheal = Some(done - heal);
            }
        }
        let mut informed_ids: Vec<NodeId> = self.entries.iter().map(|&(_, id)| id).collect();
        informed_ids.sort_unstable();
        AsyncFloodingRecord {
            informed: self.entries.len(),
            alive,
            complete: !self.entries.is_empty() && self.entries.len() == alive,
            completion_time: self.completion_time,
            emergent_rounds: self.emergent_rounds,
            trace: self.sched.take_trace(),
            bins: self.sched.take_bins(),
            stats: self.stats,
            informed_ids,
        }
    }
}

/// Runs asynchronous flooding over a dynamic network.
///
/// The network should be warm ([`DynamicNetwork::warm_up`]); the rumor
/// starts at `source` at time 0. With churn enabled the model advances one
/// unit per unit of simulated time through its own driver hooks. The run
/// ends when the event queue drains or the horizon passes.
///
/// Deterministic given `(net state, cfg, seed)`: the latency RNG is an
/// independent substream of `seed`, and the event order is total.
///
/// # Panics
///
/// Panics if the config is invalid or the source is not alive.
pub fn run_async_flooding<N: DynamicNetwork>(
    net: &mut N,
    source: AsyncSource,
    cfg: &AsyncFloodingConfig,
    seed: u64,
) -> AsyncFloodingRecord {
    run_async_flooding_faulty(net, source, cfg, &FaultPlan::none(), seed)
}

/// Runs asynchronous flooding over a dynamic network under a fault plan.
///
/// Identical to [`run_async_flooding`] plus the fault layer: link faults
/// and partitions gate each delivery, crashes are injected at churn ticks
/// (a crashed node loses queued egress and rumor state, keeps its identity,
/// and restarts after a drawn downtime), and — when the plan enables it —
/// periodic anti-entropy pull rounds let the flood complete after a
/// partition heals. All fault randomness lives on a dedicated substream of
/// `seed`, so an empty plan is RNG-stream-identical to the plain engine.
///
/// # Panics
///
/// Panics if the config or the plan is invalid, or the source is not alive.
pub fn run_async_flooding_faulty<N: DynamicNetwork>(
    net: &mut N,
    source: AsyncSource,
    cfg: &AsyncFloodingConfig,
    plan: &FaultPlan,
    seed: u64,
) -> AsyncFloodingRecord {
    cfg.validate().expect("invalid async flooding config");
    plan.validate().expect("invalid fault plan");
    let source_id = match source {
        AsyncSource::Node(id) => id,
        AsyncSource::Newest => net.newest_node().expect("network has a newest node"),
    };
    let mut engine = Engine::new(cfg, plan, seed, net.alive_count() as f64);
    let source_idx = net
        .graph()
        .dense_index_of(source_id)
        .expect("flooding source is alive");
    engine.sched.record(TRACE_INFORMED, source_id.raw());
    engine.inform(net.graph(), source_idx, 0, 0.0);
    engine.note_completion(net.alive_count(), 0.0);
    if cfg.churn && cfg.horizon >= 0.5 {
        engine.sched.schedule_at(0.5, Ev::ChurnTick);
    }
    if let Some(interval) = plan.anti_entropy {
        if interval <= cfg.horizon {
            engine.sched.schedule_at(interval, Ev::AntiEntropy);
        }
    }
    let event_loop = tracing::span("event-loop");
    while let Some(time) = engine.sched.peek_time() {
        if time > cfg.horizon {
            break;
        }
        let (now, event) = engine.sched.pop().expect("peeked event exists");
        match event {
            Ev::Deliver {
                target,
                id,
                from,
                departs,
                hop,
            } => {
                if engine.deliver(net.graph(), target, id, from, departs, hop, now) {
                    engine.note_completion(net.alive_count(), now);
                }
            }
            Ev::ChurnTick => {
                net.advance_time_unit();
                engine.revalidate(net.graph());
                engine.sched.record(TRACE_CHURN, net.alive_count() as u64);
                engine.heal_census(net.graph(), now);
                engine.crash_sweep(net.graph(), now);
                engine.note_completion(net.alive_count(), now);
                engine.last_tick = now;
                if now + 1.0 <= cfg.horizon {
                    engine.sched.schedule_at(now + 1.0, Ev::ChurnTick);
                }
            }
            Ev::Restart { target, id } => {
                engine.restart(net.graph(), target, id, now);
            }
            Ev::AntiEntropy => {
                if engine.completion_time.is_none() {
                    engine.anti_entropy(net.graph(), now);
                    let interval = plan
                        .anti_entropy
                        .expect("anti-entropy event implies interval");
                    if now + interval <= cfg.horizon {
                        engine.sched.schedule_at(now + interval, Ev::AntiEntropy);
                    }
                }
            }
        }
    }
    drop(event_loop);
    let alive = net.alive_count();
    engine.into_record(alive)
}

/// Runs asynchronous flooding over a static graph (no churn regardless of
/// [`AsyncFloodingConfig::churn`]). This is the harness of the
/// sync-equivalence contract: in the zero-latency / infinite-bandwidth
/// limit the informed set equals the synchronous (BFS) set and the emergent
/// rounds equal the synchronous flooding time.
///
/// # Panics
///
/// Panics if the config is invalid or `source` is not in the graph.
pub fn run_async_flooding_static(
    graph: &DynamicGraph,
    source: NodeId,
    cfg: &AsyncFloodingConfig,
    seed: u64,
) -> AsyncFloodingRecord {
    run_async_flooding_static_faulty(graph, source, cfg, &FaultPlan::none(), seed)
}

/// Runs asynchronous flooding over a static graph under a fault plan.
///
/// Link faults, partitions and anti-entropy apply as in
/// [`run_async_flooding_faulty`]; crash–restart is driven by churn ticks
/// and therefore inert on static runs.
///
/// # Panics
///
/// Panics if the config or the plan is invalid, or `source` is not in the
/// graph.
pub fn run_async_flooding_static_faulty(
    graph: &DynamicGraph,
    source: NodeId,
    cfg: &AsyncFloodingConfig,
    plan: &FaultPlan,
    seed: u64,
) -> AsyncFloodingRecord {
    cfg.validate().expect("invalid async flooding config");
    plan.validate().expect("invalid fault plan");
    let mut engine = Engine::new(cfg, plan, seed, graph.len() as f64);
    let source_idx = graph
        .dense_index_of(source)
        .expect("flooding source is in the graph");
    engine.sched.record(TRACE_INFORMED, source.raw());
    engine.inform(graph, source_idx, 0, 0.0);
    engine.note_completion(graph.len(), 0.0);
    if let Some(interval) = plan.anti_entropy {
        if interval <= cfg.horizon {
            engine.sched.schedule_at(interval, Ev::AntiEntropy);
        }
    }
    let event_loop = tracing::span("event-loop");
    while let Some(time) = engine.sched.peek_time() {
        if time > cfg.horizon {
            break;
        }
        let (now, event) = engine.sched.pop().expect("peeked event exists");
        match event {
            Ev::Deliver {
                target,
                id,
                from,
                departs,
                hop,
            } => {
                if engine.deliver(graph, target, id, from, departs, hop, now) {
                    engine.note_completion(graph.len(), now);
                }
            }
            Ev::ChurnTick => unreachable!("static runs schedule no churn ticks"),
            Ev::Restart { .. } => unreachable!("static runs inject no crashes"),
            Ev::AntiEntropy => {
                if engine.completion_time.is_none() {
                    engine.anti_entropy(graph, now);
                    let interval = plan
                        .anti_entropy
                        .expect("anti-entropy event implies interval");
                    if now + interval <= cfg.horizon {
                        engine.sched.schedule_at(now + interval, Ev::AntiEntropy);
                    }
                }
            }
        }
    }
    drop(event_loop);
    engine.into_record(graph.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_graph::generators::d_out_random_graph;
    use churn_stochastic::rng::seeded_rng;

    #[test]
    fn zero_latency_static_run_informs_the_whole_graph_at_time_zero() {
        let mut rng = seeded_rng(3);
        let graph = d_out_random_graph(64, 3, &mut rng);
        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(0.0),
            bandwidth: BandwidthModel::unlimited(),
            horizon: 16.0,
            churn: false,
            trace: TraceMode::Off,
        };
        let record = run_async_flooding_static(&graph, NodeId::new(0), &cfg, 7);
        assert_eq!(record.stats.sim_time, 0.0);
        assert!(record.informed >= 1);
        assert_eq!(record.completion_time.is_some(), record.complete);
        assert_eq!(
            record.stats.messages_delivered + record.stats.messages_lost,
            record.stats.messages_sent
        );
        assert_eq!(record.stats.messages_lost, 0);
    }

    #[test]
    fn unit_latency_emergent_rounds_match_hop_depth() {
        // A directed path 0 → 1 → 2 → 3 (1-out graph built by hand).
        let mut graph = DynamicGraph::with_capacity(4);
        for i in 0..4u64 {
            graph.add_node(NodeId::new(i), 1).unwrap();
        }
        for i in 0..3u64 {
            graph
                .set_out_slot(NodeId::new(i), 0, NodeId::new(i + 1))
                .unwrap();
        }
        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(1.0),
            bandwidth: BandwidthModel::unlimited(),
            horizon: 64.0,
            churn: false,
            trace: TraceMode::Off,
        };
        let record = run_async_flooding_static(&graph, NodeId::new(0), &cfg, 1);
        assert!(record.complete);
        assert_eq!(record.emergent_rounds, 3);
        assert_eq!(record.completion_time, Some(3.0));
    }

    #[test]
    fn full_loss_informs_only_the_source() {
        let mut rng = seeded_rng(5);
        let graph = d_out_random_graph(64, 3, &mut rng);
        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(0.5),
            bandwidth: BandwidthModel::unlimited(),
            horizon: 32.0,
            churn: false,
            trace: TraceMode::Off,
        };
        let mut plan = FaultPlan::none();
        plan.loss = crate::faults::LossModel::Iid { p: 1.0 };
        let record = run_async_flooding_static_faulty(&graph, NodeId::new(0), &cfg, &plan, 7);
        assert_eq!(record.informed, 1, "every copy dies on the wire");
        assert_eq!(record.stats.messages_fault_lost, record.stats.messages_sent);
        assert_eq!(record.stats.messages_delivered, 0);
        // The 100%-loss regime is exactly the empty-sample percentile case.
        assert!(record.stats.p99_queue_delay().is_finite());
    }

    #[test]
    fn duplication_doubles_copies_but_informs_the_same_set() {
        let mut rng = seeded_rng(6);
        let graph = d_out_random_graph(64, 3, &mut rng);
        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(0.5),
            bandwidth: BandwidthModel::unlimited(),
            horizon: 64.0,
            churn: false,
            trace: TraceMode::Off,
        };
        let baseline = run_async_flooding_static(&graph, NodeId::new(0), &cfg, 7);
        let mut plan = FaultPlan::none();
        plan.duplicate_p = 1.0;
        let doubled = run_async_flooding_static_faulty(&graph, NodeId::new(0), &cfg, &plan, 7);
        assert_eq!(
            doubled.stats.messages_duplicated,
            doubled.stats.messages_sent
        );
        assert_eq!(
            doubled.informed_ids(),
            baseline.informed_ids(),
            "delivery is idempotent: duplicates change load, not coverage"
        );
    }

    #[test]
    fn partition_stalls_flood_until_anti_entropy_after_heal() {
        let mut rng = seeded_rng(9);
        let graph = d_out_random_graph(64, 4, &mut rng);
        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(0.25),
            bandwidth: BandwidthModel::unlimited(),
            horizon: 128.0,
            churn: false,
            trace: TraceMode::Off,
        };
        // Partition from the start; heal at t = 8; pull every unit.
        let mut plan = FaultPlan::none();
        plan.partitions.push(crate::faults::PartitionWindow {
            start: 0.0,
            heal: 8.0,
            blocks: 2,
        });
        plan.anti_entropy = Some(1.0);
        let record = run_async_flooding_static_faulty(&graph, NodeId::new(0), &cfg, &plan, 7);
        assert!(record.complete, "anti-entropy completes the flood");
        let done = record.completion_time.expect("complete run has a time");
        assert!(
            done >= 8.0,
            "the minority block cannot be informed before the heal (done at {done})"
        );
        assert!(record.stats.anti_entropy_pulls > 0);
        assert!(
            record.stats.messages_blocked > 0,
            "the push phase hit the wall"
        );
    }

    #[test]
    fn finite_bandwidth_serializes_a_stars_broadcast() {
        // A 4-leaf star: the hub owns all out-slots, service rate 1 msg/unit.
        let mut graph = DynamicGraph::with_capacity(5);
        graph.add_node(NodeId::new(0), 4).unwrap();
        for i in 1..=4u64 {
            graph.add_node(NodeId::new(i), 0).unwrap();
            graph
                .set_out_slot(NodeId::new(0), (i - 1) as usize, NodeId::new(i))
                .unwrap();
        }
        let cfg = AsyncFloodingConfig {
            latency: LatencyModel::Fixed(0.25),
            bandwidth: BandwidthModel::delaying(1.0),
            horizon: 64.0,
            churn: false,
            trace: TraceMode::Off,
        };
        let record = run_async_flooding_static(&graph, NodeId::new(0), &cfg, 1);
        assert!(record.complete);
        // Four sends at one per unit: departures 1..4, each +0.25 latency.
        assert_eq!(record.completion_time, Some(4.25));
        assert_eq!(record.stats.peak_backlog, 4);
        assert!(record.stats.mean_queue_delay() > 1.0);
        assert_eq!(record.stats.p99_queue_delay(), 4.0);
    }
}
