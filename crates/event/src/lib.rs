//! # churn-event
//!
//! A deterministic discrete-event simulation core for the churn-network
//! reproduction — the asynchronous counterpart of the synchronous round
//! driver in `churn-core`.
//!
//! The synchronous engines impose a global round tick: every node acts once
//! per round, messages arrive "next round". This crate removes the tick.
//! Messages are *events* with individual delivery times drawn from a latency
//! model, senders push them through finite-bandwidth egress queues, and
//! protocol progress (flooding coverage, RAES repair) *emerges* from the
//! event order instead of being imposed by it. This is the asynchronous /
//! dynamic-graph spreading regime of Clementi–Silvestri–Trevisan that the
//! round driver cannot express.
//!
//! ## Event order and determinism
//!
//! All events live in one [`churn_stochastic::EventQueue`]: a calendar
//! queue keyed by `f64` timestamp with a monotone sequence number as
//! tie-break. The ordering is therefore *total* — two events never compare
//! equal, and simultaneous events pop in the order they were scheduled.
//! Every run is a pure function of its configuration and seed: same seed ⇒
//! identical event trace, identical statistics, identical final state, at
//! any queue capacity and on any machine. The [`Scheduler`] wrapper adds
//! the processed-event counter and an optional trace capture
//! ([`TraceMode`]: full buffering for the determinism suite, streaming
//! per-time-unit bins for the series pipeline) the determinism suite pins
//! this contract with.
//!
//! ## Module map
//!
//! * [`latency`] — pluggable per-message delay distributions
//!   ([`LatencyModel`]: fixed, uniform, exponential, log-normal — the latter
//!   two via `churn-stochastic`).
//! * [`bandwidth`] — per-node FIFO egress queues with a service rate, a
//!   capacity and a drop-or-delay overflow policy ([`BandwidthModel`],
//!   [`EgressQueues`]).
//! * [`stats`] — deterministic load counters ([`EventStats`]): events
//!   processed, messages sent/delivered/dropped/lost, peak backlog, mean and
//!   p99 queue delay in *simulated* time. (Wall-clock throughput is
//!   measured by the caller — it is machine-dependent and must stay out of
//!   the deterministic record.)
//! * [`faults`] — seeded, deterministic fault injection ([`FaultPlan`],
//!   [`FaultState`]): per-link loss (i.i.d. or Gilbert–Elliott bursts),
//!   duplication, bounded reordering, scheduled partitions enforced at
//!   delivery time, and node crash–restart — all on a dedicated RNG
//!   substream, so an empty plan is stream-identical to no fault layer.
//! * [`flooding`] — asynchronous flooding: a node forwards when a message
//!   *arrives*; works over any [`churn_core::DynamicNetwork`] (churn ticks
//!   plug in through the model's own driver hooks) or over a static
//!   [`churn_graph::DynamicGraph`].
//! * [`raes`] — asynchronous RAES repair: repair requests and accepts are
//!   messages that share the egress queues with flood traffic, so the run
//!   answers "does repair keep up under load?".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod faults;
pub mod flooding;
pub mod latency;
pub mod raes;
pub mod sched;
pub mod stats;
pub mod trace;

pub use bandwidth::{BandwidthModel, EgressQueues, Enqueue, OverflowPolicy};
pub use faults::{CrashRestart, FaultPlan, FaultState, LossModel, PartitionWindow};
pub use flooding::{
    run_async_flooding, run_async_flooding_faulty, run_async_flooding_static,
    run_async_flooding_static_faulty, AsyncFloodingConfig, AsyncFloodingRecord, AsyncSource,
};
pub use latency::LatencyModel;
pub use raes::{
    run_async_raes, run_async_raes_faulty, AsyncRaesConfig, AsyncRaesRecord, FloodSummary,
};
pub use sched::{Scheduler, TraceEvent};
pub use stats::EventStats;
pub use trace::{TraceBins, TraceMode};
