//! Per-message delivery-delay models.

use churn_stochastic::{Exponential, LogNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pluggable distribution of per-message network latency.
///
/// Every message sampled through the same model draws independently; the
/// draw order is fixed by the total event order, so latency sampling never
/// breaks run determinism. All variants produce finite, non-negative delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long. `Fixed(0.0)` is the
    /// zero-latency limit the sync-equivalence tests use.
    Fixed(f64),
    /// Uniform on `[low, high)`.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (exclusive; must be ≥ `low`).
        high: f64,
    },
    /// Exponential with the given mean (memoryless links).
    Exponential {
        /// Mean delay `1/λ`.
        mean: f64,
    },
    /// Log-normal with the given median and log-scale shape σ (heavy-tailed
    /// wide-area links: a few messages take much longer than the median).
    LogNormal {
        /// Median delay `exp(μ)`.
        median: f64,
        /// Log-scale shape σ.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Checks the parameters: all must be finite, delays non-negative,
    /// `high ≥ low`, `mean > 0`, `median > 0`, `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let ok = match *self {
            LatencyModel::Fixed(delay) => delay.is_finite() && delay >= 0.0,
            LatencyModel::Uniform { low, high } => {
                low.is_finite() && high.is_finite() && low >= 0.0 && high >= low
            }
            LatencyModel::Exponential { mean } => mean.is_finite() && mean > 0.0,
            LatencyModel::LogNormal { median, sigma } => {
                median.is_finite() && median > 0.0 && sigma.is_finite() && sigma > 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(format!("invalid latency model {self:?}"))
        }
    }

    /// The mean delay of the model (exact, not sampled).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(delay) => delay,
            LatencyModel::Uniform { low, high } => 0.5 * (low + high),
            LatencyModel::Exponential { mean } => mean,
            LatencyModel::LogNormal { median, sigma } => median * (0.5 * sigma * sigma).exp(),
        }
    }

    /// Draws one delay. Constant models consume no randomness, so swapping
    /// `Fixed` in or out never perturbs the other streams of a run.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyModel::Fixed(delay) => delay,
            LatencyModel::Uniform { low, high } => {
                if high == low {
                    low
                } else {
                    low + (high - low) * rng.gen::<f64>()
                }
            }
            LatencyModel::Exponential { mean } => Exponential::new(1.0 / mean)
                .expect("validated: mean is finite and positive")
                .sample(rng),
            LatencyModel::LogNormal { median, sigma } => LogNormal::new(median.ln(), sigma)
                .expect("validated: median and sigma are finite and positive")
                .sample(rng),
        }
    }

    /// Short label for bench ids and report headers (`fixed0`, `uni0.5-2`,
    /// `exp1`, `logn1s0.5`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            LatencyModel::Fixed(delay) => format!("fixed{delay}"),
            LatencyModel::Uniform { low, high } => format!("uni{low}-{high}"),
            LatencyModel::Exponential { mean } => format!("exp{mean}"),
            LatencyModel::LogNormal { median, sigma } => format!("logn{median}s{sigma}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churn_stochastic::rng::seeded_rng;
    use churn_stochastic::OnlineStats;

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(LatencyModel::Fixed(-1.0).validate().is_err());
        assert!(LatencyModel::Fixed(f64::NAN).validate().is_err());
        assert!(LatencyModel::Uniform {
            low: 2.0,
            high: 1.0
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Exponential { mean: 0.0 }.validate().is_err());
        assert!(LatencyModel::LogNormal {
            median: 1.0,
            sigma: 0.0
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Fixed(0.0).validate().is_ok());
    }

    #[test]
    fn samples_match_the_declared_mean() {
        let mut rng = seeded_rng(42);
        for model in [
            LatencyModel::Fixed(0.75),
            LatencyModel::Uniform {
                low: 0.5,
                high: 2.5,
            },
            LatencyModel::Exponential { mean: 1.5 },
            LatencyModel::LogNormal {
                median: 1.0,
                sigma: 0.5,
            },
        ] {
            model.validate().unwrap();
            let mut stats = OnlineStats::new();
            for _ in 0..50_000 {
                let x = model.sample(&mut rng);
                assert!(x.is_finite() && x >= 0.0);
                stats.push(x);
            }
            let err = (stats.mean() - model.mean()).abs() / model.mean();
            assert!(err < 0.03, "{model:?}: mean off by {err}");
        }
    }

    #[test]
    fn fixed_consumes_no_randomness() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        let _ = LatencyModel::Fixed(1.0).sample(&mut a);
        assert_eq!(a, b);
        let _: f64 = rand::Rng::gen(&mut b);
        assert_ne!(a, b);
    }
}
