//! Asynchronous RAES repair: requests and accepts are messages.
//!
//! The synchronous RAES protocol (`churn-protocol`) repairs dangling
//! out-slots inside the round that churned them: request, capacity check and
//! accept all happen in one atomic step. Here the same repair loop is pulled
//! apart into *messages* — a dangling slot's owner sends a `Request` to a
//! uniformly sampled target, the target answers with an accept or a reject,
//! and both legs pay the sender's egress queue plus a latency draw. Repair
//! traffic shares the egress queues with flood traffic, so a run directly
//! answers the ROADMAP question "does RAES repair keep up under load?".
//!
//! Protocol details (all deterministic given the seed):
//!
//! * **Churn** is a streaming event stream: one death (oldest node first) and
//!   one birth per unit of simulated time, driven through the shared
//!   [`churn_core::driver::streaming_round`] hook — the same driver the
//!   synchronous models use. A newborn's `d` connect requests are ordinary
//!   repairs.
//! * **Capacity**: a target accepts while `in-degree + in-flight accepts`
//!   stays below `⌊c·d⌋`; in-flight accepts are counted through a
//!   reservation ledger so the cap holds even with accepts on the wire.
//! * **Losses**: a request that reaches a dead target (a *phantom*) is
//!   simply lost; the owner retransmits when [`AsyncRaesConfig::
//!   retry_timeout`] passes without a reply (checked at churn ticks).
//!   Rejects retry immediately with a fresh target.
//! * **Repair time** is measured from the instant a slot dangled (its
//!   owner's churn event) to the accept's arrival — queueing behind flood
//!   traffic shows up here.

use std::collections::VecDeque;
use std::mem;

use churn_core::driver::{streaming_round, ChurnHost};
use churn_core::flooding::TAG_NO_FORWARD;
use churn_core::ChurnSummary;
use churn_graph::hashing::{IdHashMap, IdHashSet};
use churn_graph::{DenseHandle, DynamicGraph, NodeId, RemovedNode};
use churn_stochastic::rng::{seeded_rng, SimRng};

use crate::bandwidth::{BandwidthModel, EgressQueues, Enqueue};
use crate::faults::{FaultPlan, FaultState};
use crate::latency::LatencyModel;
use crate::sched::{Scheduler, TraceEvent};
use crate::stats::{percentile, EventStats};
use crate::trace::{TraceBins, TraceMode};

/// Trace kind: a churn tick completed (`subject` = alive count after it).
pub const TRACE_CHURN: u16 = 10;
/// Trace kind: a connect request was delivered.
pub const TRACE_REQUEST: u16 = 11;
/// Trace kind: a connect reply was delivered (`subject` = 1 accept, 0 reject).
pub const TRACE_REPLY: u16 = 12;
/// Trace kind: a node finished repairing its out-neighbourhood.
pub const TRACE_REPAIRED: u16 = 13;
/// Trace kind: the piggybacked flood started (`subject` = source id).
pub const TRACE_FLOOD: u16 = 14;
/// Trace kind: a node crashed (`subject` = node id).
pub const TRACE_CRASH: u16 = 15;
/// Trace kind: a crashed node restarted (`subject` = node id).
pub const TRACE_RESTART: u16 = 16;
/// Trace kind: a node shed a retry after exhausting its budget.
pub const TRACE_SHED: u16 = 17;

/// Configuration of one asynchronous RAES run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncRaesConfig {
    /// Stationary network size (one death + one birth per unit time).
    pub n: usize,
    /// Out-degree (requests per node).
    pub d: usize,
    /// In-degree cap factor `c` (cap = `⌊c·d⌋`).
    pub capacity_factor: f64,
    /// Per-message latency model.
    pub latency: LatencyModel,
    /// Per-node bandwidth model (shared by repair and flood traffic).
    pub bandwidth: BandwidthModel,
    /// Simulated-time horizon (also the number of churn rounds).
    pub horizon: f64,
    /// Inject a flood from the newest alive node at this instant, creating
    /// the load the repair traffic has to live with.
    pub flood_at: Option<f64>,
    /// Retransmit a repair request when no reply arrived within this time
    /// (checked at churn ticks).
    pub retry_timeout: f64,
    /// Exponential-backoff factor: the `k`-th retransmission waits
    /// `retry_timeout · backoff_factor^k`. The default `1.0` reproduces the
    /// constant-timeout policy bit-exactly.
    pub backoff_factor: f64,
    /// Jitter fraction on each backoff timeout (`0.0` = none, drawn
    /// uniformly in `±jitter·timeout` when positive; a zero jitter draws no
    /// randomness).
    pub backoff_jitter: f64,
    /// Maximum retransmissions per dangling slot before the repair is shed
    /// (graceful degradation — counted in
    /// [`EventStats::retries_exhausted`], never wedging the run). The
    /// default `u32::MAX` never sheds.
    pub retry_budget: u32,
    /// Trace capture mode: off in production runs, [`TraceMode::Full`] for
    /// the determinism suite, [`TraceMode::Bins`] for the streaming series
    /// pipeline.
    pub trace: TraceMode,
}

impl AsyncRaesConfig {
    /// A config with the given grid point and models: cap factor 2, horizon
    /// `4·n` rounds of churn, a flood injected at `n/4`, retry timeout 8
    /// units, tracing off.
    #[must_use]
    pub fn new(n: usize, d: usize, latency: LatencyModel, bandwidth: BandwidthModel) -> Self {
        AsyncRaesConfig {
            n,
            d,
            capacity_factor: 2.0,
            latency,
            bandwidth,
            horizon: (4 * n) as f64,
            flood_at: Some((n / 4) as f64),
            retry_timeout: 8.0,
            backoff_factor: 1.0,
            backoff_jitter: 0.0,
            retry_budget: u32::MAX,
            trace: TraceMode::Off,
        }
    }

    /// The in-degree cap `⌊c·d⌋`.
    #[must_use]
    pub fn in_degree_cap(&self) -> usize {
        (self.capacity_factor * self.d as f64).floor() as usize
    }

    /// Checks all parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 || self.d == 0 {
            return Err(format!(
                "need n >= 2 and d >= 1, got n={} d={}",
                self.n, self.d
            ));
        }
        if self.in_degree_cap() < 1 {
            return Err(format!(
                "capacity factor {} gives a zero in-degree cap",
                self.capacity_factor
            ));
        }
        self.latency.validate()?;
        self.bandwidth.validate()?;
        if !self.horizon.is_finite() || self.horizon < 0.0 {
            return Err(format!("invalid horizon {}", self.horizon));
        }
        if !(self.retry_timeout > 0.0 && self.retry_timeout.is_finite()) {
            return Err(format!("invalid retry timeout {}", self.retry_timeout));
        }
        if !(self.backoff_factor >= 1.0 && self.backoff_factor.is_finite()) {
            return Err(format!("invalid backoff factor {}", self.backoff_factor));
        }
        if !((0.0..1.0).contains(&self.backoff_jitter)) {
            return Err(format!("invalid backoff jitter {}", self.backoff_jitter));
        }
        if self.retry_budget == 0 {
            return Err("retry budget must be at least 1".to_string());
        }
        if let Some(at) = self.flood_at {
            if !at.is_finite() || at < 0.0 {
                return Err(format!("invalid flood injection time {at}"));
            }
        }
        Ok(())
    }
}

/// Final state of the piggybacked flood (when one was injected).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodSummary {
    /// Alive informed nodes at the end.
    pub informed: usize,
    /// Whether every alive node was informed at the end.
    pub complete: bool,
    /// First instant every alive node was informed.
    pub completion_time: Option<f64>,
    /// Deepest hop at which a delivery informed a new node.
    pub emergent_rounds: u32,
}

/// Result of one asynchronous RAES run.
#[derive(Debug, Clone)]
pub struct AsyncRaesRecord {
    /// Deterministic load counters (repair and flood traffic combined).
    pub stats: EventStats,
    /// Repairs completed (edges restored, including newborn wiring).
    pub repairs_completed: u64,
    /// Repair request messages sent (including retries).
    pub repair_requests: u64,
    /// Requests refused at a full target.
    pub rejections: u64,
    /// Requests that reached a dead target.
    pub phantoms: u64,
    /// Mean time from slot dangling to edge restored.
    pub mean_repair_time: f64,
    /// 99th-percentile repair time.
    pub p99_repair_time: f64,
    /// Dangling out-slots per alive out-slot at the end.
    pub dangling_fraction: f64,
    /// Largest in-degree observed.
    pub max_in_degree: usize,
    /// The in-degree cap `⌊c·d⌋`.
    pub in_degree_cap: usize,
    /// Alive nodes at the end (always `n` under streaming churn).
    pub alive: usize,
    /// Flood outcome (when a flood was injected).
    pub flood: Option<FloodSummary>,
    /// Recorded event trace (empty unless [`TraceMode::Full`]).
    pub trace: Vec<TraceEvent>,
    /// Streaming per-time-unit bins (`None` unless [`TraceMode::Bins`]).
    pub bins: Option<TraceBins>,
}

/// One scheduled event. `departs` on the message events carries the
/// departure instant for the fault layer's crashed-sender check.
enum Ev {
    /// One streaming churn round (death + birth) plus the retry sweep.
    ChurnTick,
    /// A repair request arrives at `target`.
    Request {
        owner: DenseHandle,
        owner_id: NodeId,
        slot: u32,
        target: DenseHandle,
        target_id: NodeId,
        departs: f64,
    },
    /// The target's answer arrives back at `owner`.
    Reply {
        owner: DenseHandle,
        owner_id: NodeId,
        slot: u32,
        target: DenseHandle,
        target_id: NodeId,
        accept: bool,
        departs: f64,
    },
    /// Inject the flood at the newest alive node.
    FloodStart,
    /// A rumor copy arrives at `target`.
    Flood {
        target: DenseHandle,
        id: NodeId,
        from: u64,
        departs: f64,
        hop: u32,
    },
    /// A crashed node comes back up (identity kept, pending repairs lost
    /// at the crash are rediscovered by rescanning its out-slots).
    Restart { target: DenseHandle, id: NodeId },
}

/// A dangling out-slot awaiting repair.
struct PendingSlot {
    owner: DenseHandle,
    owner_id: NodeId,
    slot: u32,
    /// Instant the slot dangled (repair time runs from here).
    since: f64,
    /// Whether a request is on the wire.
    in_flight: bool,
    /// Retransmit when `now` passes this with no reply.
    deadline: f64,
    /// Timeout-driven retransmissions so far (counted against
    /// [`AsyncRaesConfig::retry_budget`]).
    retries: u32,
}

struct Raes<'p> {
    cfg: AsyncRaesConfig,
    cap: usize,
    graph: DynamicGraph,
    rng: SimRng,
    sched: Scheduler<Ev>,
    egress: EgressQueues,
    stats: EventStats,
    faults: FaultState<'p>,
    order: VecDeque<(NodeId, u32)>,
    next_id: u64,
    pending: Vec<PendingSlot>,
    /// Positional index over `pending`, keyed by `owner cell × d + slot`:
    /// `pending_pos[key]` is the entry's current position in `pending`.
    /// Entries are validated on lookup (cell recycling makes keys collide
    /// across generations), so a stale position is harmless — but a valid
    /// hit replaces the linear scan a reply would otherwise pay, which is
    /// what made the initial `n·d` wiring quadratic.
    pending_pos: Vec<u32>,
    /// In-flight accepts per target (raw id), counted against the cap.
    reserved: IdHashMap<u64, u32>,
    removal_scratch: RemovedNode,
    repairs_completed: u64,
    repair_requests: u64,
    rejections: u64,
    phantoms: u64,
    repair_times: Vec<f64>,
    max_in_degree: usize,
    // Flood state.
    informed: IdHashSet<u64>,
    flood_entries: Vec<(DenseHandle, NodeId)>,
    flood_completion: Option<f64>,
    flood_rounds: u32,
    flood_started: bool,
}

impl ChurnHost for Raes<'_> {
    fn spawn(&mut self, time: f64) -> (NodeId, u32) {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let idx = self
            .graph
            .add_node_indexed(id, self.cfg.d)
            .expect("identifiers are never reused");
        let owner = self.graph.handle_at(idx).expect("newborn is alive");
        for slot in 0..self.cfg.d as u32 {
            self.pending_push(PendingSlot {
                owner,
                owner_id: id,
                slot,
                since: time,
                in_flight: false,
                deadline: 0.0,
                retries: 0,
            });
        }
        (id, idx)
    }

    fn kill(&mut self, victim: NodeId, victim_idx: u32, time: f64) {
        self.egress.forget(victim.raw());
        let mut removed = mem::take(&mut self.removal_scratch);
        self.graph
            .remove_node_into(victim_idx, &mut removed)
            .expect("victim is alive");
        for &(owner_idx, slot) in &removed.dangling_dense {
            let owner = self
                .graph
                .handle_at(owner_idx)
                .expect("dangling-slot owners survive the removal");
            let owner_id = self.graph.id_at(owner_idx).expect("owner is alive");
            self.pending_push(PendingSlot {
                owner,
                owner_id,
                slot: slot as u32,
                since: time,
                in_flight: false,
                deadline: 0.0,
                retries: 0,
            });
        }
        self.removal_scratch = removed;
        // Pending entries and reservations the victim owned die lazily:
        // the handle fails `is_current`, the reservation entry goes stale.
        self.reserved.remove(&victim.raw());
        let _ = victim;
    }
}

impl<'p> Raes<'p> {
    fn new(cfg: AsyncRaesConfig, plan: &'p FaultPlan, seed: u64) -> Self {
        let rng = seeded_rng(seed);
        // Start empty and spawn the initial population through the same
        // join path churn uses: every node's d connect requests are capped
        // repairs, so the in-degree cap holds from the very first edge (the
        // raw random-graph generator would not respect it).
        let graph = DynamicGraph::with_capacity(cfg.n + 16);
        let mut sched = Scheduler::new();
        match cfg.trace {
            TraceMode::Off => {}
            TraceMode::Full => sched.enable_trace(),
            TraceMode::Bins => sched.enable_bins(TRACE_CHURN, cfg.n as f64),
        }
        let mut model = Raes {
            cap: cfg.in_degree_cap(),
            graph,
            rng,
            sched,
            egress: EgressQueues::new(cfg.bandwidth),
            stats: EventStats::new(),
            faults: FaultState::new(plan, seed),
            order: VecDeque::with_capacity(cfg.n + 1),
            next_id: 0,
            pending: Vec::new(),
            pending_pos: Vec::new(),
            reserved: IdHashMap::default(),
            removal_scratch: RemovedNode::default(),
            repairs_completed: 0,
            repair_requests: 0,
            rejections: 0,
            phantoms: 0,
            repair_times: Vec::new(),
            max_in_degree: 0,
            informed: IdHashSet::default(),
            flood_entries: Vec::new(),
            flood_completion: None,
            flood_rounds: 0,
            flood_started: false,
            cfg,
        };
        for _ in 0..cfg.n {
            let born = model.spawn(0.0);
            model.order.push_back(born);
        }
        model
    }

    /// `pending_pos` key of an entry: dense cell index × out-degree + slot.
    fn pending_key(&self, owner_index: u32, slot: u32) -> usize {
        owner_index as usize * self.cfg.d + slot as usize
    }

    /// Records that the entry at `pos` is where its key now points.
    fn note_pending_pos(&mut self, pos: usize) {
        let key = self.pending_key(self.pending[pos].owner.index, self.pending[pos].slot);
        if key >= self.pending_pos.len() {
            self.pending_pos.resize(key + 1, u32::MAX);
        }
        self.pending_pos[key] = pos as u32;
    }

    fn pending_push(&mut self, entry: PendingSlot) {
        self.pending.push(entry);
        self.note_pending_pos(self.pending.len() - 1);
    }

    fn pending_swap_remove(&mut self, pos: usize) -> PendingSlot {
        let entry = self.pending.swap_remove(pos);
        if pos < self.pending.len() {
            self.note_pending_pos(pos);
        }
        entry
    }

    /// Re-derives every index entry; call after a `retain` shifted
    /// positions. O(len), which the retain itself already paid.
    fn reindex_pending(&mut self) {
        for pos in 0..self.pending.len() {
            self.note_pending_pos(pos);
        }
    }

    /// Position of the live entry for `(owner, slot)` — exactly what a
    /// linear `position()` scan would find (entries are unique per live
    /// `(owner, slot)`; the handle's generation distinguishes recycled
    /// cells). The indexed probe is validated against the entry and falls
    /// back to the scan when a collision left it stale.
    fn pending_position(&self, owner: DenseHandle, slot: u32) -> Option<usize> {
        let key = self.pending_key(owner.index, slot);
        if let Some(&pos) = self.pending_pos.get(key) {
            if let Some(p) = self.pending.get(pos as usize) {
                if p.owner == owner && p.slot == slot {
                    return Some(pos as usize);
                }
            }
        }
        self.pending
            .iter()
            .position(|p| p.owner == owner && p.slot == slot)
    }

    /// Reserved in-flight accepts pointed at `target_id`.
    fn reserved_for(&self, target_id: u64) -> u32 {
        self.reserved.get(&target_id).copied().unwrap_or(0)
    }

    fn release_reservation(&mut self, target_id: u64) {
        if let Some(count) = self.reserved.get_mut(&target_id) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.reserved.remove(&target_id);
            }
        }
    }

    /// The timeout of the `retries`-th retransmission:
    /// `retry_timeout · backoff_factor^retries`, plus jitter when enabled.
    /// The identity defaults (`factor = 1.0`, `jitter = 0.0`) reproduce the
    /// constant timeout bit-exactly and draw no randomness.
    fn backoff_timeout(&mut self, retries: u32) -> f64 {
        let base = self.cfg.retry_timeout * self.cfg.backoff_factor.powi(retries as i32);
        if self.cfg.backoff_jitter > 0.0 {
            let u: f64 = rand::Rng::gen(&mut self.rng);
            base * (1.0 + self.cfg.backoff_jitter * (2.0 * u - 1.0))
        } else {
            base
        }
    }

    /// Sends (or resends) the request of `pending[i]`, arming its timeout.
    fn send_request(&mut self, i: usize, now: f64) {
        let timeout = self.backoff_timeout(self.pending[i].retries);
        self.send_request_with_timeout(i, now, timeout);
    }

    fn send_request_with_timeout(&mut self, i: usize, now: f64, timeout: f64) {
        let (owner, owner_id, slot) = {
            let p = &self.pending[i];
            (p.owner, p.owner_id, p.slot)
        };
        let Some(target_idx) = self
            .graph
            .sample_member_excluding(&mut self.rng, owner.index)
        else {
            return; // nobody else alive; retry at a later sweep
        };
        let target = self
            .graph
            .handle_at(target_idx)
            .expect("sampled members are alive");
        let target_id = self
            .graph
            .id_at(target_idx)
            .expect("sampled members are alive");
        match self.egress.enqueue(owner_id.raw(), now) {
            Enqueue::Dropped => {
                self.stats.messages_dropped += 1;
                let p = &mut self.pending[i];
                p.in_flight = false;
                p.deadline = now + timeout;
            }
            Enqueue::Sent {
                departs,
                queue_delay,
            } => {
                self.stats.messages_sent += 1;
                self.stats.record_queue_delay(queue_delay);
                self.repair_requests += 1;
                let copies = self.faults.copies(owner_id.raw(), target_id.raw());
                if copies == 0 {
                    self.stats.messages_fault_lost += 1;
                } else {
                    if copies == 2 {
                        self.stats.messages_duplicated += 1;
                    }
                    for _ in 0..copies {
                        let held = self.faults.reorder_delay();
                        if held > 0.0 {
                            self.stats.messages_reordered += 1;
                        }
                        let arrival = departs + self.cfg.latency.sample(&mut self.rng) + held;
                        self.sched.schedule_at(
                            arrival,
                            Ev::Request {
                                owner,
                                owner_id,
                                slot,
                                target,
                                target_id,
                                departs,
                            },
                        );
                    }
                }
                let p = &mut self.pending[i];
                p.in_flight = true;
                p.deadline = now + timeout;
            }
        }
    }

    /// Drops dead owners from the pending list, then (re)sends every slot
    /// with no live request on the wire. Timed-out slots pay their retry
    /// budget: exhausted repairs are shed (counted, removed — the run never
    /// wedges on them), the rest retransmit with exponential backoff. Down
    /// owners wait out their crash.
    fn sweep_pending(&mut self, now: f64) {
        let graph = &self.graph;
        self.pending.retain(|p| graph.is_current(p.owner));
        self.reindex_pending();
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            if self.faults.is_down(p.owner_id.raw()) {
                i += 1;
                continue;
            }
            let timed_out = p.in_flight && now >= p.deadline;
            if timed_out {
                if p.retries >= self.cfg.retry_budget {
                    let shed = self.pending_swap_remove(i);
                    self.stats.retries_exhausted += 1;
                    self.stats.record_repair_retries(shed.retries);
                    self.sched.record(TRACE_SHED, shed.owner_id.raw());
                    continue; // swap_remove moved a new entry into i
                }
                self.pending[i].retries += 1;
                let timeout = self.backoff_timeout(self.pending[i].retries);
                self.stats.record_retransmit(timeout);
                self.send_request_with_timeout(i, now, timeout);
            } else if !p.in_flight {
                self.send_request(i, now);
            }
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_request(
        &mut self,
        now: f64,
        owner: DenseHandle,
        owner_id: NodeId,
        slot: u32,
        target: DenseHandle,
        target_id: NodeId,
        request_departs: f64,
    ) {
        self.sched.record(TRACE_REQUEST, target_id.raw());
        if !self.graph.is_current(target) {
            self.stats.messages_lost += 1;
            self.phantoms += 1;
            return;
        }
        // Fault gates (all no-ops under an empty plan): a request whose
        // departure fell in the owner's down window was still queued at the
        // crash; partitions cut the link; a crashed target cannot answer.
        // The owner's ack-timeout recovers every one of these.
        if self.faults.was_down_at(owner_id.raw(), request_departs) {
            self.stats.messages_crash_voided += 1;
            return;
        }
        if self.faults.blocked(now, owner_id.raw(), target_id.raw()) {
            self.stats.messages_blocked += 1;
            return;
        }
        if self.faults.is_down(target_id.raw()) {
            self.stats.messages_to_down += 1;
            return;
        }
        self.stats.messages_delivered += 1;
        let in_degree = self
            .graph
            .in_request_count_at(target.index)
            .expect("target is alive");
        let accept = in_degree + (self.reserved_for(target_id.raw()) as usize) < self.cap;
        if accept {
            *self.reserved.entry(target_id.raw()).or_insert(0) += 1;
        } else {
            self.rejections += 1;
        }
        match self.egress.enqueue(target_id.raw(), now) {
            Enqueue::Dropped => {
                self.stats.messages_dropped += 1;
                if accept {
                    // The accept never left the NIC; the owner will time out.
                    self.release_reservation(target_id.raw());
                }
            }
            Enqueue::Sent {
                departs,
                queue_delay,
            } => {
                self.stats.messages_sent += 1;
                self.stats.record_queue_delay(queue_delay);
                let copies = self.faults.copies(target_id.raw(), owner_id.raw());
                if copies == 0 {
                    self.stats.messages_fault_lost += 1;
                    if accept {
                        // The accept died on the wire; the owner times out.
                        self.release_reservation(target_id.raw());
                    }
                    return;
                }
                if copies == 2 {
                    self.stats.messages_duplicated += 1;
                }
                for _ in 0..copies {
                    let held = self.faults.reorder_delay();
                    if held > 0.0 {
                        self.stats.messages_reordered += 1;
                    }
                    let arrival = departs + self.cfg.latency.sample(&mut self.rng) + held;
                    self.sched.schedule_at(
                        arrival,
                        Ev::Reply {
                            owner,
                            owner_id,
                            slot,
                            target,
                            target_id,
                            accept,
                            departs,
                        },
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_reply(
        &mut self,
        now: f64,
        owner: DenseHandle,
        owner_id: NodeId,
        slot: u32,
        target: DenseHandle,
        target_id: NodeId,
        accept: bool,
        reply_departs: f64,
    ) {
        self.sched.record(TRACE_REPLY, target_id.raw());
        if accept {
            self.release_reservation(target_id.raw());
        }
        if !self.graph.is_current(owner) {
            self.stats.messages_lost += 1;
            return;
        }
        if self.faults.was_down_at(target_id.raw(), reply_departs) {
            self.stats.messages_crash_voided += 1;
            return;
        }
        if self.faults.blocked(now, target_id.raw(), owner_id.raw()) {
            self.stats.messages_blocked += 1;
            return;
        }
        if self.faults.is_down(owner_id.raw()) {
            self.stats.messages_to_down += 1;
            return;
        }
        self.stats.messages_delivered += 1;
        let Some(i) = self.pending_position(owner, slot) else {
            return; // slot already repaired by a retransmitted request
        };
        if accept && self.graph.is_current(target) {
            self.graph
                .set_out_slot_at(owner.index, slot as usize, target.index)
                .expect("owner and target are alive and the slot exists");
            let since = self.pending[i].since;
            self.stats.record_repair_retries(self.pending[i].retries);
            self.pending_swap_remove(i);
            self.repairs_completed += 1;
            self.repair_times.push(now - since);
            let in_degree = self
                .graph
                .in_request_count_at(target.index)
                .expect("target is alive");
            self.max_in_degree = self.max_in_degree.max(in_degree);
            self.sched.record(TRACE_REPAIRED, target_id.raw());
        } else {
            // Rejected, or the accepted target died in flight: try a fresh
            // target right away.
            self.send_request(i, now);
        }
    }

    /// Marks `idx` informed and forwards the rumor along incident links,
    /// through the shared egress queues.
    fn flood_inform(&mut self, idx: u32, hop: u32, now: f64) {
        let id = self.graph.id_at(idx).expect("informed nodes are alive");
        let handle = self.graph.handle_at(idx).expect("informed nodes are alive");
        self.informed.insert(id.raw());
        self.flood_entries.push((handle, id));
        self.flood_rounds = self.flood_rounds.max(hop);
        if self.graph.tags_enabled() && self.graph.tag_at(idx) & TAG_NO_FORWARD != 0 {
            return;
        }
        let targets: Vec<(DenseHandle, NodeId)> = self
            .graph
            .neighbor_indices_at(idx)
            .map(|t| {
                (
                    self.graph.handle_at(t).expect("neighbors are alive"),
                    self.graph.id_at(t).expect("neighbors are alive"),
                )
            })
            .collect();
        for (target, target_id) in targets {
            match self.egress.enqueue(id.raw(), now) {
                Enqueue::Dropped => self.stats.messages_dropped += 1,
                Enqueue::Sent {
                    departs,
                    queue_delay,
                } => {
                    self.stats.messages_sent += 1;
                    self.stats.record_queue_delay(queue_delay);
                    let copies = self.faults.copies(id.raw(), target_id.raw());
                    if copies == 0 {
                        self.stats.messages_fault_lost += 1;
                        continue;
                    }
                    if copies == 2 {
                        self.stats.messages_duplicated += 1;
                    }
                    for _ in 0..copies {
                        let held = self.faults.reorder_delay();
                        if held > 0.0 {
                            self.stats.messages_reordered += 1;
                        }
                        let arrival = departs + self.cfg.latency.sample(&mut self.rng) + held;
                        self.sched.schedule_at(
                            arrival,
                            Ev::Flood {
                                target,
                                id: target_id,
                                from: id.raw(),
                                departs,
                                hop: hop + 1,
                            },
                        );
                    }
                }
            }
        }
    }

    fn on_flood(
        &mut self,
        now: f64,
        target: DenseHandle,
        id: NodeId,
        from: u64,
        departs: f64,
        hop: u32,
    ) {
        if !self.graph.is_current(target) {
            self.stats.messages_lost += 1;
            return;
        }
        if self.faults.was_down_at(from, departs) {
            self.stats.messages_crash_voided += 1;
            return;
        }
        if self.faults.blocked(now, from, id.raw()) {
            self.stats.messages_blocked += 1;
            return;
        }
        if self.faults.is_down(id.raw()) {
            self.stats.messages_to_down += 1;
            return;
        }
        self.stats.messages_delivered += 1;
        if self.informed.contains(&id.raw()) {
            return;
        }
        self.sched.record(TRACE_FLOOD, id.raw());
        self.flood_inform(target.index, hop, now);
        if self.flood_completion.is_none() && self.flood_entries.len() == self.graph.len() {
            self.flood_completion = Some(now);
        }
    }

    fn on_churn(&mut self, now: f64) {
        let mut order = mem::take(&mut self.order);
        let mut summary = ChurnSummary::new();
        streaming_round(self, &mut order, self.cfg.n, now, &mut summary);
        self.order = order;
        self.sched.record(TRACE_CHURN, self.graph.len() as u64);
        // Flood marks of dead nodes retire with them.
        let graph = &self.graph;
        let informed = &mut self.informed;
        self.flood_entries.retain(|&(handle, id)| {
            let alive = graph.is_current(handle);
            if !alive {
                informed.remove(&id.raw());
            }
            alive
        });
        self.crash_sweep(now);
        self.sweep_pending(now);
        if now + 1.0 <= self.cfg.horizon {
            self.sched.schedule_at(now + 1.0, Ev::ChurnTick);
        }
    }

    /// Injects this tick's crashes: a victim loses its queued egress, its
    /// pending repairs and its flood mark, keeps its identity, and restarts
    /// after a drawn downtime (repairs are rediscovered then).
    fn crash_sweep(&mut self, now: f64) {
        let crashes = self.faults.crash_count(self.graph.len());
        for _ in 0..crashes {
            let Some(idx) = self.graph.sample_member(self.faults.rng()) else {
                break;
            };
            let id = self.graph.id_at(idx).expect("sampled members are alive");
            if self.faults.is_down(id.raw()) {
                continue; // already down — the crash lands on a dead machine
            }
            let downtime = self.faults.downtime();
            self.faults.mark_down(id.raw(), now);
            self.sched.record(TRACE_CRASH, id.raw());
            self.egress.forget(id.raw());
            // In-flight protocol state is lost: pending repairs it owned
            // and in-flight accepts reserved against it.
            self.pending.retain(|p| p.owner_id != id);
            self.reindex_pending();
            self.reserved.remove(&id.raw());
            if self.informed.remove(&id.raw()) {
                self.flood_entries.retain(|&(_, entry_id)| entry_id != id);
            }
            let target = self
                .graph
                .handle_at(idx)
                .expect("sampled members are alive");
            self.sched
                .schedule_at(now + downtime, Ev::Restart { target, id });
        }
    }

    /// Brings a crashed node back up (unless churn killed it first) and
    /// rediscovers its dangling out-slots, re-triggering RAES repair for
    /// the state the crash destroyed.
    fn on_restart(&mut self, now: f64, target: DenseHandle, id: NodeId) {
        if !self.graph.is_current(target) {
            self.faults.forget(id.raw());
            return;
        }
        if !self.faults.mark_up(id.raw(), now) {
            return;
        }
        self.sched.record(TRACE_RESTART, id.raw());
        let dangling: Vec<u32> = self
            .graph
            .out_slot_targets_at(target.index)
            .enumerate()
            .filter_map(|(slot, filled)| filled.is_none().then_some(slot as u32))
            .collect();
        for slot in dangling {
            let already = self
                .pending
                .iter()
                .any(|p| p.owner_id == id && p.slot == slot);
            if !already {
                self.pending_push(PendingSlot {
                    owner: target,
                    owner_id: id,
                    slot,
                    since: now,
                    in_flight: false,
                    deadline: 0.0,
                    retries: 0,
                });
            }
        }
    }

    fn run(mut self) -> AsyncRaesRecord {
        // Send the initial population's connect requests.
        self.sweep_pending(0.0);
        if self.cfg.horizon >= 1.0 {
            self.sched.schedule_at(1.0, Ev::ChurnTick);
        }
        if let Some(at) = self.cfg.flood_at {
            if at <= self.cfg.horizon {
                self.sched.schedule_at(at, Ev::FloodStart);
            }
        }
        let event_loop = tracing::span("event-loop");
        while let Some(time) = self.sched.peek_time() {
            if time > self.cfg.horizon {
                break;
            }
            let (now, event) = self.sched.pop().expect("peeked event exists");
            match event {
                Ev::ChurnTick => self.on_churn(now),
                Ev::Request {
                    owner,
                    owner_id,
                    slot,
                    target,
                    target_id,
                    departs,
                } => self.on_request(now, owner, owner_id, slot, target, target_id, departs),
                Ev::Reply {
                    owner,
                    owner_id,
                    slot,
                    target,
                    target_id,
                    accept,
                    departs,
                } => self.on_reply(
                    now, owner, owner_id, slot, target, target_id, accept, departs,
                ),
                Ev::FloodStart => {
                    self.flood_started = true;
                    let &(source_id, source_idx) =
                        self.order.back().expect("network is never empty");
                    self.sched.record(TRACE_FLOOD, source_id.raw());
                    self.flood_inform(source_idx, 0, now);
                }
                Ev::Flood {
                    target,
                    id,
                    from,
                    departs,
                    hop,
                } => self.on_flood(now, target, id, from, departs, hop),
                Ev::Restart { target, id } => self.on_restart(now, target, id),
            }
        }
        drop(event_loop);
        self.finish()
    }

    fn finish(mut self) -> AsyncRaesRecord {
        self.stats.events_processed = self.sched.processed();
        self.stats.peak_backlog = self.egress.peak_backlog() as u64;
        self.stats.sim_time = self.sched.now();
        self.stats.crashes = self.faults.crashes();
        self.stats.restarts = self.faults.restarts();
        let graph = &self.graph;
        self.pending.retain(|p| graph.is_current(p.owner));
        let alive = self.graph.len();
        let mean_repair_time = if self.repair_times.is_empty() {
            0.0
        } else {
            self.repair_times.iter().sum::<f64>() / self.repair_times.len() as f64
        };
        let flood = self.flood_started.then_some(FloodSummary {
            informed: self.flood_entries.len(),
            complete: !self.flood_entries.is_empty() && self.flood_entries.len() == alive,
            completion_time: self.flood_completion,
            emergent_rounds: self.flood_rounds,
        });
        AsyncRaesRecord {
            repairs_completed: self.repairs_completed,
            repair_requests: self.repair_requests,
            rejections: self.rejections,
            phantoms: self.phantoms,
            mean_repair_time,
            p99_repair_time: percentile(&self.repair_times, 0.99),
            dangling_fraction: self.pending.len() as f64 / (alive * self.cfg.d).max(1) as f64,
            max_in_degree: self.max_in_degree,
            in_degree_cap: self.cap,
            alive,
            flood,
            trace: self.sched.take_trace(),
            bins: self.sched.take_bins(),
            stats: self.stats,
        }
    }
}

/// Runs one asynchronous RAES load experiment. Deterministic given
/// `(cfg, seed)`.
///
/// # Panics
///
/// Panics if the config is invalid.
#[must_use]
pub fn run_async_raes(cfg: &AsyncRaesConfig, seed: u64) -> AsyncRaesRecord {
    run_async_raes_faulty(cfg, &FaultPlan::none(), seed)
}

/// Runs one asynchronous RAES load experiment under a fault plan.
///
/// Identical to [`run_async_raes`] plus the fault layer: link faults and
/// partitions gate both repair legs and the flood; crashes at churn ticks
/// wipe a victim's queued egress, pending repairs and flood mark (identity
/// kept), and its restart rescans the out-slots to re-trigger repair. The
/// retry policy (exponential backoff, jitter, bounded budget) lives on the
/// config; with an exhausted budget the repair is shed and counted, so the
/// run terminates either by completion or by recorded degradation — never
/// by wedging. All fault randomness is a dedicated substream of `seed`, so
/// an empty plan is RNG-stream-identical to the plain engine.
///
/// # Panics
///
/// Panics if the config or the plan is invalid.
#[must_use]
pub fn run_async_raes_faulty(
    cfg: &AsyncRaesConfig,
    plan: &FaultPlan,
    seed: u64,
) -> AsyncRaesRecord {
    cfg.validate().expect("invalid async RAES config");
    plan.validate().expect("invalid fault plan");
    Raes::new(*cfg, plan, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AsyncRaesConfig {
        AsyncRaesConfig {
            horizon: 64.0,
            flood_at: Some(8.0),
            ..AsyncRaesConfig::new(
                48,
                3,
                LatencyModel::Fixed(0.05),
                BandwidthModel::delaying(64.0),
            )
        }
    }

    #[test]
    fn repairs_keep_the_network_wired_under_light_load() {
        let record = run_async_raes(&quick_cfg(), 11);
        assert_eq!(record.alive, 48);
        assert!(record.repairs_completed > 0);
        assert!(
            record.dangling_fraction < 0.2,
            "{}",
            record.dangling_fraction
        );
        assert!(record.max_in_degree <= record.in_degree_cap);
        assert!(record.mean_repair_time > 0.0);
        assert!(record.p99_repair_time >= record.mean_repair_time);
        // The flood completes shortly after injection; by the horizon the
        // informed generation has churned out (async floods forward on
        // arrival only — newborns are never informed), so assert on the
        // completion instant rather than end-of-run survivors.
        let flood = record.flood.expect("flood was injected");
        assert!(flood.completion_time.is_some());
        assert!(flood.emergent_rounds > 0);
    }

    #[test]
    fn lossy_crashy_run_terminates_with_recovery_recorded() {
        use crate::faults::{CrashRestart, LossModel};
        // The acceptance regime: 30% i.i.d. loss plus crash–restart. The
        // run must terminate via completion or recorded shed repairs —
        // never wedge — with backoff/retransmit histograms populated.
        let mut cfg = quick_cfg();
        cfg.backoff_factor = 2.0;
        cfg.retry_budget = 4;
        let mut plan = FaultPlan::none();
        plan.loss = LossModel::Iid { p: 0.3 };
        plan.crash = Some(CrashRestart {
            rate: 0.01,
            downtime: LatencyModel::Fixed(3.0),
        });
        let record = run_async_raes_faulty(&cfg, &plan, 17);
        assert_eq!(record.alive, 48);
        assert!(record.stats.messages_fault_lost > 0);
        assert!(record.stats.retransmits > 0, "losses force retries");
        assert!(
            record.stats.p99_backoff() > cfg.retry_timeout,
            "exponential backoff grows past the base timeout"
        );
        assert!(record.stats.retransmit_histogram(8).is_some());
        assert!(record.stats.crashes > 0, "crash model fired");
        assert!(record.stats.restarts > 0, "victims came back");
        assert!(record.max_in_degree <= record.in_degree_cap);
        // Repairs still make progress through the chaos.
        assert!(record.repairs_completed > 0);
    }

    #[test]
    fn tiny_retry_budget_sheds_instead_of_wedging() {
        use crate::faults::LossModel;
        let mut cfg = quick_cfg();
        cfg.retry_budget = 1;
        cfg.retry_timeout = 0.5; // time out nearly every sweep
        let mut plan = FaultPlan::none();
        plan.loss = LossModel::Iid { p: 0.9 };
        let record = run_async_raes_faulty(&cfg, &plan, 23);
        assert!(
            record.stats.retries_exhausted > 0,
            "a 90%-loss wire with one retry must shed repairs"
        );
        // Shed repairs are recorded in the retry histogram alongside
        // completed ones.
        assert!(record.stats.retransmit_samples() > 0);
    }

    #[test]
    fn cap_is_never_exceeded_even_with_accepts_in_flight() {
        let mut cfg = quick_cfg();
        cfg.capacity_factor = 1.0; // tight cap forces rejections
        cfg.latency = LatencyModel::Uniform {
            low: 0.1,
            high: 2.0,
        };
        let record = run_async_raes(&cfg, 5);
        assert!(record.max_in_degree <= record.in_degree_cap);
        assert!(record.rejections > 0);
    }
}
