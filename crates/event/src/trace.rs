//! Trace capture modes and the streaming per-time-unit binner.
//!
//! The determinism suite wants every processed event verbatim
//! ([`TraceMode::Full`]); the scenario series pipeline only ever *binned*
//! the trace into unit-time buckets — so buffering tens of millions of
//! [`crate::sched::TraceEvent`]s per cell just to fold them afterwards was
//! pure memory waste. [`TraceMode::Bins`] folds each recorded event into a
//! [`TraceBins`] as it is processed: O(horizon) memory instead of
//! O(events), with bucket contents identical to binning a full trace after
//! the fact (the equivalence is pinned by a test against the reference
//! implementation in the scenario layer).

/// How a run captures its event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No capture (production default).
    #[default]
    Off,
    /// Buffer every recorded event (determinism suite; O(events) memory).
    Full,
    /// Fold events into per-time-unit bins as they are processed (series
    /// pipeline; O(horizon) memory).
    Bins,
}

/// Per-time-unit event counts plus an alive-population series, built
/// streamingly from recorded events.
///
/// Bucket `k` covers simulated time `[k, k+1)`. `alive(k)` is the alive
/// count when bucket `k` closed — the initial population until the first
/// churn event lands, then the most recent churn event's count;
/// `count(kind, k)` is the number of events of `kind` recorded in bucket
/// `k`. Events must be fed in nondecreasing time order — which is how a
/// [`crate::Scheduler`] records them.
#[derive(Debug, Clone)]
pub struct TraceBins {
    /// The trace kind whose `subject` carries the alive count.
    alive_kind: u16,
    /// Finalized alive count per bucket (backfilled as buckets complete).
    alive: Vec<f64>,
    /// `counts[kind][bucket]`, outer vec grown lazily per kind.
    counts: Vec<Vec<u64>>,
    /// Alive count in force for the next backfilled bucket.
    running_alive: f64,
    /// Buckets whose alive value is already backfilled.
    filled: usize,
    /// Total buckets seen (max bucket index + 1).
    buckets: usize,
}

impl TraceBins {
    /// A fresh binner: `alive_kind` is the trace kind whose `subject` is
    /// the alive count (e.g. the engines' `TRACE_CHURN`), `initial_alive`
    /// the population before the first churn event.
    #[must_use]
    pub fn new(alive_kind: u16, initial_alive: f64) -> Self {
        TraceBins {
            alive_kind,
            alive: Vec::new(),
            counts: Vec::new(),
            running_alive: initial_alive,
            filled: 0,
            buckets: 0,
        }
    }

    /// Folds one recorded event into the bins. Must be called in
    /// nondecreasing time order.
    pub fn push(&mut self, time_bits: u64, kind: u16, subject: u64) {
        let bucket = f64::from_bits(time_bits).max(0.0).floor() as usize;
        self.buckets = self.buckets.max(bucket + 1);
        while self.filled < bucket {
            self.alive.push(self.running_alive);
            self.filled += 1;
        }
        if kind == self.alive_kind {
            self.running_alive = subject as f64;
        }
        let kind = usize::from(kind);
        if self.counts.len() <= kind {
            self.counts.resize_with(kind + 1, Vec::new);
        }
        let row = &mut self.counts[kind];
        if row.len() <= bucket {
            row.resize(bucket + 1, 0);
        }
        row[bucket] += 1;
    }

    /// Backfills the trailing alive values; called once when the run ends.
    pub fn finalize(&mut self) {
        while self.filled < self.buckets {
            self.alive.push(self.running_alive);
            self.filled += 1;
        }
    }

    /// Number of buckets (the last recorded event's time unit + 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets
    }

    /// `true` when no event was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets == 0
    }

    /// Events of `kind` recorded in `bucket` (0 out of range).
    #[must_use]
    pub fn count(&self, kind: u16, bucket: usize) -> u64 {
        self.counts
            .get(usize::from(kind))
            .and_then(|row| row.get(bucket))
            .copied()
            .unwrap_or(0)
    }

    /// Alive count in force when `bucket` began (0 out of range).
    #[must_use]
    pub fn alive(&self, bucket: usize) -> f64 {
        self.alive.get(bucket).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_count_kinds_and_track_alive() {
        let mut bins = TraceBins::new(4, 100.0);
        bins.push(0.25f64.to_bits(), 1, 10); // bucket 0, kind 1
        bins.push(0.5f64.to_bits(), 4, 99); // churn: alive now 99
        bins.push(1.5f64.to_bits(), 1, 11); // bucket 1
        bins.push(3.25f64.to_bits(), 2, 12); // bucket 3, kind 2
        bins.finalize();
        assert_eq!(bins.len(), 4);
        assert_eq!(bins.count(1, 0), 1);
        assert_eq!(bins.count(4, 0), 1);
        assert_eq!(bins.count(1, 1), 1);
        assert_eq!(bins.count(2, 3), 1);
        assert_eq!(bins.count(2, 0), 0);
        assert_eq!(bins.count(9, 2), 0, "unseen kinds read as zero");
        // The churn event at 0.5 lands inside bucket 0, so bucket 0 closes
        // at the churned count — matching the reference post-hoc binner.
        assert_eq!(bins.alive(0), 99.0);
        assert_eq!(bins.alive(1), 99.0);
        assert_eq!(bins.alive(3), 99.0);
        assert_eq!(bins.alive(7), 0.0, "out of range reads as zero");
    }

    #[test]
    fn empty_bins_finalize_cleanly() {
        let mut bins = TraceBins::new(4, 64.0);
        bins.finalize();
        assert!(bins.is_empty());
        assert_eq!(bins.len(), 0);
        assert_eq!(bins.count(1, 0), 0);
    }
}
