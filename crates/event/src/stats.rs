//! Deterministic load counters of one event-driven run.

use churn_stochastic::OnlineStats;

/// Counters and queue-delay statistics of one run.
///
/// Everything in here is measured in *event counts* and *simulated time*, so
/// the record is part of the deterministic output: same seed ⇒ identical
/// `EventStats`, bit for bit. Wall-clock throughput (events per real second)
/// is deliberately absent — the caller measures it around the run and keeps
/// it out of the deterministic record.
#[derive(Debug, Clone, Default)]
pub struct EventStats {
    /// Events popped from the scheduler.
    pub events_processed: u64,
    /// Messages accepted into an egress queue.
    pub messages_sent: u64,
    /// Messages whose delivery event found its target alive.
    pub messages_delivered: u64,
    /// Messages discarded by a full drop-tail egress queue.
    pub messages_dropped: u64,
    /// Messages whose target had died by the delivery instant.
    pub messages_lost: u64,
    /// Largest egress backlog any node reached.
    pub peak_backlog: u64,
    /// Simulated time of the last processed event.
    pub sim_time: f64,
    delay: OnlineStats,
    delays: Vec<f64>,
}

impl EventStats {
    /// Fresh, all-zero statistics.
    #[must_use]
    pub fn new() -> Self {
        EventStats::default()
    }

    /// Records one message's egress-queue delay (waiting + service, in
    /// simulated time).
    pub fn record_queue_delay(&mut self, delay: f64) {
        self.delay.push(delay);
        self.delays.push(delay);
    }

    /// Number of recorded queue delays (= messages that entered a queue).
    #[must_use]
    pub fn queue_samples(&self) -> usize {
        self.delays.len()
    }

    /// Mean egress-queue delay in simulated time (0 with no samples).
    #[must_use]
    pub fn mean_queue_delay(&self) -> f64 {
        if self.delays.is_empty() {
            0.0
        } else {
            self.delay.mean()
        }
    }

    /// 99th-percentile egress-queue delay in simulated time (0 with no
    /// samples). Computed from the full sample set, so it is exact and
    /// deterministic.
    #[must_use]
    pub fn p99_queue_delay(&self) -> f64 {
        percentile(&self.delays, 0.99)
    }

    /// Messages still in flight (sent but neither delivered nor lost) when
    /// the run ended — undelivered load at the horizon.
    #[must_use]
    pub fn messages_in_flight(&self) -> u64 {
        self.messages_sent
            .saturating_sub(self.messages_delivered)
            .saturating_sub(self.messages_lost)
    }
}

/// Exact percentile of a sample set by sorting a copy (nearest-rank). All
/// samples must be finite. Returns 0 for an empty set.
#[must_use]
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 0.5), 50.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn queue_delay_statistics_accumulate() {
        let mut stats = EventStats::new();
        assert_eq!(stats.mean_queue_delay(), 0.0);
        for d in [1.0, 2.0, 3.0] {
            stats.record_queue_delay(d);
        }
        assert_eq!(stats.queue_samples(), 3);
        assert!((stats.mean_queue_delay() - 2.0).abs() < 1e-12);
        assert_eq!(stats.p99_queue_delay(), 3.0);
        stats.messages_sent = 10;
        stats.messages_delivered = 6;
        stats.messages_lost = 1;
        assert_eq!(stats.messages_in_flight(), 3);
    }
}
