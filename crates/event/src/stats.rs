//! Deterministic load counters of one event-driven run.
//!
//! Sample sets that only feed order statistics (percentiles, maxima,
//! histograms) are held as sorted multisets — `BTreeMap<key, count>` — not
//! as per-sample `Vec`s: quantized delay and backoff values repeat heavily,
//! so a run recording tens of millions of samples stores a few hundred
//! distinct keys. The nearest-rank percentile walks the multiset in key
//! order, which is bit-identical to sorting the flat sample vector.

use std::collections::BTreeMap;

use churn_stochastic::{Histogram, OnlineStats};

/// Maps a finite `f64` onto a `u64` whose unsigned order matches the float
/// order (standard sign-flip trick), so a `BTreeMap` keyed by it iterates
/// in ascending float order.
fn order_key(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`order_key`].
fn key_value(key: u64) -> f64 {
    if key & (1 << 63) != 0 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// Nearest-rank percentile over a sorted multiset of `order_key`-keyed
/// samples — identical to [`percentile`] over the flattened sample vector.
fn multiset_percentile(samples: &BTreeMap<u64, u64>, total: u64, q: f64) -> f64 {
    if total == 0 || !q.is_finite() {
        return 0.0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (&key, &count) in samples {
        seen += count;
        if seen >= rank {
            return key_value(key);
        }
    }
    key_value(*samples.keys().next_back().expect("total > 0"))
}

/// Counters and queue-delay statistics of one run.
///
/// Everything in here is measured in *event counts* and *simulated time*, so
/// the record is part of the deterministic output: same seed ⇒ identical
/// `EventStats`, bit for bit. Wall-clock throughput (events per real second)
/// is deliberately absent — the caller measures it around the run and keeps
/// it out of the deterministic record.
#[derive(Debug, Clone, Default)]
pub struct EventStats {
    /// Events popped from the scheduler.
    pub events_processed: u64,
    /// Messages accepted into an egress queue.
    pub messages_sent: u64,
    /// Messages whose delivery event found its target alive.
    pub messages_delivered: u64,
    /// Messages discarded by a full drop-tail egress queue.
    pub messages_dropped: u64,
    /// Messages whose target had died by the delivery instant.
    pub messages_lost: u64,
    /// Largest egress backlog any node reached.
    pub peak_backlog: u64,
    /// Simulated time of the last processed event.
    pub sim_time: f64,
    /// Messages lost on the wire by the fault layer's loss model.
    pub messages_fault_lost: u64,
    /// Extra copies injected by the fault layer's duplication coin.
    pub messages_duplicated: u64,
    /// Copies held back by the fault layer's bounded reordering.
    pub messages_reordered: u64,
    /// Deliveries cut by an active partition window.
    pub messages_blocked: u64,
    /// Deliveries that found their target crashed (down, not dead).
    pub messages_to_down: u64,
    /// Departures voided because the sender was down at the departure
    /// instant — queued egress lost in a crash.
    pub messages_crash_voided: u64,
    /// Crash events injected by the fault layer.
    pub crashes: u64,
    /// Restarts completed after a crash.
    pub restarts: u64,
    /// Retransmissions issued by a retry policy (RAES ack-timeouts).
    pub retransmits: u64,
    /// Repairs shed after exhausting their retry budget (graceful
    /// degradation: recorded, never wedged).
    pub retries_exhausted: u64,
    /// Anti-entropy pull requests issued after partition heals.
    pub anti_entropy_pulls: u64,
    /// Per-partition-block informed fractions, recorded at the moment the
    /// most recent partition window healed (empty without partitions).
    pub heal_block_informed: Vec<f64>,
    /// Simulated time of the most recent partition heal observed.
    pub heal_time: Option<f64>,
    /// Time from the most recent partition heal to flood completion
    /// (`None` while incomplete or without a healed partition).
    pub time_to_reheal: Option<f64>,
    delay: OnlineStats,
    /// Sorted multiset of queue delays (percentile source).
    delays: BTreeMap<u64, u64>,
    /// Sorted multiset of backoff timeouts chosen at retransmissions
    /// (percentile and histogram source).
    backoff_delays: BTreeMap<u64, u64>,
    /// Retransmissions with a recorded backoff timeout.
    backoff_samples: u64,
    /// Multiset of retransmit counts per resolved repair — completed or
    /// shed (histogram source).
    retransmit_counts: BTreeMap<u32, u64>,
    /// Resolved repairs with a recorded retransmit count.
    repair_samples: u64,
}

impl EventStats {
    /// Fresh, all-zero statistics.
    #[must_use]
    pub fn new() -> Self {
        EventStats::default()
    }

    /// Records one message's egress-queue delay (waiting + service, in
    /// simulated time).
    pub fn record_queue_delay(&mut self, delay: f64) {
        self.delay.push(delay);
        *self.delays.entry(order_key(delay)).or_insert(0) += 1;
    }

    /// Number of recorded queue delays (= messages that entered a queue).
    #[must_use]
    pub fn queue_samples(&self) -> usize {
        self.delay.count() as usize
    }

    /// Mean egress-queue delay in simulated time (0 with no samples).
    #[must_use]
    pub fn mean_queue_delay(&self) -> f64 {
        if self.delay.count() == 0 {
            0.0
        } else {
            self.delay.mean()
        }
    }

    /// 99th-percentile egress-queue delay in simulated time (0 with no
    /// samples). Computed from the full sample multiset, so it is exact
    /// and deterministic.
    #[must_use]
    pub fn p99_queue_delay(&self) -> f64 {
        multiset_percentile(&self.delays, self.delay.count(), 0.99)
    }

    /// Messages still in flight (sent but not yet resolved) when the run
    /// ended — undelivered load at the horizon. Duplicated copies add to
    /// the in-flight side; every fault-layer outcome (wire loss, partition
    /// block, down target, crash-voided departure) resolves a message.
    /// Saturating, because anti-entropy deliveries bypass the egress queues
    /// and can push `messages_delivered` past `messages_sent`.
    #[must_use]
    pub fn messages_in_flight(&self) -> u64 {
        (self.messages_sent + self.messages_duplicated)
            .saturating_sub(self.messages_delivered)
            .saturating_sub(self.messages_lost)
            .saturating_sub(self.messages_fault_lost)
            .saturating_sub(self.messages_blocked)
            .saturating_sub(self.messages_to_down)
            .saturating_sub(self.messages_crash_voided)
    }

    /// Records one retransmission and the backoff timeout it was issued
    /// with.
    pub fn record_retransmit(&mut self, timeout: f64) {
        self.retransmits += 1;
        *self.backoff_delays.entry(order_key(timeout)).or_insert(0) += 1;
        self.backoff_samples += 1;
    }

    /// Records the retransmit count of one resolved repair (completed or
    /// shed) — the source of [`Self::retransmit_histogram`].
    pub fn record_repair_retries(&mut self, retries: u32) {
        *self.retransmit_counts.entry(retries).or_insert(0) += 1;
        self.repair_samples += 1;
    }

    /// Number of resolved repairs with a recorded retransmit count.
    #[must_use]
    pub fn retransmit_samples(&self) -> usize {
        self.repair_samples as usize
    }

    /// Mean retransmits per resolved repair (0 with no samples — never
    /// NaN). Retransmit counts are integers, so summing grouped
    /// `count × value` products is exact — identical to the per-sample sum.
    #[must_use]
    pub fn mean_retransmits(&self) -> f64 {
        if self.repair_samples == 0 {
            0.0
        } else {
            self.retransmit_counts
                .iter()
                .map(|(&retries, &count)| f64::from(retries) * count as f64)
                .sum::<f64>()
                / self.repair_samples as f64
        }
    }

    /// Largest retransmit count any resolved repair needed (0 with no
    /// samples).
    #[must_use]
    pub fn max_retransmits(&self) -> u32 {
        self.retransmit_counts
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// Histogram of retransmits per resolved repair; `None` with no
    /// samples (an empty sample set has no well-defined bin range).
    #[must_use]
    pub fn retransmit_histogram(&self, bins: usize) -> Option<Histogram> {
        if self.repair_samples == 0 || bins == 0 {
            return None;
        }
        let high = f64::from(self.max_retransmits()) + 1.0;
        let mut hist = Histogram::new(0.0, high, bins);
        for (&retries, &count) in &self.retransmit_counts {
            for _ in 0..count {
                hist.push(f64::from(retries));
            }
        }
        Some(hist)
    }

    /// 99th-percentile backoff timeout across all retransmissions (0 with
    /// no samples).
    #[must_use]
    pub fn p99_backoff(&self) -> f64 {
        multiset_percentile(&self.backoff_delays, self.backoff_samples, 0.99)
    }

    /// Histogram of backoff timeouts; `None` with no retransmissions.
    #[must_use]
    pub fn backoff_histogram(&self, bins: usize) -> Option<Histogram> {
        if self.backoff_samples == 0 || bins == 0 {
            return None;
        }
        let max = key_value(*self.backoff_delays.keys().next_back().expect("samples > 0"));
        let high = if max > 0.0 { max } else { 1.0 };
        let mut hist = Histogram::new(0.0, high, bins);
        for (&key, &count) in &self.backoff_delays {
            for _ in 0..count {
                hist.push(key_value(key));
            }
        }
        Some(hist)
    }

    /// Redundant-delivery overhead: delivered messages per informed node in
    /// excess of 1 would be the protocol-level view; at the transport level
    /// this is the fraction of deliveries that were duplicate copies or
    /// anti-entropy re-sends. 0 with no deliveries — never NaN.
    #[must_use]
    pub fn redundancy_overhead(&self) -> f64 {
        if self.messages_delivered == 0 {
            0.0
        } else {
            (self.messages_duplicated + self.anti_entropy_pulls) as f64
                / self.messages_delivered as f64
        }
    }
}

/// Exact percentile of a sample set by sorting a copy (nearest-rank). All
/// samples must be finite. Returns 0 for an empty set — the NaN-free
/// convention every `EventStats` accessor follows, so 100%-loss runs (no
/// delivered sample anywhere) still serialise to clean records. Use
/// [`try_percentile`] to distinguish "no samples" from a true zero.
#[must_use]
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    try_percentile(samples, q).unwrap_or(0.0)
}

/// Exact nearest-rank percentile, or `None` for an empty sample set or a
/// non-finite `q`. Never returns NaN.
#[must_use]
pub fn try_percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !q.is_finite() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 0.5), 50.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn empty_sample_sets_stay_nan_free() {
        // The 100%-loss regime: no message is ever delivered, so every
        // sample vector is empty. Every accessor must return a finite zero
        // or an explicit None — never NaN, never an out-of-bounds index.
        let stats = EventStats::new();
        assert_eq!(stats.mean_queue_delay(), 0.0);
        assert_eq!(stats.p99_queue_delay(), 0.0);
        assert_eq!(stats.mean_retransmits(), 0.0);
        assert_eq!(stats.max_retransmits(), 0);
        assert_eq!(stats.p99_backoff(), 0.0);
        assert_eq!(stats.redundancy_overhead(), 0.0);
        assert!(stats.retransmit_histogram(8).is_none());
        assert!(stats.backoff_histogram(8).is_none());
        assert_eq!(try_percentile(&[], 0.99), None);
        assert_eq!(try_percentile(&[1.0], f64::NAN), None);
        for value in [
            stats.mean_queue_delay(),
            stats.p99_queue_delay(),
            stats.mean_retransmits(),
            stats.p99_backoff(),
            stats.redundancy_overhead(),
        ] {
            assert!(value.is_finite());
        }
    }

    #[test]
    fn retransmit_and_backoff_histograms_accumulate() {
        let mut stats = EventStats::new();
        for (retries, timeout) in [(0u32, 0.0), (2, 8.0), (2, 16.0), (5, 32.0)] {
            stats.record_repair_retries(retries);
            if retries > 0 {
                stats.record_retransmit(timeout);
            }
        }
        assert_eq!(stats.retransmit_samples(), 4);
        assert_eq!(stats.retransmits, 3);
        assert_eq!(stats.max_retransmits(), 5);
        assert!((stats.mean_retransmits() - 2.25).abs() < 1e-12);
        let hist = stats.retransmit_histogram(6).unwrap();
        assert_eq!(hist.total(), 4);
        let backoff = stats.backoff_histogram(4).unwrap();
        assert_eq!(backoff.total(), 3);
        assert_eq!(stats.p99_backoff(), 32.0);
    }

    #[test]
    fn multiset_percentile_matches_sorted_vector() {
        // The multiset rank walk must be bit-identical to nearest-rank over
        // the flat sample vector, including heavy ties and negative keys.
        let samples = [3.5, -1.25, 0.0, 3.5, 3.5, 7.0, -1.25, 2.0, 0.0, 9.5];
        let mut stats = EventStats::new();
        for &s in &samples {
            stats.record_queue_delay(s);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let multiset = multiset_percentile(&stats.delays, stats.delay.count(), q);
            assert_eq!(multiset.to_bits(), percentile(&samples, q).to_bits());
        }
        assert_eq!(
            stats.p99_queue_delay().to_bits(),
            percentile(&samples, 0.99).to_bits()
        );
        assert_eq!(stats.queue_samples(), samples.len());
    }

    #[test]
    fn queue_delay_statistics_accumulate() {
        let mut stats = EventStats::new();
        assert_eq!(stats.mean_queue_delay(), 0.0);
        for d in [1.0, 2.0, 3.0] {
            stats.record_queue_delay(d);
        }
        assert_eq!(stats.queue_samples(), 3);
        assert!((stats.mean_queue_delay() - 2.0).abs() < 1e-12);
        assert_eq!(stats.p99_queue_delay(), 3.0);
        stats.messages_sent = 10;
        stats.messages_delivered = 6;
        stats.messages_lost = 1;
        assert_eq!(stats.messages_in_flight(), 3);
    }
}
