//! Per-node bandwidth: FIFO egress queues with a service rate, a capacity
//! and a drop-or-delay overflow policy.
//!
//! Every node owns one egress queue (its "NIC"). Sending a message costs one
//! service time `1 / service_rate` on that queue; messages depart in FIFO
//! order, and the network latency of [`crate::LatencyModel`] only starts
//! *after* departure. A message offered to a full queue is either discarded
//! ([`OverflowPolicy::Drop`], drop-tail) or accepted anyway and delayed
//! behind the backlog ([`OverflowPolicy::Delay`], infinite buffer — the
//! capacity then only bounds what `Drop` would have cut).
//!
//! Messages already accepted by a queue depart even if their sender dies
//! before the departure instant (the packet has left the process; the wire
//! does not recall it). Queue state is keyed by raw node identifier, so
//! recycled slab cells never inherit a predecessor's backlog.

use std::collections::VecDeque;

use churn_graph::hashing::IdHashMap;
use serde::{Deserialize, Serialize};

/// What happens to a message offered to a full egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Discard the message (drop-tail; the protocol's retry logic, if any,
    /// has to recover).
    Drop,
    /// Accept the message anyway; it waits behind the backlog (the queue is
    /// effectively unbounded).
    Delay,
}

/// A per-node bandwidth model shared by every node of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Messages served per unit of simulated time. `f64::INFINITY` models
    /// an infinitely fast link (no queueing at all).
    pub service_rate: f64,
    /// Maximum number of queued-but-not-yet-departed messages. `0` means
    /// unbounded.
    pub capacity: usize,
    /// Overflow policy at a full queue.
    pub policy: OverflowPolicy,
}

impl BandwidthModel {
    /// Infinitely fast links: no service time, no queueing, no drops. The
    /// infinite-bandwidth limit of the sync-equivalence tests.
    #[must_use]
    pub const fn unlimited() -> Self {
        BandwidthModel {
            service_rate: f64::INFINITY,
            capacity: 0,
            policy: OverflowPolicy::Delay,
        }
    }

    /// A drop-tail queue: `capacity` slots served at `service_rate`.
    #[must_use]
    pub const fn drop_tail(service_rate: f64, capacity: usize) -> Self {
        BandwidthModel {
            service_rate,
            capacity,
            policy: OverflowPolicy::Drop,
        }
    }

    /// An unbounded delaying queue served at `service_rate`.
    #[must_use]
    pub const fn delaying(service_rate: f64) -> Self {
        BandwidthModel {
            service_rate,
            capacity: 0,
            policy: OverflowPolicy::Delay,
        }
    }

    /// Checks the parameters: the service rate must be positive (infinity
    /// allowed).
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.service_rate > 0.0 && !self.service_rate.is_nan() {
            Ok(())
        } else {
            Err(format!("invalid bandwidth model {self:?}"))
        }
    }

    /// Service time of one message (`0` for infinite rate).
    #[must_use]
    pub fn service_time(&self) -> f64 {
        if self.service_rate.is_infinite() {
            0.0
        } else {
            1.0 / self.service_rate
        }
    }

    /// Short label for bench ids and report headers (`bw-inf`,
    /// `bw4drop16`, `bw4delay`).
    #[must_use]
    pub fn label(&self) -> String {
        if self.service_rate.is_infinite() {
            return "bw-inf".to_owned();
        }
        match self.policy {
            OverflowPolicy::Drop => format!("bw{}drop{}", self.service_rate, self.capacity),
            OverflowPolicy::Delay => format!("bw{}delay", self.service_rate),
        }
    }
}

/// Outcome of offering one message to an egress queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Enqueue {
    /// The message was accepted and departs at `departs`; it spent
    /// `queue_delay = departs − now` waiting and being served.
    Sent {
        /// Absolute departure time.
        departs: f64,
        /// Time spent in the queue (waiting + service).
        queue_delay: f64,
    },
    /// The queue was full and the policy is [`OverflowPolicy::Drop`].
    Dropped,
}

/// The egress queues of every node of a run, under one shared
/// [`BandwidthModel`].
///
/// State per node is the departure times of its pending messages; entries
/// whose departure lies in the past are garbage-collected on the node's next
/// send. With an infinite service rate no state is kept at all, so the
/// zero-latency/infinite-bandwidth limit costs nothing.
#[derive(Debug)]
pub struct EgressQueues {
    model: BandwidthModel,
    pending: IdHashMap<u64, VecDeque<f64>>,
    /// Retired deques recycled by later senders, so churn-heavy runs do not
    /// re-allocate queue storage once per node lifetime.
    free: Vec<VecDeque<f64>>,
    peak_backlog: usize,
}

/// Retired-deque recycle cap: beyond this the allocator keeps up fine.
const FREE_QUEUE_CAP: usize = 256;

impl EgressQueues {
    /// Creates the queue set (empty; nodes materialize on first send).
    #[must_use]
    pub fn new(model: BandwidthModel) -> Self {
        EgressQueues {
            model,
            pending: IdHashMap::default(),
            free: Vec::new(),
            peak_backlog: 0,
        }
    }

    /// The shared bandwidth model.
    #[must_use]
    pub fn model(&self) -> &BandwidthModel {
        &self.model
    }

    /// Largest backlog any queue reached (pending messages at an enqueue
    /// instant, including the new one).
    #[must_use]
    pub fn peak_backlog(&self) -> usize {
        self.peak_backlog
    }

    /// Offers one message from `sender` (raw node id) at time `now`.
    pub fn enqueue(&mut self, sender: u64, now: f64) -> Enqueue {
        let service = self.model.service_time();
        if service == 0.0 {
            // Infinitely fast link: depart immediately, keep no state.
            self.peak_backlog = self.peak_backlog.max(1);
            return Enqueue::Sent {
                departs: now,
                queue_delay: 0.0,
            };
        }
        let queue = self
            .pending
            .entry(sender)
            .or_insert_with(|| self.free.pop().unwrap_or_default());
        while queue.front().is_some_and(|&departs| departs <= now) {
            queue.pop_front();
        }
        if self.model.capacity > 0
            && queue.len() >= self.model.capacity
            && self.model.policy == OverflowPolicy::Drop
        {
            return Enqueue::Dropped;
        }
        let starts = queue.back().copied().unwrap_or(now).max(now);
        let departs = starts + service;
        queue.push_back(departs);
        self.peak_backlog = self.peak_backlog.max(queue.len());
        Enqueue::Sent {
            departs,
            queue_delay: departs - now,
        }
    }

    /// Drops the queue state of a dead node. Messages already accepted keep
    /// their scheduled departures (they have left the process).
    pub fn forget(&mut self, sender: u64) {
        if let Some(mut queue) = self.pending.remove(&sender) {
            if self.free.len() < FREE_QUEUE_CAP {
                queue.clear();
                self.free.push(queue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_departures_accumulate_service_time() {
        let mut queues = EgressQueues::new(BandwidthModel::delaying(2.0));
        let Enqueue::Sent { departs, .. } = queues.enqueue(1, 0.0) else {
            panic!("delaying queues never drop");
        };
        assert_eq!(departs, 0.5);
        let Enqueue::Sent {
            departs,
            queue_delay,
        } = queues.enqueue(1, 0.0)
        else {
            panic!("delaying queues never drop");
        };
        assert_eq!(departs, 1.0);
        assert_eq!(queue_delay, 1.0);
        // A different node has its own queue.
        let Enqueue::Sent { departs, .. } = queues.enqueue(2, 0.0) else {
            panic!("delaying queues never drop");
        };
        assert_eq!(departs, 0.5);
        assert_eq!(queues.peak_backlog(), 2);
    }

    #[test]
    fn drop_tail_discards_at_capacity_and_delay_does_not() {
        let mut drop = EgressQueues::new(BandwidthModel::drop_tail(1.0, 2));
        assert!(matches!(drop.enqueue(1, 0.0), Enqueue::Sent { .. }));
        assert!(matches!(drop.enqueue(1, 0.0), Enqueue::Sent { .. }));
        assert_eq!(drop.enqueue(1, 0.0), Enqueue::Dropped);
        // The backlog drains as time passes.
        assert!(matches!(
            drop.enqueue(1, 1.5),
            Enqueue::Sent { departs, .. } if departs == 3.0
        ));

        let mut delay = EgressQueues::new(BandwidthModel::delaying(1.0));
        for k in 1..=5 {
            let Enqueue::Sent { departs, .. } = delay.enqueue(1, 0.0) else {
                panic!("delaying queues never drop");
            };
            assert_eq!(departs, k as f64);
        }
    }

    #[test]
    fn forget_recycles_queue_storage() {
        let mut queues = EgressQueues::new(BandwidthModel::delaying(1.0));
        assert!(matches!(queues.enqueue(1, 0.0), Enqueue::Sent { .. }));
        queues.forget(1);
        assert_eq!(queues.free.len(), 1, "retired deque lands on the freelist");
        // The next fresh sender reuses the retired deque, cleared.
        let Enqueue::Sent { departs, .. } = queues.enqueue(2, 0.0) else {
            panic!("delaying queues never drop");
        };
        assert_eq!(departs, 1.0);
        assert!(queues.free.is_empty());
        // Forgetting an unknown sender leaves the freelist alone.
        queues.forget(99);
        assert!(queues.free.is_empty());
    }

    #[test]
    fn unlimited_links_keep_no_state() {
        let mut queues = EgressQueues::new(BandwidthModel::unlimited());
        for _ in 0..1000 {
            assert!(matches!(
                queues.enqueue(7, 3.25),
                Enqueue::Sent { departs, queue_delay } if departs == 3.25 && queue_delay == 0.0
            ));
        }
        assert!(queues.pending.is_empty());
    }
}
