//! The event scheduler: a thin, instrumented wrapper over
//! [`churn_stochastic::EventQueue`].
//!
//! The queue itself provides the total event order — earliest timestamp
//! first, ties broken by a monotone schedule-time sequence number (FIFO), so
//! no two events ever compare equal. This wrapper adds what the simulation
//! core needs on top: the processed-event counter, `schedule_after`
//! convenience, and an optional trace recorder that the determinism suite
//! uses to pin "same seed ⇒ identical event trace".

use churn_stochastic::EventQueue;

use crate::trace::TraceBins;

/// One processed event in a recorded trace: enough to compare two runs
/// bit for bit without retaining payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Bit pattern of the event's timestamp (`f64::to_bits`), so the
    /// comparison is exact.
    pub time_bits: u64,
    /// Position of the event in processing order (0-based).
    pub index: u64,
    /// Process-defined event kind.
    pub kind: u16,
    /// Process-defined subject (usually a raw node id).
    pub subject: u64,
}

/// How [`Scheduler::record`] captures events.
#[derive(Debug)]
enum Capture {
    Off,
    /// Buffer every event verbatim (determinism suite).
    Buffer(Vec<TraceEvent>),
    /// Fold events into per-time-unit bins as they arrive (series
    /// pipeline; no full-trace buffering).
    Bins(TraceBins),
}

/// An instrumented future-event list with a total order.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    processed: u64,
    capture: Capture,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            processed: 0,
            capture: Capture::Off,
        }
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler with the clock at 0 and tracing off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns full trace recording on (buffers every [`Self::record`] call).
    pub fn enable_trace(&mut self) {
        self.capture = Capture::Buffer(Vec::new());
    }

    /// Turns streaming binning on: every [`Self::record`] call folds into a
    /// [`TraceBins`] keyed on `alive_kind` / `initial_alive` instead of
    /// being buffered.
    pub fn enable_bins(&mut self, alive_kind: u16, initial_alive: f64) {
        self.capture = Capture::Bins(TraceBins::new(alive_kind, initial_alive));
    }

    /// Takes the recorded trace (empty unless full tracing was enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match std::mem::replace(&mut self.capture, Capture::Off) {
            Capture::Buffer(trace) => trace,
            other => {
                self.capture = other;
                Vec::new()
            }
        }
    }

    /// Takes the finalized bins (`None` unless binning was enabled).
    pub fn take_bins(&mut self) -> Option<TraceBins> {
        match std::mem::replace(&mut self.capture, Capture::Off) {
            Capture::Bins(mut bins) => {
                bins.finalize();
                Some(bins)
            }
            other => {
                self.capture = other;
                None
            }
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (0 before the first pop).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.queue.now()
    }

    /// Events popped so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Live events still scheduled.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies before [`Self::now`].
    pub fn schedule_at(&mut self, time: f64, payload: E) {
        self.queue.schedule(time, payload);
    }

    /// Schedules `payload` `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN or negative.
    pub fn schedule_after(&mut self, delay: f64, payload: E) {
        assert!(delay >= 0.0, "event delay must be non-negative");
        self.queue.schedule(self.queue.now() + delay, payload);
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Pops the earliest event, advancing the clock and the processed
    /// counter.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let popped = self.queue.pop();
        if popped.is_some() {
            self.processed += 1;
        }
        popped
    }

    /// Records the event being processed into the active capture (no-op
    /// with capture off). Call once per popped event, after [`Self::pop`].
    pub fn record(&mut self, kind: u16, subject: u64) {
        let (now, processed) = (self.queue.now(), self.processed);
        match &mut self.capture {
            Capture::Off => {}
            Capture::Buffer(trace) => trace.push(TraceEvent {
                time_bits: now.to_bits(),
                index: processed.saturating_sub(1),
                kind,
                subject,
            }),
            Capture::Bins(bins) => bins.push(now.to_bits(), kind, subject),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut sched = Scheduler::new();
        for k in 0..10 {
            sched.schedule_at(1.0, k);
        }
        sched.schedule_at(0.5, 100);
        let order: Vec<i32> = std::iter::from_fn(|| sched.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![100, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(sched.processed(), 11);
    }

    #[test]
    fn trace_records_time_bits_and_order() {
        let mut sched = Scheduler::new();
        sched.enable_trace();
        sched.schedule_at(2.0, 'b');
        sched.schedule_at(1.0, 'a');
        while let Some((_, event)) = sched.pop() {
            sched.record(1, event as u64);
        }
        let trace = sched.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].subject, 'a' as u64);
        assert_eq!(trace[0].time_bits, 1.0f64.to_bits());
        assert_eq!(trace[1].index, 1);
    }
}
