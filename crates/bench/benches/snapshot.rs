//! Cost of materialising an immutable CSR snapshot from the mutable dynamic
//! graph, and of the BFS analyses run on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{DynamicNetwork, ModelKind, Snapshot};
use churn_graph::traversal::{bfs_distances, connected_components};

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for n in [1_024usize, 8_192] {
        let mut model = ModelKind::Pdgr.build(n, 8, 17).expect("valid parameters");
        model.warm_up();

        group.bench_with_input(BenchmarkId::new("build", n), &n, |bencher, _| {
            bencher.iter(|| criterion::black_box(Snapshot::of(model.graph())));
        });

        let snapshot = Snapshot::of(model.graph());
        group.bench_with_input(
            BenchmarkId::new("bfs", n),
            &snapshot,
            |bencher, snapshot| {
                bencher.iter(|| criterion::black_box(bfs_distances(snapshot, 0)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("components", n),
            &snapshot,
            |bencher, snapshot| {
                bencher.iter(|| criterion::black_box(connected_components(snapshot)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
