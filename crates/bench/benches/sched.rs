//! Scheduler microbenchmark: steady-state schedule/pop and
//! schedule/cancel/pop mixes with a fixed number of events pending.
//!
//! Each iteration performs `OPS` (1024) operations against a queue that was
//! pre-filled to the row's pending size and is kept at that size (every pop
//! is matched by a schedule), so the reported time is `OPS` steady-state
//! operations at that occupancy — the regime the async engines live in,
//! where the queue holds one in-flight message per busy link. Timestamps
//! come from a splitmix-style LCG (no RNG overhead in the measured loop)
//! and advance the clock monotonically, like real latency draws do.
//!
//! `BENCH_PR10.json` pairs these rows before/after the calendar-queue
//! rewrite of `churn_stochastic::EventQueue`; the bench itself only uses
//! the public schedule/cancel/pop API, so it runs unmodified against both
//! implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_stochastic::EventQueue;

/// Operations per timed iteration.
const OPS: usize = 1024;

/// Deterministic time-delta generator (top bits of an LCG, scaled so the
/// steady-state span holds roughly `n` pending events per time unit).
struct Deltas(u64);

impl Deltas {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // In (0, 1]: keeps event times strictly advancing but densely tied
        // to the current window.
        ((self.0 >> 40) as f64 + 1.0) / (1u64 << 24) as f64
    }
}

fn prefill(n: usize) -> (EventQueue<u64>, Deltas) {
    let mut queue = EventQueue::new();
    let mut deltas = Deltas(0x9E37_79B9_7F4A_7C15);
    let mut time = 0.0;
    for payload in 0..n as u64 {
        time += deltas.next();
        queue.schedule(time, payload);
    }
    (queue, deltas)
}

fn bench_mix(
    group: &mut criterion::BenchmarkGroup<'_>,
    kind: &'static str,
    n: usize,
    cancels: bool,
) {
    let mut state: Option<(EventQueue<u64>, Deltas)> = None;
    group.bench_with_input(BenchmarkId::new(kind, n), &n, |bencher, &n| {
        let (queue, deltas) = state.get_or_insert_with(|| prefill(n));
        bencher.iter(|| {
            let mut acc = 0u64;
            for _ in 0..OPS {
                let (now, payload) = queue.pop().expect("queue is kept non-empty");
                acc = acc.wrapping_add(payload);
                if cancels {
                    // schedule two, cancel one: the queue sees the
                    // retransmit-and-ack pattern (arm a timeout, cancel it
                    // when the reply lands) without changing its size.
                    let doomed = queue.schedule(now + deltas.next(), payload);
                    queue.schedule(now + deltas.next(), payload);
                    queue.cancel(doomed);
                } else {
                    queue.schedule(now + deltas.next(), payload);
                }
            }
            criterion::black_box(acc)
        });
    });
}

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [1_000usize, 100_000] {
        bench_mix(&mut group, "schedule-pop", n, false);
        bench_mix(&mut group, "schedule-cancel-pop", n, true);
    }
    group.finish();

    // The 10^7 row exercises the deep-queue regime; fewer samples keep the
    // prefill cost bounded.
    let mut group = c.benchmark_group("sched");
    group
        .sample_size(3)
        .measurement_time(Duration::from_secs(1));
    bench_mix(&mut group, "schedule-pop", 10_000_000, false);
    bench_mix(&mut group, "schedule-cancel-pop", 10_000_000, true);
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
