//! Cost of a complete flooding run over warm SDGR / PDGR networks (the positive
//! Table 1 cell), as a function of the network size — for both engines:
//!
//! * `flooding_complete_run` — the sequential [`run_flooding`] baseline, now
//!   with an `n = 10^6` row;
//! * `flooding_parallel` — the sharded [`run_flooding_parallel`] engine with
//!   an 8-shard budget (the thread budget also caps the worker count, so on a
//!   narrower machine the remaining speedup is the push→pull direction
//!   switch).
//!
//! `BENCH_PR3.json` is produced by pairing the two engines at `n = 10^6`:
//!
//! ```text
//! cargo bench -p churn-bench --bench flooding -- --json flood.jsonl
//! cargo run --release -p churn-bench --bin bench_report -- \
//!     --baseline flood.jsonl --optimized flood.jsonl \
//!     --pair flooding_complete_run/SDGR/1M=flooding_parallel/SDGR-8t/1M \
//!     --pair flooding_complete_run/PDGR/1M=flooding_parallel/PDGR-8t/1M \
//!     --pair flooding_complete_run/SDGR/100000=flooding_parallel/SDGR-8t/100k \
//!     --pair flooding_complete_run/PDGR/100000=flooding_parallel/PDGR-8t/100k \
//!     --note "recorded on <core count> cores" \
//!     --out BENCH_PR3.json
//! ```
//!
//! Always pass `--note` with the recording machine's core count: without it a
//! reader cannot attribute the speedup between thread-level sharding and the
//! algorithmic direction switch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::flooding::{run_flooding, run_flooding_parallel, FloodingConfig, FloodingSource};
use churn_core::{AnyModel, DynamicNetwork, ModelKind};

/// Sizes where cloning the warm model per iteration would dominate the
/// measurement (a 10^6-node slab is >100 MB); past this the benches flood the
/// template in place — consecutive runs over a warm stationary model are
/// statistically equivalent, and each run churns only O(log n) rounds.
const CLONE_CUTOFF: usize = 500_000;

/// Human-readable size label for the parallel group, chosen so no bench id is
/// a substring of another (criterion-style substring filters would otherwise
/// match `100000` inside `1000000`).
fn size_label(n: usize) -> String {
    match n {
        1_000_000 => "1M".to_owned(),
        100_000 => "100k".to_owned(),
        other => other.to_string(),
    }
}

/// Size label for the sequential group: the pre-existing rows keep their raw
/// numeric ids (BENCH_PR1/PR2 recordings join on them), only the new `1M` row
/// gets the unit label — which also keeps a `…/100000` filter from matching
/// `…/1000000` and triggering the 10^6 warm-up.
fn sequential_size_label(n: usize) -> String {
    if n >= 1_000_000 {
        size_label(n)
    } else {
        n.to_string()
    }
}

fn warm_template(kind: ModelKind, n: usize) -> AnyModel {
    let mut template = kind.build(n, 8, 11).expect("valid parameters");
    template.warm_up();
    template
}

/// Shared body of both groups — one place for the lazy warm-up and the
/// clone-below-cutoff policy, so the paired BENCH_PR3 comparison can never
/// drift by the two groups measuring different harness mechanics. The warm
/// template is built only when the bench actually runs (a filtered smoke run
/// must not pay for 10^6-node warm-ups); below the cutoff each iteration
/// clones the warm model so the measured cost is the flooding run itself
/// (plus the clone), matching the PR 1/PR 2 recordings.
fn bench_flooding_row(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: BenchmarkId,
    kind: ModelKind,
    n: usize,
    run: impl Fn(&mut AnyModel) -> u64,
) {
    let mut template: Option<AnyModel> = None;
    group.bench_with_input(id, &n, |bencher, &n| {
        let template = template.get_or_insert_with(|| warm_template(kind, n));
        bencher.iter(|| {
            let rounds = if n < CLONE_CUTOFF {
                let mut model = template.clone();
                run(&mut model)
            } else {
                run(template)
            };
            criterion::black_box(rounds)
        });
    });
}

fn bench_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("flooding_complete_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for kind in [ModelKind::Sdgr, ModelKind::Pdgr] {
        for n in [512usize, 2_048, 100_000, 1_000_000] {
            let id = BenchmarkId::new(kind.label(), sequential_size_label(n));
            bench_flooding_row(&mut group, id, kind, n, |model| {
                run_flooding(
                    model,
                    FloodingSource::NextToJoin,
                    &FloodingConfig::default(),
                )
                .rounds_elapsed()
            });
        }
    }
    group.finish();
}

fn bench_flooding_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("flooding_parallel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let threads = 8usize;
    for kind in [ModelKind::Sdgr, ModelKind::Pdgr] {
        for n in [100_000usize, 1_000_000] {
            let id = BenchmarkId::new(format!("{}-{threads}t", kind.label()), size_label(n));
            bench_flooding_row(&mut group, id, kind, n, |model| {
                run_flooding_parallel(
                    model,
                    FloodingSource::NextToJoin,
                    &FloodingConfig::default(),
                    threads,
                )
                .rounds_elapsed()
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flooding, bench_flooding_parallel);
criterion_main!(benches);
