//! Cost of a complete flooding run over warm SDGR / PDGR networks (the positive
//! Table 1 cell), as a function of the network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use churn_core::{DynamicNetwork, ModelKind};

fn bench_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("flooding_complete_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for kind in [ModelKind::Sdgr, ModelKind::Pdgr] {
        for n in [512usize, 2_048, 100_000] {
            // Build and warm once; each iteration clones the warm model so the
            // measured cost is the flooding run itself (plus the clone).
            let mut template = kind.build(n, 8, 11).expect("valid parameters");
            template.warm_up();
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |bencher, _| {
                bencher.iter(|| {
                    let mut model = template.clone();
                    let record = run_flooding(
                        &mut model,
                        FloodingSource::NextToJoin,
                        &FloodingConfig::default(),
                    );
                    criterion::black_box(record.rounds_elapsed())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flooding);
criterion_main!(benches);
