//! Design ablations called out in `DESIGN.md` §6.
//!
//! 1. **Out-slot adjacency vs. naive edge set** — the library identifies every
//!    edge by `(owner, slot)`, which makes a node death plus regeneration O(d);
//!    the naive alternative stores an undirected edge set and rescans it on
//!    every death. The ablation replays the same churn workload on both.
//! 2. **Neighbour queries from the mutable graph vs. rebuilding a snapshot per
//!    flooding round** — the flooding implementation reads neighbours straight
//!    from the `DynamicGraph`; the alternative materialises a CSR snapshot each
//!    round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::time::Duration;

use churn_core::flooding::{FloodingProcess, FloodingSource};
use churn_core::{DynamicNetwork, ModelKind};
use churn_graph::{NodeId, Snapshot};
use churn_stochastic::rng::seeded_rng;
use rand::Rng;

/// Naive baseline topology: an undirected edge set with no per-request
/// ownership, rescanned linearly when a node dies.
#[derive(Default)]
struct NaiveEdgeSet {
    nodes: Vec<NodeId>,
    edges: HashSet<(NodeId, NodeId)>,
}

impl NaiveEdgeSet {
    fn add_node(&mut self, id: NodeId) {
        self.nodes.push(id);
    }

    fn add_edge(&mut self, a: NodeId, b: NodeId) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edges.insert(key);
    }

    fn remove_node(&mut self, id: NodeId) {
        self.nodes.retain(|&n| n != id);
        self.edges.retain(|&(a, b)| a != id && b != id);
    }
}

fn churn_workload_naive(n: usize, d: usize, rounds: usize) -> usize {
    let mut rng = seeded_rng(42);
    let mut graph = NaiveEdgeSet::default();
    let mut next = 0u64;
    for _ in 0..n {
        graph.add_node(NodeId::new(next));
        next += 1;
    }
    for _ in 0..rounds {
        // Death of a random node, then a birth with d random edges.
        let victim = graph.nodes[rng.gen_range(0..graph.nodes.len())];
        graph.remove_node(victim);
        let newborn = NodeId::new(next);
        next += 1;
        graph.add_node(newborn);
        for _ in 0..d {
            let target = graph.nodes[rng.gen_range(0..graph.nodes.len())];
            if target != newborn {
                graph.add_edge(newborn, target);
            }
        }
    }
    graph.edges.len()
}

fn churn_workload_slots(n: usize, d: usize, rounds: usize) -> usize {
    // The library's representation driven through the same logical workload.
    let mut model = ModelKind::Sdg.build(n, d, 42).expect("valid parameters");
    model.warm_up();
    for _ in 0..rounds {
        model.advance_time_unit();
    }
    model.graph().filled_slot_count()
}

fn bench_adjacency_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_adjacency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 2_048;
    let d = 8;
    let rounds = 512;

    group.bench_function(BenchmarkId::new("out_slot_graph", n), |bencher| {
        bencher.iter(|| criterion::black_box(churn_workload_slots(n, d, rounds)));
    });
    group.bench_function(BenchmarkId::new("naive_edge_set", n), |bencher| {
        bencher.iter(|| criterion::black_box(churn_workload_naive(n, d, rounds)));
    });
    group.finish();
}

fn flooding_rounds_via_graph(template: &churn_core::AnyModel) -> usize {
    let mut model = template.clone();
    let mut process = FloodingProcess::start(&mut model, FloodingSource::NextToJoin);
    for _ in 0..32 {
        let stats = process.step(&mut model);
        if stats.complete {
            break;
        }
    }
    process.informed_count()
}

fn flooding_rounds_via_snapshot(template: &churn_core::AnyModel) -> usize {
    // Alternative implementation: rebuild a CSR snapshot every round and read
    // neighbours from it.
    let mut model = template.clone();
    let source = loop {
        let summary = model.advance_time_unit();
        if let Some(&id) = summary.births.last() {
            break id;
        }
    };
    let mut informed: HashSet<NodeId> = HashSet::new();
    informed.insert(source);
    for _ in 0..32 {
        let snapshot = Snapshot::of(model.graph());
        let mut next = informed.clone();
        for &u in &informed {
            if let Some(neighbors) = snapshot.neighbors(u) {
                next.extend(neighbors);
            }
        }
        model.advance_time_unit();
        next.retain(|id| model.contains(*id));
        let done = next.len() >= model.alive_count();
        informed = next;
        if done {
            break;
        }
    }
    informed.len()
}

fn bench_flooding_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_flooding_neighbor_source");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let mut template = ModelKind::Sdgr
        .build(2_048, 8, 7)
        .expect("valid parameters");
    template.warm_up();

    group.bench_function("graph_neighbors", |bencher| {
        bencher.iter(|| criterion::black_box(flooding_rounds_via_graph(&template)));
    });
    group.bench_function("snapshot_per_round", |bencher| {
        bencher.iter(|| criterion::black_box(flooding_rounds_via_snapshot(&template)));
    });
    group.finish();
}

criterion_group!(benches, bench_adjacency_ablation, bench_flooding_ablation);
criterion_main!(benches);
