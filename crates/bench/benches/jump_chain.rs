//! Throughput of the Poisson churn substrate: raw jump-chain sampling and full
//! Poisson-model jumps (churn plus topology bookkeeping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{PoissonConfig, PoissonModel};
use churn_stochastic::process::BirthDeathChain;
use churn_stochastic::rng::seeded_rng;

fn bench_jump_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("jump_chain");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("raw_birth_death_jump", |bencher| {
        let chain = BirthDeathChain::new(1.0, 1.0 / 4_096.0);
        let mut rng = seeded_rng(1);
        bencher.iter(|| criterion::black_box(chain.next_jump(4_096, &mut rng)));
    });

    for d in [4usize, 16] {
        let mut model = PoissonModel::new(
            PoissonConfig::with_expected_size(4_096, d)
                .edge_policy(churn_core::EdgePolicy::Regenerate)
                .seed(2),
        )
        .expect("valid parameters");
        // Warm to stationary size so the per-jump cost is representative.
        model.advance_until(3.0 * 4_096.0);
        group.bench_with_input(BenchmarkId::new("pdgr_model_jump", d), &d, |bencher, _| {
            bencher.iter(|| criterion::black_box(model.next_jump()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_jump_chain);
criterion_main!(benches);
