//! Cost of the candidate-set expansion estimator on warm snapshots, at the two
//! candidate budgets (`fast` vs `default`) used by the experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{DynamicNetwork, ModelKind, Snapshot};
use churn_graph::expansion::{ExpansionConfig, ExpansionEstimator};
use churn_stochastic::rng::seeded_rng;

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_estimate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [1_024usize, 4_096] {
        let mut model = ModelKind::Sdgr.build(n, 8, 13).expect("valid parameters");
        model.warm_up();
        let snapshot = Snapshot::of(model.graph());

        for (label, config) in [
            ("fast", ExpansionConfig::fast()),
            ("default", ExpansionConfig::default()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &snapshot,
                |bencher, snapshot| {
                    let estimator = ExpansionEstimator::new(config.clone());
                    let mut rng = seeded_rng(99);
                    bencher.iter(|| {
                        criterion::black_box(estimator.estimate(
                            snapshot,
                            1,
                            snapshot.len() / 2,
                            &mut rng,
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
