//! Cost of the candidate-set expansion estimator on warm snapshots, at the two
//! candidate budgets (`fast` vs `default`) used by the experiments — now with
//! an `n = 10^6` row (fast budget), which the incremental sweep-evaluation of
//! the candidate families made feasible: all prefixes of one BFS/spectral
//! ordering evaluate in O(n + m) total instead of O(n) each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{DynamicNetwork, ModelKind, Snapshot};
use churn_graph::expansion::{ExpansionConfig, ExpansionEstimator};
use churn_stochastic::rng::seeded_rng;

/// Distinct size labels so substring filters never match two rows.
fn size_label(n: usize) -> String {
    if n >= 1_000_000 {
        "1M".to_owned()
    } else {
        n.to_string()
    }
}

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_estimate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [1_024usize, 4_096, 1_000_000] {
        // The 10^6 snapshot is built lazily so filtered smoke runs never pay
        // the warm-up, and only measured at the fast candidate budget.
        let mut snapshot: Option<Snapshot> = None;
        let configs: &[(&str, ExpansionConfig)] = if n >= 1_000_000 {
            &[("fast", ExpansionConfig::fast())]
        } else {
            &[
                ("fast", ExpansionConfig::fast()),
                ("default", ExpansionConfig::default()),
            ]
        };
        for (label, config) in configs {
            group.bench_with_input(
                BenchmarkId::new(*label, size_label(n)),
                &n,
                |bencher, &n| {
                    let snapshot = snapshot.get_or_insert_with(|| {
                        let mut model = ModelKind::Sdgr.build(n, 8, 13).expect("valid parameters");
                        model.warm_up();
                        Snapshot::of(model.graph())
                    });
                    let estimator = ExpansionEstimator::new(config.clone());
                    let mut rng = seeded_rng(99);
                    bencher.iter(|| {
                        criterion::black_box(estimator.estimate(
                            snapshot,
                            1,
                            snapshot.len() / 2,
                            &mut rng,
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
