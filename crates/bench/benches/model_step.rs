//! Throughput of advancing the four dynamic network models by one
//! message-delay unit (one round of churn plus topology maintenance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{DynamicNetwork, ModelKind};

fn bench_model_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_step");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for kind in ModelKind::ALL {
        for n in [1_024usize, 4_096, 100_000] {
            let mut model = kind.build(n, 8, 7).expect("valid parameters");
            model.warm_up();
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |bencher, _| {
                bencher.iter(|| {
                    criterion::black_box(model.advance_time_unit());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_model_step);
criterion_main!(benches);
