//! Per-round structural observation cost: maintaining a `churn-observe`
//! `IncrementalSnapshot` + `LiveMetrics` from the graph's change feed
//! (`observe_incremental`) vs rebuilding `Snapshot::of` every round and
//! re-deriving the same quantities (`observe_rebuild`) — the comparison
//! behind the `churn-observe` subsystem, at the paper's churn rates (one
//! birth + one death per streaming round, ~2 events per Poisson time unit).
//!
//! `BENCH_PR4.json` is produced by pairing the two groups:
//!
//! ```text
//! cargo bench -p churn-bench --bench observe -- --json observe.jsonl
//! cargo run --release -p churn-bench --bin bench_report -- \
//!     --baseline observe.jsonl --optimized observe.jsonl \
//!     --pair observe_rebuild/SDG/100k=observe_incremental/SDG/100k \
//!     --pair observe_rebuild/PDGR/100k=observe_incremental/PDGR/100k \
//!     --pair observe_rebuild/SDG/1M=observe_incremental/SDG/1M \
//!     --pair observe_rebuild/PDGR/1M=observe_incremental/PDGR/1M \
//!     --note "<machine>" --out BENCH_PR4.json
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{AnyModel, DynamicNetwork, GraphDelta, ModelKind, Snapshot};
use churn_observe::{IncrementalSnapshot, LiveMetrics};

/// Size label chosen so no bench id is a substring of another (substring
/// filters would otherwise match `100000` inside `1000000`).
fn size_label(n: usize) -> &'static str {
    match n {
        1_000_000 => "1M",
        100_000 => "100k",
        _ => "n",
    }
}

fn warm_template(kind: ModelKind, n: usize) -> AnyModel {
    let mut template = kind.build(n, 8, 17).expect("valid parameters");
    template.warm_up();
    template
}

/// One observed model round: isolated count + edge count, maintained
/// incrementally. The deliverable matches `rebuild_round` exactly.
fn incremental_round(
    model: &mut AnyModel,
    inc: &mut IncrementalSnapshot,
    metrics: &mut LiveMetrics,
    delta: &mut GraphDelta,
) -> (usize, usize) {
    model.advance_time_unit();
    model.graph_mut().take_delta_into(delta);
    inc.apply(model.graph(), delta);
    metrics.apply(model.graph(), delta);
    (metrics.isolated_count(), inc.edge_count())
}

/// The pre-observe pattern: one model round, then a full CSR rebuild and a
/// fresh census.
fn rebuild_round(model: &mut AnyModel) -> (usize, usize) {
    model.advance_time_unit();
    let snapshot = Snapshot::of(model.graph());
    let isolated = (0..snapshot.len())
        .filter(|&i| snapshot.degree_of(i) == 0)
        .count();
    (isolated, snapshot.edge_count())
}

fn bench_observe(c: &mut Criterion) {
    let kinds = [ModelKind::Sdg, ModelKind::Pdgr];
    let sizes = [100_000usize, 1_000_000];

    let mut group = c.benchmark_group("observe_incremental");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for kind in kinds {
        for n in sizes {
            let mut state: Option<(AnyModel, IncrementalSnapshot, LiveMetrics, GraphDelta)> = None;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), size_label(n)),
                &n,
                |bencher, &n| {
                    let (model, inc, metrics, delta) = state.get_or_insert_with(|| {
                        let mut model = warm_template(kind, n);
                        model.graph_mut().set_delta_recording(true);
                        let inc = IncrementalSnapshot::new(model.graph());
                        let metrics = LiveMetrics::new(model.graph());
                        (model, inc, metrics, GraphDelta::new())
                    });
                    bencher.iter(|| {
                        criterion::black_box(incremental_round(model, inc, metrics, delta))
                    });
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("observe_rebuild");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for kind in kinds {
        for n in sizes {
            let mut state: Option<AnyModel> = None;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), size_label(n)),
                &n,
                |bencher, &n| {
                    let model = state.get_or_insert_with(|| warm_template(kind, n));
                    bencher.iter(|| criterion::black_box(rebuild_round(model)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
