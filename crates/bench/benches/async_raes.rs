//! Event-driven RAES repair at scale: the whole protocol (spawn churn,
//! capped connect requests, replies, retransmits) through the message
//! scheduler, at the production latency/bandwidth regime of the
//! `async-raes-load` scenario.
//!
//! Every node's initial `d` connect requests are repairs through the event
//! layer, so even a short horizon pays ~`2·n·d` message events plus one
//! streaming churn round per simulated time unit — the rows measure raw
//! scheduler + engine throughput, which is what `BENCH_PR10.json` pairs
//! before/after the calendar-queue rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_event::{run_async_raes, AsyncRaesConfig, BandwidthModel, LatencyModel};

fn cfg(n: usize) -> AsyncRaesConfig {
    AsyncRaesConfig {
        horizon: 8.0,
        ..AsyncRaesConfig::new(
            n,
            8,
            LatencyModel::Exponential { mean: 0.5 },
            BandwidthModel::drop_tail(32.0, 64),
        )
    }
}

fn bench_async_raes(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_raes");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("repair", 100_000),
        &100_000usize,
        |b, &n| {
            let cfg = cfg(n);
            b.iter(|| {
                let record = run_async_raes(&cfg, 0xAE5);
                criterion::black_box(record.stats.events_processed)
            });
        },
    );
    group.finish();

    // The 10^6 row is recorded with minimal samples — one run is tens of
    // millions of events; the median over 2 samples is still steal-robust
    // enough for an order-of-magnitude speedup claim.
    let mut group = c.benchmark_group("async_raes");
    group
        .sample_size(2)
        .measurement_time(Duration::from_secs(1));
    group.bench_with_input(
        BenchmarkId::new("repair", 1_000_000),
        &1_000_000usize,
        |b, &n| {
            let cfg = cfg(n);
            b.iter(|| {
                let record = run_async_raes(&cfg, 0xAE5);
                criterion::black_box(record.stats.events_processed)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_async_raes);
criterion_main!(benches);
