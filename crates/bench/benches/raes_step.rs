//! Throughput of one RAES protocol round: one unit of churn plus one repair
//! sweep over the pending-request queue.
//!
//! The interesting comparison is against `model_step`'s SDG/SDGR numbers at
//! the same `(n, d)`: the protocol does strictly more work per round than the
//! baselines (saturation checks, queue maintenance, possible retries), and
//! `bench_report --pair` joins the two benches into `BENCH_PR2.json` to show
//! the overhead stays within a small constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::{ChurnSummary, DynamicNetwork};
use churn_protocol::{RaesConfig, RaesModel, SaturationPolicy};

fn bench_raes_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("raes_step");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for policy in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
        for n in [1_024usize, 4_096, 100_000] {
            let config = RaesConfig::new(n, 8).saturation(policy).seed(7);
            let mut model = RaesModel::new(config).expect("valid parameters");
            model.warm_up();
            // The allocation-free entry point: the summary buffer is reused,
            // so the loop measures pure protocol work (alloc_free.rs pins the
            // zero-allocation property).
            let mut summary = ChurnSummary::new();
            group.bench_with_input(
                BenchmarkId::new(format!("RAES-{}", policy.label()), n),
                &n,
                |bencher, _| {
                    bencher.iter(|| {
                        model.step_round_into(&mut summary);
                        criterion::black_box(&summary);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_raes_step);
criterion_main!(benches);
