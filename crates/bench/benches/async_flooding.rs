//! What does the event layer cost? Sync-round flooding vs. the event-driven
//! asynchronous engine over the same warm SDGR network:
//!
//! * `sync` — the sequential [`run_flooding`] round loop (the PR 1 baseline);
//! * `zero-latency` — [`run_async_flooding`] with `Fixed(0.0)` latency and
//!   unlimited bandwidth: semantically BFS, so the slowdown vs. `sync` is the
//!   pure per-message scheduler overhead (one heap event per delivery);
//! * `exponential` — the production regime registered as the
//!   `async-flooding` scenario (`Exponential{mean: 0.5}` latency,
//!   `drop_tail(32, 64)` egress queues).
//!
//! `BENCH_PR7.json` pairs the first two rows (baseline = sync, "optimized" =
//! zero-latency async, so the ratio *is* the event-layer overhead):
//!
//! ```text
//! CHURN_BENCH_JSON=async_flood.jsonl \
//!     cargo bench -p churn-bench --bench async_flooding
//! cargo run --release -p churn-bench --bin bench_report -- \
//!     --baseline async_flood.jsonl --optimized async_flood.jsonl \
//!     --pair async_flooding/sync/2048=async_flooding/zero-latency/2048 \
//!     --pair async_flooding/sync/65536=async_flooding/zero-latency/65536 \
//!     --note "sync rounds vs. event-driven delivery at zero latency" \
//!     --out BENCH_PR7.json
//! ```
//!
//! All sizes sit below the clone cutoff used by `benches/flooding.rs`, so
//! every iteration clones the warm template and the measured cost is one
//! complete flood (plus the clone) for both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use churn_core::flooding::{run_flooding, FloodingConfig, FloodingSource};
use churn_core::{AnyModel, DynamicNetwork, ModelKind};
use churn_event::{
    run_async_flooding, AsyncFloodingConfig, AsyncSource, BandwidthModel, LatencyModel,
};

const SIZES: [usize; 3] = [2_048, 65_536, 100_000];

/// The n = 10^6 rows (sync + zero-latency only) are recorded with minimal
/// samples — one async iteration at this size is seconds of work, and the
/// BENCH_PR10 speedup claim only needs an order-of-magnitude-stable median.
const BIG: usize = 1_000_000;

fn warm_template(n: usize) -> AnyModel {
    let mut template = ModelKind::Sdgr.build(n, 8, 11).expect("valid parameters");
    template.warm_up();
    template
}

/// Horizon mirroring the sync engine's round budget (~4·log2 n churn units),
/// so the async rows pay a comparable number of churn rounds.
fn async_cfg(latency: LatencyModel, bandwidth: BandwidthModel, n: usize) -> AsyncFloodingConfig {
    let mut cfg = AsyncFloodingConfig::new(latency, bandwidth);
    cfg.horizon = 4.0 * (n as f64).log2().ceil();
    cfg
}

fn bench_async_row(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: BenchmarkId,
    n: usize,
    latency: LatencyModel,
    bandwidth: BandwidthModel,
) {
    let mut template: Option<AnyModel> = None;
    group.bench_with_input(id, &n, |bencher, &n| {
        let template = template.get_or_insert_with(|| warm_template(n));
        let cfg = async_cfg(latency, bandwidth, n);
        bencher.iter(|| {
            let mut model = template.clone();
            let record = run_async_flooding(&mut model, AsyncSource::Newest, &cfg, 0xBE7);
            criterion::black_box(record.stats.events_processed)
        });
    });
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_flooding");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in SIZES {
        bench_sync_row(&mut group, n);
    }
    group.finish();

    let mut group = c.benchmark_group("async_flooding");
    group
        .sample_size(2)
        .measurement_time(Duration::from_secs(1));
    bench_sync_row(&mut group, BIG);
    group.finish();
}

fn bench_sync_row(group: &mut criterion::BenchmarkGroup<'_>, n: usize) {
    let mut template: Option<AnyModel> = None;
    group.bench_with_input(BenchmarkId::new("sync", n), &n, |bencher, &n| {
        let template = template.get_or_insert_with(|| warm_template(n));
        bencher.iter(|| {
            let mut model = template.clone();
            let record = run_flooding(
                &mut model,
                FloodingSource::NextToJoin,
                &FloodingConfig::default(),
            );
            criterion::black_box(record.rounds_elapsed())
        });
    });
}

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_flooding");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in SIZES {
        bench_async_row(
            &mut group,
            BenchmarkId::new("zero-latency", n),
            n,
            LatencyModel::Fixed(0.0),
            BandwidthModel::unlimited(),
        );
        bench_async_row(
            &mut group,
            BenchmarkId::new("exponential", n),
            n,
            LatencyModel::Exponential { mean: 0.5 },
            BandwidthModel::drop_tail(32.0, 64),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("async_flooding");
    group
        .sample_size(2)
        .measurement_time(Duration::from_secs(1));
    bench_async_row(
        &mut group,
        BenchmarkId::new("zero-latency", BIG),
        BIG,
        LatencyModel::Fixed(0.0),
        BandwidthModel::unlimited(),
    );
    group.finish();
}

criterion_group!(benches, bench_sync, bench_async);
criterion_main!(benches);
