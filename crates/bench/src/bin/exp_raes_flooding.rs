//! E11 — flooding over RAES-maintained topologies vs. the four paper models.
//!
//! The protocol comparison grid: all five dynamic networks under one
//! flooding measurement, with RAES health metrics on the protocol rows.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenario `raes-flooding` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_raes_flooding [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["raes-flooding"]);
}
