//! E11 — Flooding over RAES-maintained topologies vs. the four paper models.
//!
//! The paper's SDGR/PDGR models resample severed requests instantaneously;
//! the RAES protocol (`churn-protocol`) repairs them through a local
//! request/accept/reject loop with a hard in-degree cap `⌊c·d⌋`. This
//! experiment runs the same flooding measurement over all five dynamic
//! networks on the same `(model, n, d, trial)` grid and records, per trial:
//!
//! * `flooding_rounds` — rounds until complete broadcast (round cap on
//!   failure),
//! * `completed` — 1 when the broadcast completed,
//! * `final_fraction` — informed fraction when the run ended,
//! * `isolated_fraction` — fraction of isolated alive nodes in the warm
//!   topology (the SDG/PDG failure mode RAES is designed to repair),
//! * for RAES additionally `max_in_degree`, `rejection_rate`,
//!   `mean_repair_latency` and `pending_backlog` (pending requests per node).
//!
//! Raw per-trial records are saved as machine-readable JSON (the
//! `churn-sim::store` schema) to `results/exp_raes_flooding.json`, or the
//! path in `CHURN_RAES_JSON` when set.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_raes_flooding [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::flooding::{run_flooding_parallel, FloodingConfig, FloodingSource};
use churn_core::{isolated, DynamicNetwork, ModelKind};
use churn_protocol::{RaesConfig, RaesModel};
use churn_sim::{aggregate_by_point, run_sweep, save_records, PointKey, StoredRecord, Sweep};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Everything one trial measures.
#[derive(Clone)]
struct Outcome {
    flooding_rounds: f64,
    completed: bool,
    final_fraction: f64,
    isolated_fraction: f64,
    /// RAES-only protocol health metrics.
    protocol: Option<ProtocolOutcome>,
}

#[derive(Clone, Copy)]
struct ProtocolOutcome {
    max_in_degree: usize,
    in_degree_cap: usize,
    rejection_rate: f64,
    mean_repair_latency: f64,
    pending_backlog: f64,
}

fn measure<M: DynamicNetwork>(model: &mut M, max_rounds: u64, threads: usize) -> Outcome {
    let isolated_fraction =
        isolated::isolated_now(model).len() as f64 / model.alive_count().max(1) as f64;
    let record = run_flooding_parallel(
        model,
        FloodingSource::NextToJoin,
        &FloodingConfig::with_max_rounds(max_rounds),
        threads,
    );
    Outcome {
        flooding_rounds: record
            .outcome
            .rounds()
            .unwrap_or(max_rounds)
            .min(max_rounds) as f64,
        completed: record.outcome.is_complete(),
        final_fraction: record.final_fraction(),
        isolated_fraction,
        protocol: None,
    }
}

fn main() {
    let preset = preset_from_env_and_args();
    // The full grid's top row is now n = 10^6 (the sharded flooding engine
    // under the sweep's thread budget keeps a trial there in seconds).
    let sizes = preset.pick(vec![256usize, 1_024], vec![100_000usize, 1_000_000]);
    let degrees = vec![8usize];
    let trials = preset.pick(4, 6);

    let sweep = Sweep::new("E11-raes-flooding")
        .models([
            ModelKind::Sdg,
            ModelKind::Sdgr,
            ModelKind::Pdg,
            ModelKind::Pdgr,
            ModelKind::Raes,
        ])
        .sizes(sizes.clone())
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE11);

    let results = run_sweep(&sweep, |ctx| {
        let max_rounds = 8 * (ctx.point.n as f64).log2().ceil() as u64;
        match ctx.point.model {
            ModelKind::Raes => {
                let mut model =
                    RaesModel::new(RaesConfig::new(ctx.point.n, ctx.point.d).seed(ctx.seed))
                        .expect("valid parameters");
                model.warm_up();
                let mut outcome = measure(&mut model, max_rounds, ctx.threads);
                let alive = model.alive_count().max(1);
                outcome.protocol = Some(ProtocolOutcome {
                    max_in_degree: model.max_in_degree(),
                    in_degree_cap: model.in_degree_cap(),
                    rejection_rate: model.stats().rejection_rate(),
                    mean_repair_latency: model.stats().mean_repair_latency(),
                    pending_backlog: model.pending_requests().len() as f64 / alive as f64,
                });
                outcome
            }
            _ => {
                let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
                model.warm_up();
                measure(&mut model, max_rounds, ctx.threads)
            }
        }
    });

    // ------------------------------------------------------------------
    // Persist raw per-trial records (machine-readable).
    // ------------------------------------------------------------------
    let mut records: Vec<StoredRecord> = Vec::new();
    for r in &results {
        let mut push = |metric: &str, value: f64| {
            records.push(StoredRecord {
                experiment: "exp_raes_flooding".to_string(),
                point: r.point,
                trial: r.trial,
                seed: r.seed,
                metric: metric.to_string(),
                value,
            });
        };
        push("flooding_rounds", r.value.flooding_rounds);
        push("completed", if r.value.completed { 1.0 } else { 0.0 });
        push("final_fraction", r.value.final_fraction);
        push("isolated_fraction", r.value.isolated_fraction);
        if let Some(p) = r.value.protocol {
            push("max_in_degree", p.max_in_degree as f64);
            push("in_degree_cap", p.in_degree_cap as f64);
            push("rejection_rate", p.rejection_rate);
            push("mean_repair_latency", p.mean_repair_latency);
            push("pending_backlog", p.pending_backlog);
        }
    }
    let out_path = std::env::var("CHURN_RAES_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results/exp_raes_flooding.json"));
    match save_records(&out_path, &records) {
        Ok(()) => eprintln!("wrote {} records to {}", records.len(), out_path.display()),
        Err(e) => eprintln!("WARNING: could not write {}: {e}", out_path.display()),
    }

    // ------------------------------------------------------------------
    // Report tables.
    // ------------------------------------------------------------------
    let rounds_by_point = aggregate_by_point(&results, |r| r.value.flooding_rounds);
    let mut by_point: BTreeMap<PointKey, Vec<&Outcome>> = BTreeMap::new();
    for r in &results {
        by_point.entry(r.point.into()).or_default().push(&r.value);
    }

    let mut table = churn_sim::Table::new(
        format!(
            "E11 — flooding over protocol-maintained vs. paper topologies (d = 8, {trials} trials)"
        ),
        [
            "model",
            "n",
            "flooding rounds",
            "P(completed)",
            "mean final coverage",
            "isolated fraction",
        ],
    );
    let mut protocol_table = churn_sim::Table::new(
        "E11 — RAES protocol health at measurement time",
        [
            "n",
            "max in-degree",
            "cap (c·d)",
            "rejection rate",
            "mean repair latency",
            "pending / node",
        ],
    );

    for point in sweep.points() {
        let key: PointKey = point.into();
        let outcomes = &by_point[&key];
        let count = outcomes.len() as f64;
        let p_completed = outcomes.iter().filter(|o| o.completed).count() as f64 / count;
        let coverage = outcomes.iter().map(|o| o.final_fraction).sum::<f64>() / count;
        let isolated = outcomes.iter().map(|o| o.isolated_fraction).sum::<f64>() / count;
        table.push_row([
            point.model.label().to_string(),
            point.n.to_string(),
            rounds_by_point[&key].display_with_ci(1),
            format!("{p_completed:.2}"),
            format!("{coverage:.3}"),
            format!("{isolated:.4}"),
        ]);
        if point.model == ModelKind::Raes {
            let stats: Vec<ProtocolOutcome> = outcomes.iter().filter_map(|o| o.protocol).collect();
            let mean = |f: &dyn Fn(&ProtocolOutcome) -> f64| {
                stats.iter().map(f).sum::<f64>() / stats.len().max(1) as f64
            };
            protocol_table.push_row([
                point.n.to_string(),
                format!("{:.1}", mean(&|p| p.max_in_degree as f64)),
                format!("{}", stats.first().map_or(0, |p| p.in_degree_cap)),
                format!("{:.4}", mean(&|p| p.rejection_rate)),
                format!("{:.3}", mean(&|p| p.mean_repair_latency)),
                format!("{:.4}", mean(&|p| p.pending_backlog)),
            ]);
        }
    }

    // ------------------------------------------------------------------
    // Comparisons: RAES behaves like the regenerating models, not the static
    // ones, while additionally keeping the in-degree bounded.
    // ------------------------------------------------------------------
    let mut comparisons = ComparisonSet::new("E11 — RAES vs. paper baselines");
    for &n in &sizes {
        let key = |model: ModelKind| PointKey {
            model: model.label().to_string(),
            n,
            d: 8,
        };
        let raes_rounds = rounds_by_point[&key(ModelKind::Raes)].mean;
        let sdgr_rounds = rounds_by_point[&key(ModelKind::Sdgr)].mean;
        comparisons.push(
            Comparison::within_factor(
                format!("RAES flooding time vs SDGR, n={n}"),
                "Cruciani 2025 (expander maintenance); Thm 3.16 baseline",
                sdgr_rounds,
                raes_rounds,
                2.0,
            )
            .with_note("protocol repair latency must not slow the broadcast down"),
        );

        let raes = &by_point[&key(ModelKind::Raes)];
        let raes_completion =
            raes.iter().filter(|o| o.completed).count() as f64 / raes.len() as f64;
        comparisons.push(Comparison::new(
            format!("RAES broadcast completes, n={n}"),
            "Theorem 3.16 analogue under bounded in-degree",
            "P(completed) = 1".to_string(),
            format!("{raes_completion:.2}"),
            raes_completion == 1.0,
        ));

        let cap_ok = raes.iter().all(|o| {
            o.protocol
                .is_some_and(|p| p.max_in_degree <= p.in_degree_cap)
        });
        comparisons.push(Comparison::new(
            format!("in-degree bounded by c*d, n={n}"),
            "RAES accept rule",
            "max in-degree <= floor(c*d)".to_string(),
            if cap_ok {
                "holds on every trial"
            } else {
                "VIOLATED"
            }
            .to_string(),
            cap_ok,
        ));

        let sdg = &by_point[&key(ModelKind::Sdg)];
        let sdg_isolated = sdg.iter().map(|o| o.isolated_fraction).sum::<f64>() / sdg.len() as f64;
        let raes_isolated =
            raes.iter().map(|o| o.isolated_fraction).sum::<f64>() / raes.len() as f64;
        comparisons.push(
            Comparison::new(
                format!("isolated nodes repaired, n={n}"),
                "Lemma 3.5 (SDG failure mode)",
                format!("well below SDG's {sdg_isolated:.4}"),
                format!("{raes_isolated:.4}"),
                raes_isolated < sdg_isolated / 2.0 || raes_isolated == 0.0,
            )
            .with_note("RAES re-requests severed links, so lifetime isolation disappears"),
        );
    }

    print_report(
        "E11 — flooding over RAES-maintained expanders",
        "churn-protocol RAES vs. Table 1 baselines (Cruciani 2025, Angileri et al. 2025)",
        preset,
        &[table, protocol_table],
        &[comparisons],
    );
}
