//! E9 — Growth of the onion-skin process (Claim 3.10 / Lemma 3.9).
//!
//! The onion-skin process is the analytical engine behind the partial-flooding
//! theorem for SDG: starting from the newly joined source it alternates young
//! and old layers and, per Claim 3.10, multiplies the frontier by roughly
//! `d/20` per phase until about `n/d` nodes are reached — which is what makes
//! the bootstrap phase of flooding take only `O(log n / log d)` rounds. This
//! experiment replays the construction on realized SDG graphs and reports the
//! measured per-phase growth factors and the reached fraction.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_onion_skin [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::onion_skin::run_onion_skin;
use churn_core::{theory, DynamicNetwork, StreamingConfig, StreamingModel};
use churn_sim::Table;
use churn_stochastic::OnlineStats;

fn main() {
    let preset = preset_from_env_and_args();
    // The construction runs on dense slab indices since this PR (flat
    // age-class/reached arrays, no hashing), so the full preset follows the
    // flooding binaries to n = 10^6.
    let sizes: Vec<usize> = preset.pick(vec![2_048, 4_096], vec![16_384, 1_000_000]);
    let degrees: Vec<usize> = preset.pick(vec![40, 64], vec![64, 128]);
    let trials = preset.pick(3, 3);

    let mut table = Table::new(
        "E9 — onion-skin growth on realized SDG graphs",
        [
            "n",
            "d",
            "paper growth d/20",
            "mean early growth factor",
            "mean phases",
            "mean reached fraction",
        ],
    );
    let mut comparisons = ComparisonSet::new("E9 — Claim 3.10 / Lemma 3.9");

    for &n in &sizes {
        // The 10^6 rows are a single-trial scale demonstration: their cost is
        // dominated by the 2n-round warm-up (the replay itself is one O(n·d)
        // pass per phase); the multi-trial statistics live at the smaller n.
        let trials = if n >= 1_000_000 { 1 } else { trials };
        for &d in &degrees {
            let mut growth = OnlineStats::new();
            let mut phases = OnlineStats::new();
            let mut reached = OnlineStats::new();
            for trial in 0..trials {
                let mut model = StreamingModel::new(
                    StreamingConfig::new(n, d).seed(0xE9 ^ (n as u64) ^ ((d as u64) << 20) ^ trial),
                )
                .expect("valid parameters");
                model.warm_up();
                let trace = run_onion_skin(&model);
                // Early growth factors only: the multiplicative regime of
                // Claim 3.10 holds while the reached sets are small compared to
                // n (the claim's hypothesis is |Y_k|, |O_k| <= n/d, but the
                // growth stays multiplicative well beyond that; we cut at n/4
                // where saturation effects dominate). Claim 3.10 is a *lower*
                // bound of d/20 per phase — the realized growth is usually much
                // larger — so we record the first few factors.
                let saturation = n / 4;
                for (i, w) in trace.phases.windows(2).enumerate() {
                    if w[1].old_total > saturation || i >= 3 {
                        break;
                    }
                    if w[0].new_old > 0 {
                        growth.push(w[1].new_old as f64 / w[0].new_old as f64);
                    }
                }
                phases.push(trace.phase_count() as f64);
                reached.push(trace.reached() as f64 / n as f64);
            }

            let predicted = theory::onion_skin_growth_factor(d);
            table.push_row([
                n.to_string(),
                d.to_string(),
                format!("{predicted:.1}"),
                format!("{:.1}", growth.mean()),
                format!("{:.1}", phases.mean()),
                format!("{:.3}", reached.mean()),
            ]);

            // At laptop scale and moderate-to-large d the construction saturates
            // (reaches more than n/4 old nodes) within two phases, so no
            // per-phase factor below the saturation cutoff exists — that is
            // growth *faster* than the claim's d/20 lower bound, not slower.
            let (measured_growth, growth_holds) = if growth.count() == 0 {
                (
                    "saturated within 2 phases (growth above any per-phase bound)".to_string(),
                    reached.mean() > 0.5,
                )
            } else {
                (
                    format!("{:.1}", growth.mean()),
                    growth.mean() >= 0.5 * predicted,
                )
            };
            comparisons.push(
                Comparison::new(
                    format!("onion-skin frontier growth, n={n} d={d}"),
                    "Claim 3.10",
                    format!("multiplicative growth >= d/20 = {predicted:.1} per phase"),
                    measured_growth,
                    growth_holds,
                )
                .with_note("mean of the first phases' growth factors, before saturation at n/4"),
            );
            comparisons.push(
                Comparison::new(
                    format!("onion-skin reach, n={n} d={d}"),
                    "Lemma 3.9",
                    "reaches Ω(n/d) nodes within O(log n / log d) phases".to_string(),
                    format!(
                        "reached {:.3}·n in {:.1} phases",
                        reached.mean(),
                        phases.mean()
                    ),
                    reached.mean() * n as f64 >= (n / d) as f64
                        && phases.mean() <= 4.0 + 3.0 * (n as f64).log2() / (d as f64).log2(),
                )
                .with_note("the restricted construction undercounts what real flooding reaches"),
            );
        }
    }

    print_report(
        "E9 — onion-skin process growth",
        "Claim 3.10 and Lemma 3.9 (the analytical device behind Theorem 3.8)",
        preset,
        &[table],
        &[comparisons],
    );
}
