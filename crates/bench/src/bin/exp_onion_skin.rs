//! E9 — growth of the onion-skin process (Claim 3.10 / Lemma 3.9).
//!
//! The analytical engine behind the partial-flooding theorem, replayed on
//! realized SDG graphs (the `-1m` scenario carries the scale row).
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenarios `onion-skin` and `onion-skin-1m` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_onion_skin [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["onion-skin", "onion-skin-1m"]);
}
