//! E2 — Expansion of large subsets in the models without edge regeneration.
//!
//! Reproduces the positive expansion cell of Table 1 for SDG/PDG (Lemma 3.6 and
//! Lemma 4.11): even though SDG/PDG snapshots contain isolated nodes, every
//! subset of size between `n·e^{−d/10}` (streaming) / `n·e^{−d/20}` (Poisson)
//! and `n/2` has vertex expansion at least 0.1.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_large_set_expansion [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::expansion::{measure_expansion, SizeRange};
use churn_core::{theory, DynamicNetwork, ModelKind};
use churn_graph::expansion::ExpansionConfig;
use churn_sim::{aggregate_by_point, run_sweep, PointKey, Sweep, Table};
use churn_stochastic::rng::seeded_rng;

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512], vec![1_024, 4_096]);
    let degrees = vec![20usize, 24, 32];
    let trials = preset.pick(3, 5);

    let sweep = Sweep::new("E2-large-set-expansion")
        .models([ModelKind::Sdg, ModelKind::Pdg])
        .sizes(sizes)
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE2);

    #[derive(Clone)]
    struct Measurement {
        large_set_expansion: f64,
        full_range_expansion: f64,
        min_set_size: usize,
    }

    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
        model.warm_up();
        let mut rng = seeded_rng(ctx.seed ^ 0xABCD);
        let config = ExpansionConfig::default();
        let large = measure_expansion(&model, SizeRange::LargeSets, &config, &mut rng);
        let full = measure_expansion(&model, SizeRange::Full, &config, &mut rng);
        Measurement {
            large_set_expansion: large.value().unwrap_or(f64::NAN),
            full_range_expansion: full.value().unwrap_or(f64::NAN),
            min_set_size: large.size_bounds.0,
        }
    });

    let large = aggregate_by_point(&results, |r| r.value.large_set_expansion);
    let full = aggregate_by_point(&results, |r| r.value.full_range_expansion);

    let mut table = Table::new(
        "E2 — estimated minimum expansion ratio (candidate-set minimiser)",
        [
            "model",
            "n",
            "d",
            "large sets only",
            "full range",
            "large-set min size",
            "threshold",
        ],
    );
    let mut comparisons = ComparisonSet::new("E2 — Lemma 3.6 / Lemma 4.11");

    for point in sweep.points() {
        let key: PointKey = point.into();
        let min_size = results
            .iter()
            .find(|r| r.point == point)
            .map_or(0, |r| r.value.min_set_size);
        table.push_row([
            point.model.label().to_string(),
            point.n.to_string(),
            point.d.to_string(),
            large[&key].display_with_ci(3),
            full[&key].display_with_ci(3),
            min_size.to_string(),
            format!("{:.1}", theory::EXPANSION_THRESHOLD),
        ]);
        let reference = if point.model.is_streaming() {
            "Lemma 3.6"
        } else {
            "Lemma 4.11"
        };
        comparisons.push(
            Comparison::new(
                format!("large-set expansion, {point}"),
                reference,
                format!(">= {:.1}", theory::EXPANSION_THRESHOLD),
                format!("{:.3}", large[&key].mean),
                large[&key].mean >= theory::EXPANSION_THRESHOLD,
            )
            .with_note("estimator returns an upper bound on h_out over the range"),
        );
    }

    print_report(
        "E2 — large-subset expansion without edge regeneration",
        "Table 1 (Θ(1)-expansion of big-size node subsets); Lemmas 3.6 and 4.11",
        preset,
        &[table],
        &[comparisons],
    );
}
