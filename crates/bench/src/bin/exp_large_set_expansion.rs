//! E2 — Expansion of large subsets in the models without edge regeneration.
//!
//! Reproduces the positive expansion cell of Table 1 for SDG/PDG (Lemma 3.6 and
//! Lemma 4.11): even though SDG/PDG snapshots contain isolated nodes, every
//! subset of size between `n·e^{−d/10}` (streaming) / `n·e^{−d/20}` (Poisson)
//! and `n/2` has vertex expansion at least 0.1.
//!
//! The snapshot under measurement is maintained **incrementally**: each trial
//! churns an observation window with a `churn-observe` `IncrementalSnapshot`
//! patched at O(churn) per round from the graph's change feed, then
//! materialises once for the candidate-set estimator (whose sweep families
//! are themselves evaluated incrementally since this PR). Together with the
//! O(n + m)-per-ordering sweep evaluation that is what lets the full preset
//! carry an `n = 10^6` grid row.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_large_set_expansion [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::expansion::{measure_expansion_on, SizeRange};
use churn_core::{theory, DynamicNetwork, ModelKind};
use churn_graph::expansion::ExpansionConfig;
use churn_observe::IncrementalSnapshot;
use churn_sim::{
    aggregate_by_point, observe_rounds, run_sweep, PointKey, Sweep, Table, TrialResult,
};
use churn_stochastic::rng::seeded_rng;

#[derive(Clone)]
struct Measurement {
    large_set_expansion: f64,
    full_range_expansion: f64,
    min_set_size: usize,
}

fn run_grid(sweep: &Sweep, config: &ExpansionConfig) -> Vec<TrialResult<Measurement>> {
    run_sweep(sweep, |ctx| {
        let mut model = ctx.build_model().expect("valid parameters");
        model.warm_up();
        // Maintain the CSR view across an observation window instead of
        // rebuilding it at measurement time: O(churn) per round, one
        // materialisation at the end.
        let mut inc = IncrementalSnapshot::new(model.graph()).with_threads(ctx.threads);
        let window = (ctx.point.n / 16).max(4) as u64;
        observe_rounds(&mut model, window, |_, m, _, delta| {
            inc.apply(m.graph(), delta);
        });
        let snapshot = inc.to_snapshot();
        let mut rng = seeded_rng(ctx.seed ^ 0xABCD);
        let streaming = model.has_streaming_churn();
        let large_bounds = SizeRange::LargeSets.bounds_for(snapshot.len(), ctx.point.d, streaming);
        let full_bounds = SizeRange::Full.bounds_for(snapshot.len(), ctx.point.d, streaming);
        let large = measure_expansion_on(&snapshot, large_bounds, config, &mut rng, model.time());
        let full = measure_expansion_on(&snapshot, full_bounds, config, &mut rng, model.time());
        Measurement {
            large_set_expansion: large.value().unwrap_or(f64::NAN),
            full_range_expansion: full.value().unwrap_or(f64::NAN),
            min_set_size: large.size_bounds.0,
        }
    })
}

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512], vec![1_024, 4_096]);
    let degrees = vec![20usize, 24, 32];
    let trials = preset.pick(3, 5);

    let sweep = Sweep::new("E2-large-set-expansion")
        .models([ModelKind::Sdg, ModelKind::Pdg])
        .sizes(sizes)
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE2);
    let results = run_grid(&sweep, &ExpansionConfig::default());

    // The scale row: n = 10^6 on the full preset, one trial, the fast
    // candidate budget (the estimator's sweep families are incremental, so
    // this is minutes, not days).
    let mut grids: Vec<(Sweep, Vec<TrialResult<Measurement>>)> = vec![(sweep, results)];
    if !preset.is_quick() {
        let scale = Sweep::new("E2-large-set-expansion-1M")
            .models([ModelKind::Sdg, ModelKind::Pdg])
            .sizes([1_000_000])
            .degrees([20])
            .trials(1)
            .base_seed(0xE2);
        let scale_results = run_grid(&scale, &ExpansionConfig::fast());
        grids.push((scale, scale_results));
    }

    let mut table = Table::new(
        "E2 — estimated minimum expansion ratio (candidate-set minimiser)",
        [
            "model",
            "n",
            "d",
            "large sets only",
            "full range",
            "large-set min size",
            "threshold",
        ],
    );
    let mut comparisons = ComparisonSet::new("E2 — Lemma 3.6 / Lemma 4.11");

    for (sweep, results) in &grids {
        let large = aggregate_by_point(results, |r| r.value.large_set_expansion);
        let full = aggregate_by_point(results, |r| r.value.full_range_expansion);
        for point in sweep.points() {
            let key: PointKey = point.into();
            let min_size = results
                .iter()
                .find(|r| r.point == point)
                .map_or(0, |r| r.value.min_set_size);
            table.push_row([
                point.model.label().to_string(),
                point.n.to_string(),
                point.d.to_string(),
                large[&key].display_with_ci(3),
                full[&key].display_with_ci(3),
                min_size.to_string(),
                format!("{:.1}", theory::EXPANSION_THRESHOLD),
            ]);
            let reference = if point.model.is_streaming() {
                "Lemma 3.6"
            } else {
                "Lemma 4.11"
            };
            comparisons.push(
                Comparison::new(
                    format!("large-set expansion, {point}"),
                    reference,
                    format!(">= {:.1}", theory::EXPANSION_THRESHOLD),
                    format!("{:.3}", large[&key].mean),
                    large[&key].mean >= theory::EXPANSION_THRESHOLD,
                )
                .with_note("estimator returns an upper bound on h_out over the range"),
            );
        }
    }

    print_report(
        "E2 — large-subset expansion without edge regeneration",
        "Table 1 (Θ(1)-expansion of big-size node subsets); Lemmas 3.6 and 4.11",
        preset,
        &[table],
        &[comparisons],
    );
}
