//! E2 — expansion of large subsets in the models without edge regeneration.
//!
//! Table 1's large-set expansion cell (Lemmas 3.6 / 4.11), with the
//! `n = 10^6` row as its own resumable scenario.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenarios `large-set-expansion` and `large-set-expansion-1m` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_large_set_expansion [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["large-set-expansion", "large-set-expansion-1m"]);
}
