//! E3 — flooding failure in the models without edge regeneration.
//!
//! Table 1's negative flooding cell (Theorems 3.7 / 4.12); the scale rows
//! live in `flooding-failure-1m`.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenarios `flooding-failure` and `flooding-failure-1m` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_flooding_failure [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["flooding-failure", "flooding-failure-1m"]);
}
