//! E3 — Flooding failure in the models without edge regeneration.
//!
//! Reproduces the negative flooding cell of Table 1 (Theorem 3.7 for SDG,
//! Theorem 4.12 for PDG): with constant `d`, flooding fails to take off with
//! constant probability (the informed set never exceeds `d + 1` nodes), and a
//! complete broadcast needs Ω_d(n) time — in particular no run completes within
//! `O(log n)` rounds.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_flooding_failure [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::flooding::{
    run_flooding_parallel, FloodingConfig, FloodingOutcome, FloodingSource,
};
use churn_core::{DynamicNetwork, ModelKind};
use churn_sim::{run_sweep, PointKey, Sweep, Table, TrialResult};
use std::collections::BTreeMap;

#[derive(Clone)]
struct Outcome {
    died_out: bool,
    never_took_off: bool,
    completed: bool,
    final_fraction: f64,
}

/// One failure sweep over `(SDG, PDG) × degrees` at size `n`: per trial, the
/// flooding record within `6·log₂ n` rounds (driven by the sharded parallel
/// engine under the sweep's thread budget — at `n = 10^6` a single run is
/// otherwise minutes, not seconds).
fn failure_sweep(
    name: &str,
    n: usize,
    degrees: Vec<usize>,
    trials: usize,
) -> Vec<TrialResult<Outcome>> {
    let max_rounds = 6 * (n as f64).log2().ceil() as u64;
    let sweep = Sweep::new(name)
        .models([ModelKind::Sdg, ModelKind::Pdg])
        .sizes([n])
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE3);
    run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
        model.warm_up();
        let record = run_flooding_parallel(
            &mut model,
            FloodingSource::NextToJoin,
            &FloodingConfig::with_max_rounds(max_rounds),
            ctx.threads,
        );
        let never_took_off = record.peak_informed() <= ctx.point.d + 1;
        Outcome {
            died_out: record.outcome.is_died_out(),
            never_took_off,
            completed: matches!(record.outcome, FloodingOutcome::Completed { .. }),
            final_fraction: record.final_fraction(),
        }
    })
}

fn main() {
    let preset = preset_from_env_and_args();
    let n = preset.pick(256usize, 1_024);
    let trials = preset.pick(40, 200);
    let max_rounds = 6 * (n as f64).log2().ceil() as u64;

    let mut results = failure_sweep("E3-flooding-failure", n, vec![1, 2, 3, 4], trials);
    // Scale row (full preset only): the same failure behaviour at n = 10^6,
    // with fewer trials — the statement checked there is qualitative (no
    // completion within O(log n) rounds even at a million nodes), not a
    // probability estimate.
    let scale_n = 1_000_000usize;
    let scale_trials = 6;
    if !preset.is_quick() {
        results.extend(failure_sweep(
            "E3-flooding-failure-1M",
            scale_n,
            vec![1, 4],
            scale_trials,
        ));
    }

    // Group manually: we need counts, not means of a single metric.
    let mut by_point: BTreeMap<PointKey, Vec<&Outcome>> = BTreeMap::new();
    for r in &results {
        by_point.entry(r.point.into()).or_default().push(&r.value);
    }

    let mut table = Table::new(
        format!("E3 — flooding failures within 6·log2 n rounds (n = {n} × {trials} trials, full preset also n = 10^6 × {scale_trials})"),
        [
            "model",
            "d (n)",
            "P(never exceeds d+1 informed)",
            "P(died out)",
            "P(completed)",
            "mean final coverage",
        ],
    );
    let mut comparisons = ComparisonSet::new("E3 — Theorem 3.7 / Theorem 4.12");

    // Iterate points in first-appearance order (the statistical grid first,
    // then the full-preset scale rows).
    let mut points: Vec<churn_sim::ParamPoint> = Vec::new();
    for r in &results {
        if !points.contains(&r.point) {
            points.push(r.point);
        }
    }
    for point in points {
        let key: PointKey = point.into();
        let outcomes = &by_point[&key];
        let count = outcomes.len() as f64;
        let p_stuck = outcomes.iter().filter(|o| o.never_took_off).count() as f64 / count;
        let p_died = outcomes.iter().filter(|o| o.died_out).count() as f64 / count;
        let p_completed = outcomes.iter().filter(|o| o.completed).count() as f64 / count;
        let coverage = outcomes.iter().map(|o| o.final_fraction).sum::<f64>() / count;
        table.push_row([
            point.model.label().to_string(),
            format!("{} (n={})", point.d, point.n),
            format!("{p_stuck:.3}"),
            format!("{p_died:.3}"),
            format!("{p_completed:.3}"),
            format!("{coverage:.3}"),
        ]);

        let reference = if point.model.is_streaming() {
            "Theorem 3.7"
        } else {
            "Theorem 4.12"
        };
        if point.n != n {
            // Scale rows carry one qualitative claim: even at n = 10^6 no run
            // completes within O(log n) rounds (probability estimates belong
            // to the statistical grid above).
            comparisons.push(
                Comparison::new(
                    format!("no completion within O(log n) rounds at scale, {point}"),
                    reference,
                    "completion requires Ω_d(n) time".to_string(),
                    format!("P(completed) = {p_completed:.3}"),
                    p_completed == 0.0,
                )
                .with_note(format!("{scale_trials} trials, 6·log2 n = 120 rounds each")),
            );
            continue;
        }
        // The paper's failure probability is Ω(e^{-d^2}) — already minuscule at
        // d = 2 — and the Ω_d(n) completion lower bound needs lifetime-isolated
        // nodes to actually be present, which at simulation sizes is only
        // guaranteed for the smallest degrees. The quantitative comparisons are
        // therefore made at d = 1 (and d = 2 for the completion bound); larger
        // degrees stay in the table as observations.
        if point.d == 1 {
            comparisons.push(
                Comparison::new(
                    format!("flooding dies without taking off, {point}"),
                    reference,
                    "constant probability > 0".to_string(),
                    format!("{p_stuck:.3}"),
                    p_stuck > 0.0,
                )
                .with_note("failure mode: all of the source's requests hit dead-end nodes"),
            );
        }
        if point.d <= 2 {
            comparisons.push(
                Comparison::new(
                    format!("no completion within O(log n) rounds, {point}"),
                    reference,
                    "completion requires Ω_d(n) time".to_string(),
                    format!("P(completed) = {p_completed:.3}"),
                    p_completed < 0.05,
                )
                .with_note(format!(
                    "observed over {max_rounds} rounds; lifetime-isolated nodes exist w.h.p. at this degree"
                )),
            );
        }
    }

    print_report(
        "E3 — flooding failure without edge regeneration",
        "Table 1 (flooding negative results); Theorems 3.7 and 4.12",
        preset,
        &[table],
        &[comparisons],
    );
}
