//! E1 — isolated nodes in the models without edge regeneration.
//!
//! Table 1's isolated-nodes cell (Lemmas 3.5 / 4.10); the full preset also
//! carries the `n = 10^6` rows of the incremental `churn-observe` census.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenarios `isolated-nodes` and `isolated-nodes-1m` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_isolated_nodes [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["isolated-nodes", "isolated-nodes-1m"]);
}
