//! E1 — Isolated nodes in the models without edge regeneration.
//!
//! Reproduces the "isolated nodes" cell of Table 1 (Lemma 3.5 for SDG,
//! Lemma 4.10 for PDG): warm SDG/PDG snapshots contain a constant fraction of
//! nodes that are isolated and remain isolated for the rest of their lifetime,
//! at least `e^{−2d}/6` (streaming) resp. `e^{−2d}/18` (Poisson); with edge
//! regeneration the fraction is exactly zero.
//!
//! Observation runs on the `churn-observe` pipeline: the isolated census and
//! the lifetime-isolation follow-up are maintained from the graph's
//! `GraphDelta` change feed at O(churn) per round, instead of re-scanning
//! every candidate per round on a cloned model — which is what lets the full
//! preset carry an `n = 10^6` grid row (models without regeneration, one
//! trial; the laptop-scale grid keeps its multi-trial statistics).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_isolated_nodes [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::{theory, DynamicNetwork, ModelKind};
use churn_observe::LifetimeIsolation;
use churn_sim::{aggregate_by_point, observe_rounds, run_sweep, Sweep, Table, TrialResult};

#[derive(Clone)]
struct Measurement {
    isolated_fraction: f64,
    lifetime_fraction: f64,
}

/// The O(churn)-per-round lifetime-isolation measurement: census now, then
/// follow the candidates through the change feed for `horizon` rounds.
fn isolation_trial<M: DynamicNetwork>(model: &mut M, horizon: u64) -> Measurement {
    let alive = model.alive_count().max(1);
    let mut tracker = LifetimeIsolation::start(model.graph());
    let isolated_now = tracker.initial_isolated().len();
    observe_rounds(model, horizon, |_, m, _, delta| {
        tracker.apply(m.graph(), delta);
    });
    let lifetime = tracker.finish(model.graph());
    Measurement {
        isolated_fraction: isolated_now as f64 / alive as f64,
        lifetime_fraction: lifetime.len() as f64 / alive as f64,
    }
}

fn run_grid(sweep: &Sweep) -> Vec<TrialResult<Measurement>> {
    run_sweep(sweep, |ctx| {
        let mut model = ctx.build_model().expect("valid parameters");
        model.warm_up();
        let horizon = if ctx.point.model.is_streaming() {
            ctx.point.n as u64
        } else {
            3 * ctx.point.n as u64
        };
        isolation_trial(&mut model, horizon)
    })
}

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512], vec![1_024, 4_096]);
    let degrees = vec![1usize, 2, 3, 4, 6];
    let trials = preset.pick(4, 10);

    let sweep = Sweep::new("E1-isolated-nodes")
        .models([
            ModelKind::Sdg,
            ModelKind::Pdg,
            ModelKind::Sdgr,
            ModelKind::Pdgr,
        ])
        .sizes(sizes)
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE1);
    let results = run_grid(&sweep);

    // The scale row the incremental observers buy: n = 10^6 on the full
    // preset, models without regeneration (where the census is non-trivial),
    // single trial.
    let mut grids: Vec<(Sweep, Vec<TrialResult<Measurement>>, usize)> =
        vec![(sweep, results, trials)];
    if !preset.is_quick() {
        let scale = Sweep::new("E1-isolated-nodes-1M")
            .models([ModelKind::Sdg, ModelKind::Pdg])
            .sizes([1_000_000])
            .degrees([2, 4])
            .trials(1)
            .base_seed(0xE1);
        let scale_results = run_grid(&scale);
        grids.push((scale, scale_results, 1));
    }

    let mut table = Table::new(
        "E1 — fraction of isolated nodes (mean ± 95% CI)",
        [
            "model",
            "n",
            "d",
            "isolated now",
            "isolated for life",
            "paper lower bound",
        ],
    );
    let mut comparisons = ComparisonSet::new("E1 — Lemma 3.5 / Lemma 4.10 / Theorems 3.15, 4.16");

    for (sweep, results, trials) in &grids {
        let isolated = aggregate_by_point(results, |r| r.value.isolated_fraction);
        let lifetime = aggregate_by_point(results, |r| r.value.lifetime_fraction);
        for point in sweep.points() {
            let key: churn_sim::PointKey = point.into();
            let iso = isolated[&key];
            let life = lifetime[&key];
            let regenerates = point.model.edge_policy().regenerates();
            let bound = if regenerates {
                0.0
            } else if point.model.is_streaming() {
                theory::isolated_fraction_streaming(point.d)
            } else {
                theory::isolated_fraction_poisson(point.d)
            };
            table.push_row([
                point.model.label().to_string(),
                point.n.to_string(),
                point.d.to_string(),
                iso.display_with_ci(4),
                life.display_with_ci(4),
                format!("{bound:.5}"),
            ]);

            let (reference, predicted, holds) = if regenerates {
                (
                    if point.model.is_streaming() {
                        "Theorem 3.15"
                    } else {
                        "Theorem 4.16"
                    },
                    "0 (every node keeps d live edges)".to_string(),
                    iso.mean == 0.0,
                )
            } else {
                // When the paper's lower bound predicts less than one node at this n,
                // observing zero isolated nodes is consistent with it.
                let bound_is_sub_node = bound * (point.n as f64) < 1.0;
                (
                    if point.model.is_streaming() {
                        "Lemma 3.5"
                    } else {
                        "Lemma 4.10"
                    },
                    format!(">= {bound:.5}"),
                    life.mean >= bound || bound_is_sub_node,
                )
            };
            comparisons.push(
                Comparison::new(
                    format!("lifetime-isolated fraction, {point}"),
                    reference,
                    predicted,
                    format!("{:.5}", life.mean),
                    holds,
                )
                .with_note(format!("{} trials, O(churn)-per-round tracker", trials)),
            );
        }
    }

    print_report(
        "E1 — isolated nodes without edge regeneration",
        "Table 1 (isolated-nodes cell); Lemmas 3.5 and 4.10",
        preset,
        &[table],
        &[comparisons],
    );
}
