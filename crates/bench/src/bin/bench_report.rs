//! Merges criterion JSON-lines outputs into a single comparison report.
//!
//! The vendored criterion harness appends one JSON object per benchmark to the
//! path given by `--json <path>` (or the `CHURN_BENCH_JSON` environment
//! variable). This binary joins a *baseline* and an *optimized* run of the
//! same benches into one machine-readable report with per-bench speedups:
//!
//! ```text
//! cargo bench -p churn-bench --bench model_step -- --json baseline.jsonl   # old code
//! cargo bench -p churn-bench --bench model_step -- --json optimized.jsonl  # new code
//! cargo run -p churn-bench --bin bench_report -- \
//!     --baseline baseline.jsonl --optimized optimized.jsonl --out BENCH_PR1.json
//! ```
//!
//! When the same bench id appears multiple times in a file, the last entry
//! wins (so re-running a bench refreshes its number). `--note <text>` embeds
//! free-text provenance (machine core count, pinning, …) as a `"note"` field
//! in the report — parallel-speedup comparisons are meaningless without it.
//!
//! By default benches are joined on *equal* ids (before/after runs of the same
//! bench). To compare two *different* benches — e.g. the RAES protocol's
//! `raes_step` against the `model_step` SDG baseline for `BENCH_PR2.json` —
//! pass explicit `--pair <baseline_id>=<optimized_id>` mappings (repeatable);
//! the two files may then even be the same combined run:
//!
//! ```text
//! cargo run -p churn-bench --bin bench_report -- \
//!     --baseline all.jsonl --optimized all.jsonl \
//!     --pair model_step/SDG/100000=raes_step/RAES-reject-retry/100000 \
//!     --out BENCH_PR2.json
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use churn_sim::minijson;

struct Args {
    baseline: String,
    optimized: String,
    out: Option<String>,
    /// Free-text provenance embedded in the report (`"note"` field) — e.g.
    /// the core count of the recording machine, without which a speedup
    /// number cannot be attributed to parallelism vs algorithmics.
    note: Option<String>,
    /// Explicit (baseline id, optimized id) join pairs; empty = join on
    /// equal ids.
    pairs: Vec<(String, String)>,
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut optimized = None;
    let mut out = None;
    let mut note = None;
    let mut pairs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next(),
            "--optimized" => optimized = args.next(),
            "--out" => out = args.next(),
            "--note" => note = args.next(),
            "--pair" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--pair needs a <baseline_id>=<optimized_id> argument");
                    std::process::exit(2);
                });
                let Some((base, opt)) = spec.split_once('=') else {
                    eprintln!("malformed --pair {spec:?} (expected <baseline_id>=<optimized_id>)");
                    std::process::exit(2);
                };
                pairs.push((base.to_owned(), opt.to_owned()));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let usage = "usage: bench_report --baseline <jsonl> --optimized <jsonl> \
                 [--pair <baseline_id>=<optimized_id>]... [--note <text>] [--out <json>]";
    Args {
        baseline: baseline.unwrap_or_else(|| panic!("{usage}")),
        optimized: optimized.unwrap_or_else(|| panic!("{usage}")),
        out,
        note,
        pairs,
    }
}

/// Loads one jsonl recording; the flag reports whether any line lacked
/// `median_ns` (pre-median recording, mean fallback used).
fn load(path: &str) -> (BTreeMap<String, f64>, bool) {
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut out = BTreeMap::new();
    let mut mean_fallbacks = false;
    for line in data.lines().filter(|l| !l.trim().is_empty()) {
        let parsed = match minijson::parse(line) {
            Ok(value) => value,
            Err(error) => {
                eprintln!("skipping malformed line in {path} ({error}): {line}");
                continue;
            }
        };
        let id = parsed.get("id").and_then(|v| v.as_str().map(str::to_owned));
        // Prefer the steal-spike-robust median (newer recordings); fall back
        // to the mean for files produced before median_ns existed.
        let median = parsed.get("median_ns");
        mean_fallbacks |= median.is_none();
        let ns = median
            .or_else(|| parsed.get("mean_ns"))
            .and_then(minijson::Value::as_f64);
        let (Some(id), Some(ns)) = (id, ns) else {
            eprintln!("skipping line without id/median_ns/mean_ns in {path}: {line}");
            continue;
        };
        out.insert(id, ns);
    }
    (out, mean_fallbacks)
}

fn main() {
    let args = parse_args();
    let (baseline, baseline_means) = load(&args.baseline);
    let (optimized, optimized_means) = load(&args.optimized);
    if baseline_means != optimized_means {
        eprintln!(
            "warning: one side uses pre-median recordings (mean_ns) while the other uses \
             median_ns — the reported speedups mix two different statistics; re-record the \
             older file for a like-for-like comparison"
        );
    }

    // Join either on the explicit --pair mappings or on equal ids.
    let joined: Vec<(String, String, f64, f64)> = if args.pairs.is_empty() {
        baseline
            .iter()
            .filter_map(|(id, &base)| {
                let Some(&opt) = optimized.get(id) else {
                    eprintln!("warning: {id} missing from optimized run");
                    return None;
                };
                Some((id.clone(), id.clone(), base, opt))
            })
            .collect()
    } else {
        // Explicit pairs are a stated expectation (CI smoke, the BENCH_PR2
        // recipe): a missing id means the recipe drifted from the bench
        // definitions, so fail loudly instead of emitting a vacuous report.
        args.pairs
            .iter()
            .map(|(base_id, opt_id)| {
                let Some(&base) = baseline.get(base_id) else {
                    eprintln!("error: --pair id {base_id} missing from baseline run");
                    std::process::exit(1);
                };
                let Some(&opt) = optimized.get(opt_id) else {
                    eprintln!("error: --pair id {opt_id} missing from optimized run");
                    std::process::exit(1);
                };
                (base_id.clone(), opt_id.clone(), base, opt)
            })
            .collect()
    };

    let mut report = String::from(
        "{\n  \"unit\": \"median ns per iteration (mean for pre-median recordings)\",\n",
    );
    if let Some(note) = &args.note {
        let escaped = note.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(report, "  \"note\": \"{escaped}\",");
    }
    report.push_str("  \"benches\": [\n");
    let mut first = true;
    for (base_id, opt_id, base, opt) in &joined {
        if !first {
            report.push_str(",\n");
        }
        first = false;
        let _ = write!(report, "    {{\"id\": \"{opt_id}\", ");
        if base_id != opt_id {
            let _ = write!(report, "\"baseline_id\": \"{base_id}\", ");
        }
        let _ = write!(
            report,
            "\"baseline_ns\": {base:.1}, \"optimized_ns\": {opt:.1}, \"speedup\": {:.2}}}",
            base / opt
        );
    }
    report.push_str("\n  ]\n}\n");

    match args.out {
        Some(path) => {
            std::fs::write(&path, &report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
}
