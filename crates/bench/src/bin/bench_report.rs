//! Merges criterion JSON-lines outputs into a single comparison report.
//!
//! The vendored criterion harness appends one JSON object per benchmark to the
//! path given by `--json <path>` (or the `CHURN_BENCH_JSON` environment
//! variable). This binary joins a *baseline* and an *optimized* run of the
//! same benches into one machine-readable report with per-bench speedups:
//!
//! ```text
//! cargo bench -p churn-bench --bench model_step -- --json baseline.jsonl   # old code
//! cargo bench -p churn-bench --bench model_step -- --json optimized.jsonl  # new code
//! cargo run -p churn-bench --bin bench_report -- \
//!     --baseline baseline.jsonl --optimized optimized.jsonl --out BENCH_PR1.json
//! ```
//!
//! When the same bench id appears multiple times in a file, the last entry
//! wins (so re-running a bench refreshes its number).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use churn_sim::minijson;

fn parse_args() -> (String, String, Option<String>) {
    let mut baseline = None;
    let mut optimized = None;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next(),
            "--optimized" => optimized = args.next(),
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let usage = "usage: bench_report --baseline <jsonl> --optimized <jsonl> [--out <json>]";
    (
        baseline.unwrap_or_else(|| panic!("{usage}")),
        optimized.unwrap_or_else(|| panic!("{usage}")),
        out,
    )
}

fn load(path: &str) -> BTreeMap<String, f64> {
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut out = BTreeMap::new();
    for line in data.lines().filter(|l| !l.trim().is_empty()) {
        let parsed = match minijson::parse(line) {
            Ok(value) => value,
            Err(error) => {
                eprintln!("skipping malformed line in {path} ({error}): {line}");
                continue;
            }
        };
        let id = parsed.get("id").and_then(|v| v.as_str().map(str::to_owned));
        let mean = parsed.get("mean_ns").and_then(minijson::Value::as_f64);
        let (Some(id), Some(mean)) = (id, mean) else {
            eprintln!("skipping line without id/mean_ns in {path}: {line}");
            continue;
        };
        out.insert(id, mean);
    }
    out
}

fn main() {
    let (baseline_path, optimized_path, out_path) = parse_args();
    let baseline = load(&baseline_path);
    let optimized = load(&optimized_path);

    let mut report = String::from("{\n  \"unit\": \"mean ns per iteration\",\n  \"benches\": [\n");
    let mut first = true;
    for (id, &base) in &baseline {
        let Some(&opt) = optimized.get(id) else {
            eprintln!("warning: {id} missing from optimized run");
            continue;
        };
        if !first {
            report.push_str(",\n");
        }
        first = false;
        let _ = write!(
            report,
            "    {{\"id\": \"{id}\", \"baseline_ns\": {base:.1}, \"optimized_ns\": {opt:.1}, \"speedup\": {:.2}}}",
            base / opt
        );
    }
    report.push_str("\n  ]\n}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
}
