//! E7 — static d-out random graph baseline (Lemma B.1).
//!
//! The no-churn reference point: expansion and static flooding time of a
//! `d`-out random graph.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenario `static-baseline` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_static_baseline [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["static-baseline"]);
}
