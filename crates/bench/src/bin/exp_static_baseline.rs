//! E7 — Static d-out random graph baseline (Lemma B.1).
//!
//! The paper's appendix establishes the reference point the dynamic models are
//! measured against: a *static* graph in which every node picks `d ≥ 3` random
//! neighbours is a Θ(1)-expander w.h.p., hence floods in `O(log n)` rounds.
//! This experiment regenerates that baseline: expansion estimate and (static)
//! flooding time for `d ∈ {3, 4, 8}` across sizes, the yardstick for E5/E6.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_static_baseline [quick]
//! ```

use churn_analysis::{classify_scaling, Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_graph::expansion::{ExpansionConfig, ExpansionEstimator};
use churn_graph::generators::d_out_random_graph;
use churn_graph::traversal::{connected_components, static_flooding_time};
use churn_graph::Snapshot;
use churn_sim::Table;
use churn_stochastic::rng::substream_rng;
use churn_stochastic::OnlineStats;

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512, 1_024, 2_048], vec![1_024, 4_096, 16_384]);
    let degrees = [3usize, 4, 8];
    let trials = preset.pick(3, 8);

    let mut table = Table::new(
        "E7 — static d-out random graph: expansion and flooding time",
        [
            "n",
            "d",
            "connected runs",
            "mean h_out estimate",
            "mean flooding time",
            "4·log2 n",
        ],
    );
    let mut comparisons = ComparisonSet::new("E7 — Lemma B.1 (static baseline)");

    for &d in &degrees {
        let mut flood_series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            let mut expansion = OnlineStats::new();
            let mut flooding = OnlineStats::new();
            let mut connected = 0usize;
            for trial in 0..trials {
                let mut rng = substream_rng(0xE7, (n * 1_000 + d * 10 + trial) as u64);
                let graph = d_out_random_graph(n, d, &mut rng);
                let snapshot = Snapshot::of(&graph);
                if connected_components(&snapshot).is_connected() {
                    connected += 1;
                }
                let estimate = ExpansionEstimator::new(ExpansionConfig::fast()).estimate(
                    &snapshot,
                    1,
                    snapshot.len() / 2,
                    &mut rng,
                );
                if let Some(value) = estimate.value() {
                    expansion.push(value);
                }
                if let Some(time) = static_flooding_time(&snapshot, 0) {
                    flooding.push(time as f64);
                }
            }
            flood_series.push((n as f64, flooding.mean()));
            table.push_row([
                n.to_string(),
                d.to_string(),
                format!("{connected}/{trials}"),
                format!("{:.3}", expansion.mean()),
                format!("{:.2}", flooding.mean()),
                format!("{:.1}", 4.0 * (n as f64).log2()),
            ]);

            comparisons.push(
                Comparison::new(
                    format!("static d-out graph expands, n={n} d={d}"),
                    "Lemma B.1",
                    "Θ(1)-expander for d >= 3".to_string(),
                    format!("{:.3}", expansion.mean()),
                    expansion.mean() > 0.0 && connected == trials,
                )
                .with_note("expansion estimate is an upper bound on h_out"),
            );
        }
        let class = classify_scaling(&flood_series);
        // Over a short, nearly flat series the log-vs-linear classifier has no
        // power; the meaningful check is the absolute logarithmic bound.
        let within_log_bound = flood_series
            .iter()
            .all(|&(size, time)| time <= 4.0 * size.log2());
        comparisons.push(
            Comparison::new(
                format!("static flooding time scaling, d={d}"),
                "Lemma B.1 (+ BFS)",
                "O(log n): at most a few·log2 n".to_string(),
                format!("shape: {class}; series {flood_series:?}"),
                within_log_bound,
            )
            .with_note("static flooding time equals graph eccentricity of the source"),
        );
    }

    print_report(
        "E7 — static d-out random graph baseline",
        "Lemma B.1 (appendix): the no-churn baseline the dynamic models are compared against",
        preset,
        &[table],
        &[comparisons],
    );
}
