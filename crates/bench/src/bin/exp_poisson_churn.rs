//! E8 — Demographics of the Poisson churn process.
//!
//! Reproduces the supporting lemmas the Poisson-model analysis rests on:
//! Lemma 4.4 (the population stays within `[0.9 n, 1.1 n]` w.h.p. after time
//! `3 n`), Lemma 4.7 (birth and death probabilities of the jump chain are both
//! in `[0.47, 0.53]` once the population is in that band), and Lemma 4.8 (no
//! alive node is older than `7 n·log n` rounds — here checked in time units via
//! the equivalent exponential-tail bound).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_poisson_churn [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::{theory, DynamicNetwork, PoissonConfig, PoissonModel};
use churn_sim::Table;
use churn_stochastic::OnlineStats;

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![1_024, 4_096], vec![1_024, 4_096, 16_384]);
    let observation_units = preset.pick(400u64, 1_500);

    let mut table = Table::new(
        "E8 — Poisson churn demographics after warm-up",
        [
            "n",
            "mean population",
            "fraction of time in [0.9n, 1.1n]",
            "death share of churn events",
            "max observed age / n",
            "mean lifetime (Little's law) / n",
        ],
    );
    let mut comparisons = ComparisonSet::new("E8 — Lemmas 4.4, 4.6–4.8");

    for &n in &sizes {
        let mut model = PoissonModel::new(
            PoissonConfig::with_expected_size(n, 2)
                .seed(0xE8 ^ n as u64)
                .record_events(true),
        )
        .expect("valid parameters");
        model.warm_up();
        model.advance_until(6.0 * n as f64);
        model.drain_events();

        let mut population = OnlineStats::new();
        let mut in_band = 0u64;
        let mut births = 0u64;
        let mut deaths = 0u64;
        let mut max_age: f64 = 0.0;
        let (lo, hi) = theory::poisson_population_band(n);

        for _ in 0..observation_units {
            let summary = model.advance_time_unit();
            births += summary.births.len() as u64;
            deaths += summary.deaths.len() as u64;
            let size = model.alive_count() as f64;
            population.push(size);
            if size >= lo && size <= hi {
                in_band += 1;
            }
            for id in model.alive_ids() {
                max_age = max_age.max(model.age(id).unwrap_or(0.0));
            }
            model.drain_events();
        }

        let band_fraction = in_band as f64 / observation_units as f64;
        let death_share = deaths as f64 / (births + deaths).max(1) as f64;
        // Little's law: mean lifetime = mean population / departure rate. This
        // sidesteps the right-censoring bias a direct per-node measurement would
        // have over a finite observation window.
        let death_rate = deaths as f64 / observation_units as f64;
        let lifetime_ratio = if death_rate > 0.0 {
            population.mean() / death_rate / n as f64
        } else {
            f64::NAN
        };

        table.push_row([
            n.to_string(),
            format!("{:.1}", population.mean()),
            format!("{band_fraction:.3}"),
            format!("{death_share:.3}"),
            format!("{:.2}", max_age / n as f64),
            format!("{lifetime_ratio:.2}"),
        ]);

        comparisons.push(
            Comparison::new(
                format!("population concentration, n={n}"),
                "Lemma 4.4",
                "|N_t| in [0.9n, 1.1n] w.h.p.".to_string(),
                format!("in band {:.1}% of observed units", 100.0 * band_fraction),
                band_fraction > 0.9,
            )
            .with_note(format!(
                "{observation_units} unit-time observations after t = 6n"
            )),
        );
        let (plo, phi) = theory::jump_probability_band();
        comparisons.push(
            Comparison::new(
                format!("birth/death balance, n={n}"),
                "Lemma 4.7",
                format!("death probability in [{plo}, {phi}]"),
                format!("{death_share:.3}"),
                death_share > plo - 0.02 && death_share < phi + 0.02,
            )
            .with_note("share of churn events that were deaths"),
        );
        comparisons.push(
            Comparison::new(
                format!("no extremely old nodes, n={n}"),
                "Lemma 4.8",
                format!(
                    "all ages << 7·n·ln n = {:.0} time units",
                    7.0 * n as f64 * (n as f64).ln()
                ),
                format!("max age {:.2}·n", max_age / n as f64),
                max_age < 7.0 * n as f64 * (n as f64).ln(),
            )
            .with_note("exponential lifetimes make ages beyond a few n exceedingly rare"),
        );
        comparisons.push(
            Comparison::new(
                format!("mean lifetime, n={n}"),
                "Definition 4.1",
                "1/µ = n".to_string(),
                format!("{lifetime_ratio:.2}·n"),
                lifetime_ratio > 0.75 && lifetime_ratio < 1.35,
            )
            .with_note("estimated via Little's law: mean population / departure rate"),
        );
    }

    print_report(
        "E8 — Poisson churn demographics",
        "Lemmas 4.4, 4.6, 4.7 and 4.8 (the churn substrate of every Poisson-model result)",
        preset,
        &[table],
        &[comparisons],
    );
}
