//! E8 — demographics of the Poisson churn process.
//!
//! The churn substrate of every Poisson-model result (Lemmas 4.4, 4.6–4.8):
//! population concentration, birth/death balance, age tails.
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenario `poisson-churn` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_poisson_churn [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["poisson-churn"]);
}
