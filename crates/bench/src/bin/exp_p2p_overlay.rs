//! E10 — Bitcoin-like overlay under churn (the paper's motivating application).
//!
//! Overlay health and block-propagation milestones of the `churn-p2p`
//! overlay (Sections 1.1 and 2).
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenario `p2p-overlay` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_p2p_overlay [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["p2p-overlay"]);
}
