//! E10 — Bitcoin-like overlay under churn (the paper's motivating application).
//!
//! Sections 1.1 and 2 of the paper argue that the PDGR model captures how
//! Bitcoin-Core-style overlays maintain their topology: target out-degree 8,
//! max in-degree 125, neighbours re-dialled from a gossiped address table
//! whenever connections are lost. This experiment runs that overlay (the
//! `churn-p2p` crate), checks that it exhibits the PDGR behaviour — connected,
//! expanding snapshots and logarithmic block propagation — and reports overlay
//! health alongside propagation milestones.
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_p2p_overlay [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::expansion::{measure_expansion, SizeRange};
use churn_core::{theory, DynamicNetwork};
use churn_graph::expansion::ExpansionConfig;
use churn_p2p::gossip::propagate_block_series;
use churn_p2p::health::overlay_health;
use churn_p2p::{P2pConfig, P2pNetwork};
use churn_sim::Table;
use churn_stochastic::rng::seeded_rng;
use churn_stochastic::OnlineStats;

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![500], vec![1_000, 2_000]);
    let blocks = preset.pick(3usize, 6);

    let mut health_table = Table::new(
        "E10 — overlay health after warm-up",
        [
            "peers (target)",
            "peers (online)",
            "mean outbound",
            "mean inbound",
            "max inbound",
            "isolated",
            "largest component",
            "stale addr fraction",
        ],
    );
    let mut propagation_table = Table::new(
        "E10 — block propagation milestones",
        [
            "peers (target)",
            "mean delays to 50%",
            "mean delays to 99%",
            "mean final coverage",
            "2·log2 n (reference)",
        ],
    );
    let mut comparisons = ComparisonSet::new("E10 — PDGR as a model of Bitcoin-like overlays");

    for &n in &sizes {
        let mut overlay = P2pNetwork::new(
            P2pConfig::new(n)
                .target_outbound(8)
                .max_inbound(125)
                .seed(0xE10 ^ n as u64),
        )
        .expect("valid overlay configuration");
        overlay.warm_up();

        let health = overlay_health(&overlay);
        health_table.push_row([
            n.to_string(),
            health.peers.to_string(),
            format!("{:.2}", health.mean_outbound),
            format!("{:.2}", health.mean_inbound),
            health.max_inbound.to_string(),
            health.isolated_peers.to_string(),
            format!("{:.4}", health.largest_component_fraction),
            format!("{:.3}", health.stale_address_fraction),
        ]);

        let mut rng = seeded_rng(n as u64);
        let expansion = measure_expansion(
            &overlay,
            SizeRange::Full,
            &ExpansionConfig::fast(),
            &mut rng,
        );

        let reports = propagate_block_series(&mut overlay, blocks, 20, 200);
        let mut to_half = OnlineStats::new();
        let mut to_99 = OnlineStats::new();
        let mut coverage = OnlineStats::new();
        for report in &reports {
            if let Some(r) = report.delays_to_half {
                to_half.push(r as f64);
            }
            if let Some(r) = report.delays_to_99 {
                to_99.push(r as f64);
            }
            coverage.push(report.final_coverage);
        }
        propagation_table.push_row([
            n.to_string(),
            format!("{:.1}", to_half.mean()),
            format!("{:.1}", to_99.mean()),
            format!("{:.3}", coverage.mean()),
            format!("{:.1}", 2.0 * (n as f64).log2()),
        ]);

        comparisons.push(
            Comparison::new(
                format!("overlay stays connected and expanding, n={n}"),
                "Theorem 4.16 (PDGR expansion)",
                format!("expander with h_out >= {:.1}", theory::EXPANSION_THRESHOLD),
                format!(
                    "h_out estimate {:.3}, largest component {:.4}, isolated {}",
                    expansion.value().unwrap_or(f64::NAN),
                    health.largest_component_fraction,
                    health.isolated_peers
                ),
                expansion.value().unwrap_or(0.0) >= theory::EXPANSION_THRESHOLD
                    && health.isolated_peers == 0,
            )
            .with_note("overlay uses addrman sampling instead of idealised uniform sampling"),
        );
        comparisons.push(
            Comparison::new(
                format!("block propagation is logarithmic, n={n}"),
                "Theorem 4.20 (PDGR flooding)",
                "99% coverage within O(log n) message delays".to_string(),
                format!(
                    "{:.1} delays to 99% vs 2·log2 n = {:.1}; coverage {:.3}",
                    to_99.mean(),
                    2.0 * (n as f64).log2(),
                    coverage.mean()
                ),
                to_99.count() > 0
                    && to_99.mean() <= 3.0 * (n as f64).log2()
                    && coverage.mean() > 0.95,
            )
            .with_note(format!(
                "{blocks} blocks, each announced by a freshly joined peer"
            )),
        );
        comparisons.push(Comparison::new(
            format!("degree limits respected, n={n}"),
            "Section 1.1 (Bitcoin Core parameters)",
            "outbound ~ 8, inbound <= 125".to_string(),
            format!(
                "mean outbound {:.2}, max inbound {}",
                health.mean_outbound, health.max_inbound
            ),
            health.mean_outbound > 7.0 && health.max_inbound <= 125,
        ));
    }

    print_report(
        "E10 — Bitcoin-like overlay under churn",
        "Sections 1.1 and 2 (motivating application of the PDGR model)",
        preset,
        &[health_table, propagation_table],
        &[comparisons],
    );
}
