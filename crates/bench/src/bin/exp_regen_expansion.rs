//! E5 — Vertex expansion of the models with edge regeneration.
//!
//! Reproduces the expansion cell of Table 1 for SDGR/PDGR (Theorem 3.15 and
//! Theorem 4.16): with edge regeneration every warm snapshot is an ε-expander
//! with ε ≥ 0.1, over the *full* range of subset sizes — in contrast to the
//! models without regeneration whose full-range expansion is 0 (E1).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_regen_expansion [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::expansion::{expansion_trajectory, SizeRange};
use churn_core::{theory, DynamicNetwork, ModelKind};
use churn_graph::expansion::ExpansionConfig;
use churn_sim::{aggregate_by_point, run_sweep, PointKey, Sweep, Table};
use churn_stochastic::rng::seeded_rng;

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512], vec![1_024, 4_096]);
    let degrees = vec![4usize, 8, 14, 21, 35];
    let trials = preset.pick(3, 5);
    let snapshots_per_trial = 3usize;

    let sweep = Sweep::new("E5-regen-expansion")
        .models([ModelKind::Sdgr, ModelKind::Pdgr])
        .sizes(sizes)
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE5);

    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.point.build(ctx.seed).expect("valid parameters");
        model.warm_up();
        let mut rng = seeded_rng(ctx.seed ^ 0x5E5E);
        let reports = expansion_trajectory(
            &mut model,
            snapshots_per_trial,
            (ctx.point.n / 8).max(8) as u64,
            SizeRange::Full,
            &ExpansionConfig::default(),
            &mut rng,
        );
        // The claim is "every snapshot expands", so report the worst snapshot.
        reports
            .iter()
            .filter_map(churn_core::expansion::ExpansionReport::value)
            .fold(f64::INFINITY, f64::min)
    });

    let expansion = aggregate_by_point(&results, |r| r.value);

    let mut table = Table::new(
        format!(
            "E5 — minimum estimated expansion over {snapshots_per_trial} snapshots per trial (full size range)"
        ),
        ["model", "n", "d", "worst-snapshot h_out (mean ± CI)", "min over trials", "threshold"],
    );
    let mut comparisons = ComparisonSet::new("E5 — Theorem 3.15 / Theorem 4.16");

    for point in sweep.points() {
        let key: PointKey = point.into();
        let agg = expansion[&key];
        table.push_row([
            point.model.label().to_string(),
            point.n.to_string(),
            point.d.to_string(),
            agg.display_with_ci(3),
            format!("{:.3}", agg.min),
            format!("{:.1}", theory::EXPANSION_THRESHOLD),
        ]);
        let reference = if point.model.is_streaming() {
            "Theorem 3.15 (stated for d >= 14)"
        } else {
            "Theorem 4.16 (stated for d >= 35)"
        };
        let required = if point.model.is_streaming() { 14 } else { 35 };
        comparisons.push(
            Comparison::new(
                format!("snapshot expansion, {point}"),
                reference,
                format!(">= {:.1}", theory::EXPANSION_THRESHOLD),
                format!("{:.3} (worst trial {:.3})", agg.mean, agg.min),
                if point.d >= required {
                    agg.min >= theory::EXPANSION_THRESHOLD
                } else {
                    // Below the paper's stated degree the theorem makes no claim;
                    // record whether the snapshot still expands as an observation.
                    agg.min > 0.0
                },
            )
            .with_note(if point.d >= required {
                "degree meets the theorem's hypothesis"
            } else {
                "degree below the theorem's hypothesis; expansion > 0 recorded as observation"
            }),
        );
    }

    print_report(
        "E5 — expansion with edge regeneration",
        "Table 1 (Θ(1)-expansion with edge regeneration); Theorems 3.15 and 4.16",
        preset,
        &[table],
        &[comparisons],
    );
}
