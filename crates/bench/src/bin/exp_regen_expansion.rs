//! E5 — Vertex expansion of the models with edge regeneration, plus
//! expansion-over-time of the realized RAES graph.
//!
//! Reproduces the expansion cell of Table 1 for SDGR/PDGR (Theorem 3.15 and
//! Theorem 4.16): with edge regeneration every warm snapshot is an ε-expander
//! with ε ≥ 0.1, over the *full* range of subset sizes — in contrast to the
//! models without regeneration whose full-range expansion is 0 (E1).
//!
//! The per-trial snapshot trajectory is maintained through a `churn-observe`
//! `IncrementalSnapshot` (patched O(churn) per round from the graph's change
//! feed, materialised only at each measurement instant).
//!
//! The second section tracks the **realized RAES topology over time** — the
//! remaining protocol open item: per-round live metrics (in-degree-cap
//! occupancy, isolated count) plus periodic full-range expansion estimates of
//! the maintained bounded-degree graph, the quantity the RAES line of work
//! (Becchetti et al.; Cruciani 2025) proves stays Θ(1).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_regen_expansion [quick]
//! ```

use churn_analysis::{Comparison, ComparisonSet};
use churn_bench::{preset_from_env_and_args, print_report};
use churn_core::expansion::{measure_expansion_on, SizeRange};
use churn_core::{theory, DynamicNetwork, ModelKind};
use churn_graph::expansion::ExpansionConfig;
use churn_observe::{IncrementalSnapshot, LiveMetrics};
use churn_protocol::{RaesConfig, RaesModel, SaturationPolicy};
use churn_sim::{aggregate_by_point, observe_rounds, run_sweep, PointKey, Sweep, Table};
use churn_stochastic::rng::seeded_rng;

fn main() {
    let preset = preset_from_env_and_args();
    let sizes: Vec<usize> = preset.pick(vec![512], vec![1_024, 4_096]);
    let degrees = vec![4usize, 8, 14, 21, 35];
    let trials = preset.pick(3, 5);
    let snapshots_per_trial = 3usize;

    let sweep = Sweep::new("E5-regen-expansion")
        .models([ModelKind::Sdgr, ModelKind::Pdgr])
        .sizes(sizes)
        .degrees(degrees)
        .trials(trials)
        .base_seed(0xE5);

    let results = run_sweep(&sweep, |ctx| {
        let mut model = ctx.build_model().expect("valid parameters");
        model.warm_up();
        let mut rng = seeded_rng(ctx.seed ^ 0x5E5E);
        let config = ExpansionConfig::default();
        let interval = (ctx.point.n / 8).max(8) as u64;
        // The trajectory: maintain the CSR view incrementally between the
        // sampling instants, materialise per sample. The claim is "every
        // snapshot expands", so report the worst sample.
        let mut inc = IncrementalSnapshot::new(model.graph()).with_threads(ctx.threads);
        let streaming = model.has_streaming_churn();
        let mut worst = f64::INFINITY;
        let mut consider = |snapshot: &churn_graph::Snapshot,
                            d: usize,
                            time: f64,
                            rng: &mut churn_stochastic::rng::SimRng| {
            let bounds = SizeRange::Full.bounds_for(snapshot.len(), d, streaming);
            if let Some(value) = measure_expansion_on(snapshot, bounds, &config, rng, time).value()
            {
                worst = worst.min(value);
            }
        };
        consider(&inc.to_snapshot(), ctx.point.d, model.time(), &mut rng);
        for _ in 1..snapshots_per_trial {
            observe_rounds(&mut model, interval, |_, m, _, delta| {
                inc.apply(m.graph(), delta);
            });
            consider(&inc.to_snapshot(), ctx.point.d, model.time(), &mut rng);
        }
        worst
    });

    let expansion = aggregate_by_point(&results, |r| r.value);

    let mut table = Table::new(
        format!(
            "E5 — minimum estimated expansion over {snapshots_per_trial} snapshots per trial (full size range)"
        ),
        ["model", "n", "d", "worst-snapshot h_out (mean ± CI)", "min over trials", "threshold"],
    );
    let mut comparisons = ComparisonSet::new("E5 — Theorem 3.15 / Theorem 4.16");

    for point in sweep.points() {
        let key: PointKey = point.into();
        let agg = expansion[&key];
        table.push_row([
            point.model.label().to_string(),
            point.n.to_string(),
            point.d.to_string(),
            agg.display_with_ci(3),
            format!("{:.3}", agg.min),
            format!("{:.1}", theory::EXPANSION_THRESHOLD),
        ]);
        let reference = if point.model.is_streaming() {
            "Theorem 3.15 (stated for d >= 14)"
        } else {
            "Theorem 4.16 (stated for d >= 35)"
        };
        let required = if point.model.is_streaming() { 14 } else { 35 };
        comparisons.push(
            Comparison::new(
                format!("snapshot expansion, {point}"),
                reference,
                format!(">= {:.1}", theory::EXPANSION_THRESHOLD),
                format!("{:.3} (worst trial {:.3})", agg.mean, agg.min),
                if point.d >= required {
                    agg.min >= theory::EXPANSION_THRESHOLD
                } else {
                    // Below the paper's stated degree the theorem makes no claim;
                    // record whether the snapshot still expands as an observation.
                    agg.min > 0.0
                },
            )
            .with_note(if point.d >= required {
                "degree meets the theorem's hypothesis"
            } else {
                "degree below the theorem's hypothesis; expansion > 0 recorded as observation"
            }),
        );
    }

    // ------------------------------------------------------------------
    // RAES expansion over time: the realized bounded-degree graph, tracked
    // per round through the change feed across a 2n-round window.
    // ------------------------------------------------------------------
    let raes_n = preset.pick(512usize, 4_096);
    let raes_d = 8usize;
    let raes_samples = 8u64;
    let raes_interval = (raes_n as u64 / 4).max(8);

    let mut raes_table = Table::new(
        "E5b — realized RAES graph tracked over time (streaming churn, c = 1.5)",
        [
            "policy",
            "n",
            "d",
            "min h_out over time",
            "max in-degree (cap)",
            "mean saturated fraction",
            "isolated rounds",
        ],
    );
    for saturation in [SaturationPolicy::RejectRetry, SaturationPolicy::EvictOldest] {
        let mut model = RaesModel::new(
            RaesConfig::new(raes_n, raes_d)
                .saturation(saturation)
                .seed(0xE5AE),
        )
        .expect("valid parameters");
        model.warm_up();
        let cap = model.in_degree_cap();
        let mut rng = seeded_rng(0x5BAE);
        let config = preset.pick(ExpansionConfig::fast(), ExpansionConfig::default());
        let mut inc = IncrementalSnapshot::new(model.graph());
        let mut metrics = LiveMetrics::new(model.graph());
        let mut min_expansion = f64::INFINITY;
        let mut max_in_degree = metrics.max_in_requests();
        let mut saturated_sum = 0.0f64;
        let mut saturated_rounds = 0u64;
        let mut isolated_rounds = 0u64;
        for _ in 0..raes_samples {
            observe_rounds(&mut model, raes_interval, |_, m, _, delta| {
                inc.apply(m.graph(), delta);
                metrics.apply(m.graph(), delta);
                max_in_degree = max_in_degree.max(metrics.max_in_requests());
                saturated_sum +=
                    metrics.saturated_count(cap) as f64 / m.alive_count().max(1) as f64;
                saturated_rounds += 1;
                isolated_rounds += u64::from(metrics.isolated_count() > 0);
            });
            let snapshot = inc.to_snapshot();
            let bounds = SizeRange::Full.bounds_for(snapshot.len(), raes_d, true);
            if let Some(value) =
                measure_expansion_on(&snapshot, bounds, &config, &mut rng, model.time()).value()
            {
                min_expansion = min_expansion.min(value);
            }
        }
        raes_table.push_row([
            saturation.to_string(),
            raes_n.to_string(),
            raes_d.to_string(),
            format!("{min_expansion:.3}"),
            format!("{max_in_degree} ({cap})"),
            format!("{:.4}", saturated_sum / saturated_rounds.max(1) as f64),
            isolated_rounds.to_string(),
        ]);
        comparisons.push(
            Comparison::new(
                format!("RAES realized-graph expansion over time, {saturation}"),
                "RAES (Becchetti et al.; Cruciani 2025)",
                format!(
                    ">= {:.1} at every sampled round",
                    theory::EXPANSION_THRESHOLD
                ),
                format!("min {min_expansion:.3} over {raes_samples} samples"),
                min_expansion >= theory::EXPANSION_THRESHOLD,
            )
            .with_note("full size range; snapshot maintained incrementally per round"),
        );
        // Isolation caveat: under reject-retry a newborn whose d requests
        // are all rejected in its birth round stays isolated until the next
        // repair sweep — expected protocol behaviour (the deficit is
        // repaired in O(1) expected rounds), so the hard claim is the cap.
        comparisons.push(
            Comparison::new(
                format!("RAES in-degree cap over time, {saturation}"),
                "RAES accept rule",
                format!("max in-degree <= {cap} at every round"),
                format!(
                    "max {max_in_degree}; {isolated_rounds} rounds with a transiently \
                     isolated (fully rejected) newborn"
                ),
                max_in_degree <= cap,
            )
            .with_note("cap occupancy tracked O(churn) per round via LiveMetrics"),
        );
    }

    print_report(
        "E5 — expansion with edge regeneration + realized RAES tracking",
        "Table 1 (Θ(1)-expansion with edge regeneration); Theorems 3.15 and 4.16; RAES",
        preset,
        &[table, raes_table],
        &[comparisons],
    );
}
