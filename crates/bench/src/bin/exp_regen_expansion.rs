//! E5 — vertex expansion of the models with edge regeneration, plus the
//! realized RAES graph tracked over time.
//!
//! Table 1's full-range expansion cell (Theorems 3.15 / 4.16) and the
//! protocol line's expansion-over-time tracking (`raes-regen-tracking`).
//!
//! Since the scenario-engine refactor this binary is a thin shim over the
//! registry: it runs the scenarios `regen-expansion` and `raes-regen-tracking` through the single
//! `exp` runner machinery (records land in `results/`, `quick` maps to the
//! smoke preset, `--resume` continues a checkpoint).
//!
//! ```text
//! cargo run --release -p churn-bench --bin exp_regen_expansion [quick] [--resume]
//! ```

fn main() {
    churn_bench::scenarios::shim_main(&["regen-expansion", "raes-regen-tracking"]);
}
